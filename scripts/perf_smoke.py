#!/usr/bin/env python
"""Perf smoke: the fast engines must beat their reference engines.

Two independent gates, both run by the CI ``perf-smoke`` lane and
locally via::

    PYTHONPATH=src python scripts/perf_smoke.py

**Accuracy gate** (PR 3): the vectorized trace pipeline vs the
per-message reference predictors, over a fixed slice of the Figure 7
grid (every app at reduced iterations).

**Timing gate** (PR 4): the calendar-queue timing engine
(``Machine(engine="fast")``) vs the heapq reference engine, over a
Figure 9 slice (three apps, Base-DSM + SWI-DSM).  Engine runs are
interleaved attempt by attempt so a drifting shared runner cannot bias
one side, every cell also asserts the two engines' ``RunResult`` is
bit-identical (a cheap re-check of the golden suite's contract), and
the measured per-cell and total speedups are written to
``BENCH_timing.json`` at the repo root.

Both comparisons compute bit-identical results (tests/trace/ and
tests/sim/test_engine_equivalence.py enforce that); this script guards
the *performance* claims.  The hard thresholds are deliberately loose
(1.0x — "fast must never be slower") so a noisy shared runner cannot
flake on real >1.5x speedups; the recorded numbers are the claim.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path

#: The fixed accuracy grid: every app, reduced iterations, paper nodes.
GRID_ITERATIONS = {
    "appbt": 8,
    "barnes": 10,
    "em3d": 10,
    "moldyn": 10,
    "ocean": 6,
    "tomcatv": 10,
    "unstructured": 8,
}
NUM_PROCS = 16
DEPTH = 1

#: Fail when a fast path is not at least this many times faster.
THRESHOLD = 1.0

#: Timing runs per engine; the best one is kept (damps CI noise).
ATTEMPTS = 2

#: The Figure 9 slice: three apps on Base-DSM + SWI-DSM (the paper's
#: baseline and its full speculative variant).
TIMING_GRID = {"appbt": 4, "barnes": 4, "ocean": 4}
TIMING_MODES = ("Base-DSM", "SWI-DSM")
TIMING_ATTEMPTS = 3
TIMING_THRESHOLD = 1.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_timing.json"


def run_grid(engine: str) -> float:
    from repro.eval.accuracy import run_predictors
    from repro.trace import configure_trace_cache

    configure_trace_cache(None)  # both engines pay full emulation cost
    best = float("inf")
    for _ in range(ATTEMPTS):
        started = time.perf_counter()
        for app, iterations in GRID_ITERATIONS.items():
            run_predictors(
                app,
                depth=DEPTH,
                num_procs=NUM_PROCS,
                iterations=iterations,
                engine=engine,
            )
        best = min(best, time.perf_counter() - started)
    return best


def accuracy_gate() -> int:
    reference = run_grid("reference")
    vectorized = run_grid("vectorized")
    speedup = reference / vectorized if vectorized else float("inf")
    print(
        f"perf-smoke[accuracy]: {len(GRID_ITERATIONS)} apps x 3 predictors, "
        f"num_procs={NUM_PROCS}, depth={DEPTH}"
    )
    print(f"  reference  engine: {reference:7.2f}s")
    print(f"  vectorized engine: {vectorized:7.2f}s")
    print(f"  speedup:           {speedup:7.2f}x (threshold {THRESHOLD:.1f}x)")
    if speedup < THRESHOLD:
        print("perf-smoke[accuracy]: FAIL — vectorized slower than reference")
        return 1
    print("perf-smoke[accuracy]: OK")
    return 0


def timing_gate() -> int:
    from repro.apps.registry import make_app
    from repro.common.config import SystemConfig
    from repro.sim.machine import Machine, MachineMode

    modes = {m.value: m for m in MachineMode}
    config = SystemConfig(num_nodes=NUM_PROCS)
    workloads = {
        app: make_app(
            app, num_procs=NUM_PROCS, iterations=iterations, seed=1999
        ).build()
        for app, iterations in TIMING_GRID.items()
    }

    cells = {}
    totals = {"reference": 0.0, "fast": 0.0}
    identical = True
    print(
        f"perf-smoke[timing]: figure9 slice — {len(TIMING_GRID)} apps x "
        f"{{{', '.join(TIMING_MODES)}}}, num_procs={NUM_PROCS}, "
        f"iterations={set(TIMING_GRID.values()).pop()}"
    )
    for app, workload in workloads.items():
        for mode_name in TIMING_MODES:
            mode = modes[mode_name]
            best = {"reference": float("inf"), "fast": float("inf")}
            results = {}
            for _ in range(TIMING_ATTEMPTS):
                # Interleave engines within each attempt so runner
                # speed drift hits both sides equally.
                for engine in ("reference", "fast"):
                    machine = Machine(
                        workload, config=config, mode=mode, engine=engine
                    )
                    started = time.perf_counter()
                    results[engine] = machine.run()
                    best[engine] = min(
                        best[engine], time.perf_counter() - started
                    )
            same = dataclasses.asdict(results["reference"]) == dataclasses.asdict(
                results["fast"]
            )
            identical = identical and same
            speedup = best["reference"] / best["fast"] if best["fast"] else 0.0
            cells[f"{app}/{mode_name}"] = {
                "reference_s": round(best["reference"], 4),
                "fast_s": round(best["fast"], 4),
                "speedup": round(speedup, 2),
                "run_result_identical": same,
            }
            totals["reference"] += best["reference"]
            totals["fast"] += best["fast"]
            print(
                f"  {app:6s} {mode_name:8s} reference={best['reference']:6.3f}s "
                f"fast={best['fast']:6.3f}s speedup={speedup:5.2f}x "
                f"identical={same}"
            )

    total_speedup = totals["reference"] / totals["fast"] if totals["fast"] else 0.0
    print(
        f"  total: reference={totals['reference']:6.3f}s "
        f"fast={totals['fast']:6.3f}s speedup={total_speedup:5.2f}x "
        f"(threshold {TIMING_THRESHOLD:.1f}x)"
    )

    bench = {
        "benchmark": "figure9-slice timing engine (fast vs reference)",
        "num_procs": NUM_PROCS,
        "iterations": dict(TIMING_GRID),
        "modes": list(TIMING_MODES),
        "attempts": TIMING_ATTEMPTS,
        "cells": cells,
        "total": {
            "reference_s": round(totals["reference"], 4),
            "fast_s": round(totals["fast"], 4),
            "speedup": round(total_speedup, 2),
        },
        "threshold": TIMING_THRESHOLD,
    }
    record = json.dumps(bench, indent=2)
    BENCH_PATH.write_text(record + "\n")
    # Emit the record itself, so a local run and the CI log show the
    # same committed benchmark claim without a separate `cat` step.
    print(f"  wrote {BENCH_PATH.name}:")
    print(record)

    if not identical:
        print("perf-smoke[timing]: FAIL — engines disagree on RunResult")
        return 1
    if total_speedup < TIMING_THRESHOLD:
        print("perf-smoke[timing]: FAIL — fast engine slower than reference")
        return 1
    print("perf-smoke[timing]: OK")
    return 0


def main() -> int:
    status = accuracy_gate()
    print()
    status |= timing_gate()
    return status


if __name__ == "__main__":
    sys.exit(main())
