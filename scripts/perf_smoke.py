#!/usr/bin/env python
"""Perf smoke: the vectorized trace pipeline must beat the reference.

Runs the same small, fixed accuracy grid (a slice of the Figure 7
sweep: every app at reduced iterations) through both evaluation
engines and fails — exit code 1 — if the vectorized path is not
faster than the per-message reference path on the same grid.  CI runs
this as the ``perf-smoke`` lane; locally::

    PYTHONPATH=src python scripts/perf_smoke.py

Both engines compute bit-identical results (the golden equivalence
tests in tests/trace/ enforce that); this script only guards the
*performance* claim, with a deliberately loose threshold (1.0x) so a
noisy shared runner cannot flake on a real >2x speedup.

The trace cache is left unconfigured: each engine pays for its own
emulation, so the comparison isolates the vectorized consumption win
(cache reuse only widens the gap in production).
"""

from __future__ import annotations

import sys
import time

#: The fixed grid: every app, quarter-ish iterations, paper node count.
GRID_ITERATIONS = {
    "appbt": 8,
    "barnes": 10,
    "em3d": 10,
    "moldyn": 10,
    "ocean": 6,
    "tomcatv": 10,
    "unstructured": 8,
}
NUM_PROCS = 16
DEPTH = 1

#: Fail when vectorized is not at least this many times faster.
THRESHOLD = 1.0

#: Timing runs per engine; the best one is kept (damps CI noise).
ATTEMPTS = 2


def run_grid(engine: str) -> float:
    from repro.eval.accuracy import run_predictors
    from repro.trace import configure_trace_cache

    configure_trace_cache(None)  # both engines pay full emulation cost
    best = float("inf")
    for _ in range(ATTEMPTS):
        started = time.perf_counter()
        for app, iterations in GRID_ITERATIONS.items():
            run_predictors(
                app,
                depth=DEPTH,
                num_procs=NUM_PROCS,
                iterations=iterations,
                engine=engine,
            )
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    reference = run_grid("reference")
    vectorized = run_grid("vectorized")
    speedup = reference / vectorized if vectorized else float("inf")
    print(
        f"perf-smoke: {len(GRID_ITERATIONS)} apps x 3 predictors, "
        f"num_procs={NUM_PROCS}, depth={DEPTH}"
    )
    print(f"  reference  engine: {reference:7.2f}s")
    print(f"  vectorized engine: {vectorized:7.2f}s")
    print(f"  speedup:           {speedup:7.2f}x (threshold {THRESHOLD:.1f}x)")
    if speedup < THRESHOLD:
        print("perf-smoke: FAIL — vectorized path is slower than reference")
        return 1
    print("perf-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
