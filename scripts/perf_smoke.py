#!/usr/bin/env python
"""Perf smoke: the fast engines must beat their reference engines.

Two independent gates, both run by the CI ``perf-smoke`` lane and
locally via::

    PYTHONPATH=src python scripts/perf_smoke.py

**Accuracy gate** (PR 3): the vectorized trace pipeline vs the
per-message reference predictors, over a fixed slice of the Figure 7
grid (every app at reduced iterations).

**Timing gate** (PR 4, extended PR 8): all three timing engines vs the
heapq reference, over a Figure 9 slice (three apps, Base-DSM +
SWI-DSM):

* ``fast`` — the calendar-queue engine;
* ``compiled`` (cold) — the fast engine plus timing-trace recording
  into an empty trace cache: one instrumented simulation, so cold cost
  is bounded below by a full live run and the gate only demands it is
  not slower than the reference;
* ``compiled`` (cached) — the order-of-magnitude claim: the macro-step
  trace replays from the on-disk cache (in-process memo dropped first,
  so the decode is paid) without dispatching a single event.  Gated at
  10x vs the reference, and it must also beat the fast engine.

Engine runs are interleaved attempt by attempt so a drifting shared
runner cannot bias one side, every cell asserts all engines' (and the
replay's) ``RunResult`` is bit-identical (a cheap re-check of the
golden suite's contract), and the measured per-cell and total speedups
are written to ``BENCH_timing.json`` (schema v2, one section per
engine) at the repo root.

Both comparisons compute bit-identical results (tests/trace/ and
tests/sim/test_engine_equivalence.py enforce that); this script guards
the *performance* claims.  The live-engine thresholds are deliberately
loose (1.0x — "never slower than reference") so a noisy shared runner
cannot flake on real >1.5x speedups; the recorded numbers are the
claim.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path

#: The fixed accuracy grid: every app, reduced iterations, paper nodes.
GRID_ITERATIONS = {
    "appbt": 8,
    "barnes": 10,
    "em3d": 10,
    "moldyn": 10,
    "ocean": 6,
    "tomcatv": 10,
    "unstructured": 8,
}
NUM_PROCS = 16
DEPTH = 1

#: Fail when a fast path is not at least this many times faster.
THRESHOLD = 1.0

#: Timing runs per engine; the best one is kept (damps CI noise).
ATTEMPTS = 2

#: The Figure 9 slice: three apps on Base-DSM + SWI-DSM (the paper's
#: baseline and its full speculative variant).
TIMING_GRID = {"appbt": 4, "barnes": 4, "ocean": 4}
TIMING_MODES = ("Base-DSM", "SWI-DSM")
TIMING_ATTEMPTS = 3
TIMING_THRESHOLD = 1.0
#: The cached-replay claim: decoding + batch-applying a stored trace
#: must be at least an order of magnitude faster than re-simulating.
CACHED_THRESHOLD = 10.0
BENCH_SCHEMA = 2

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_timing.json"


def run_grid(engine: str) -> float:
    from repro.eval.accuracy import run_predictors
    from repro.trace import configure_trace_cache

    configure_trace_cache(None)  # both engines pay full emulation cost
    best = float("inf")
    for _ in range(ATTEMPTS):
        started = time.perf_counter()
        for app, iterations in GRID_ITERATIONS.items():
            run_predictors(
                app,
                depth=DEPTH,
                num_procs=NUM_PROCS,
                iterations=iterations,
                engine=engine,
            )
        best = min(best, time.perf_counter() - started)
    return best


def accuracy_gate() -> int:
    reference = run_grid("reference")
    vectorized = run_grid("vectorized")
    speedup = reference / vectorized if vectorized else float("inf")
    print(
        f"perf-smoke[accuracy]: {len(GRID_ITERATIONS)} apps x 3 predictors, "
        f"num_procs={NUM_PROCS}, depth={DEPTH}"
    )
    print(f"  reference  engine: {reference:7.2f}s")
    print(f"  vectorized engine: {vectorized:7.2f}s")
    print(f"  speedup:           {speedup:7.2f}x (threshold {THRESHOLD:.1f}x)")
    if speedup < THRESHOLD:
        print("perf-smoke[accuracy]: FAIL — vectorized slower than reference")
        return 1
    print("perf-smoke[accuracy]: OK")
    return 0


def timing_gate() -> int:
    import tempfile

    from repro.apps.registry import make_app
    from repro.common.config import SystemConfig
    from repro.sim.machine import Machine, MachineMode
    from repro.sim.timetrace import reset_timetrace_memo
    from repro.trace import configure_trace_cache

    modes = {m.value: m for m in MachineMode}
    config = SystemConfig(num_nodes=NUM_PROCS)
    workloads = {
        app: make_app(
            app, num_procs=NUM_PROCS, iterations=iterations, seed=1999
        ).build()
        for app, iterations in TIMING_GRID.items()
    }

    #: Measured variants: (label, engine).  ``compiled_cold`` records
    #: into an empty cache; ``compiled_cached`` replays from the disk
    #: entry the cold run just wrote (memo dropped, decode included).
    variants = ("fast", "compiled_cold", "compiled_cached")
    cells: dict[str, dict[str, dict]] = {v: {} for v in variants}
    ref_cells: dict[str, float] = {}
    totals = dict.fromkeys(("reference",) + variants, 0.0)
    identical = True
    print(
        f"perf-smoke[timing]: figure9 slice — {len(TIMING_GRID)} apps x "
        f"{{{', '.join(TIMING_MODES)}}}, num_procs={NUM_PROCS}, "
        f"iterations={set(TIMING_GRID.values()).pop()}"
    )
    with tempfile.TemporaryDirectory(prefix="perf-smoke-ttrace-") as tmp:
        cache_root = Path(tmp)
        cell_index = 0
        for app, workload in workloads.items():
            for mode_name in TIMING_MODES:
                mode = modes[mode_name]
                cell_index += 1
                best = dict.fromkeys(("reference",) + variants, float("inf"))
                results: dict[str, object] = {}
                for attempt in range(TIMING_ATTEMPTS):
                    # Interleave engines within each attempt so runner
                    # speed drift hits every side equally.
                    configure_trace_cache(None)
                    for engine in ("reference", "fast"):
                        machine = Machine(
                            workload, config=config, mode=mode, engine=engine
                        )
                        started = time.perf_counter()
                        results[engine] = machine.run()
                        best[engine] = min(
                            best[engine], time.perf_counter() - started
                        )
                    # Cold: record + store into an empty per-attempt dir.
                    configure_trace_cache(
                        cache_root / f"cell{cell_index}-a{attempt}"
                    )
                    reset_timetrace_memo()
                    machine = Machine(
                        workload, config=config, mode=mode, engine="compiled"
                    )
                    started = time.perf_counter()
                    results["compiled_cold"] = machine.run()
                    best["compiled_cold"] = min(
                        best["compiled_cold"], time.perf_counter() - started
                    )
                    # Cached: drop the memo so the disk entry is decoded.
                    reset_timetrace_memo()
                    machine = Machine(
                        workload, config=config, mode=mode, engine="compiled"
                    )
                    started = time.perf_counter()
                    results["compiled_cached"] = machine.run()
                    best["compiled_cached"] = min(
                        best["compiled_cached"], time.perf_counter() - started
                    )
                reference = dataclasses.asdict(results["reference"])
                same = all(
                    dataclasses.asdict(results[v]) == reference
                    for v in ("fast",) + variants[1:]
                )
                identical = identical and same
                cell = f"{app}/{mode_name}"
                ref_cells[cell] = round(best["reference"], 4)
                totals["reference"] += best["reference"]
                line = (
                    f"  {app:6s} {mode_name:8s} "
                    f"reference={best['reference']:6.3f}s"
                )
                for variant in variants:
                    speedup = (
                        best["reference"] / best[variant]
                        if best[variant]
                        else 0.0
                    )
                    cells[variant][cell] = {
                        "seconds": round(best[variant], 4),
                        "speedup": round(speedup, 2),
                        "run_result_identical": same,
                    }
                    totals[variant] += best[variant]
                    line += f" {variant}={best[variant]:6.3f}s ({speedup:5.2f}x)"
                print(line + f" identical={same}")
    configure_trace_cache(None)

    def section(variant: str, threshold: float) -> dict:
        total = totals[variant]
        speedup = totals["reference"] / total if total else 0.0
        return {
            "cells": cells[variant],
            "total_s": round(total, 4),
            "speedup": round(speedup, 2),
            "threshold": threshold,
        }

    fast = section("fast", TIMING_THRESHOLD)
    cold = section("compiled_cold", TIMING_THRESHOLD)
    cached = section("compiled_cached", CACHED_THRESHOLD)
    print(
        f"  total: reference={totals['reference']:6.3f}s "
        f"fast={totals['fast']:6.3f}s ({fast['speedup']:.2f}x, "
        f"threshold {TIMING_THRESHOLD:.1f}x) "
        f"compiled-cold={totals['compiled_cold']:6.3f}s "
        f"({cold['speedup']:.2f}x, threshold {TIMING_THRESHOLD:.1f}x) "
        f"compiled-cached={totals['compiled_cached']:6.3f}s "
        f"({cached['speedup']:.2f}x, threshold {CACHED_THRESHOLD:.1f}x)"
    )

    bench = {
        "schema": BENCH_SCHEMA,
        "benchmark": "figure9-slice timing engines vs reference",
        "num_procs": NUM_PROCS,
        "iterations": dict(TIMING_GRID),
        "modes": list(TIMING_MODES),
        "attempts": TIMING_ATTEMPTS,
        "reference": {
            "cells_s": ref_cells,
            "total_s": round(totals["reference"], 4),
        },
        "engines": {
            "fast": fast,
            "compiled": {"cold": cold, "cached": cached},
        },
    }
    record = json.dumps(bench, indent=2)
    BENCH_PATH.write_text(record + "\n")
    # Emit the record itself, so a local run and the CI log show the
    # same committed benchmark claim without a separate `cat` step.
    print(f"  wrote {BENCH_PATH.name}:")
    print(record)

    if not identical:
        print("perf-smoke[timing]: FAIL — engines disagree on RunResult")
        return 1
    status = 0
    if fast["speedup"] < TIMING_THRESHOLD:
        print("perf-smoke[timing]: FAIL — fast engine slower than reference")
        status = 1
    if cold["speedup"] < TIMING_THRESHOLD:
        print(
            "perf-smoke[timing]: FAIL — compiled engine (cold record) "
            "slower than reference"
        )
        status = 1
    if cached["speedup"] < CACHED_THRESHOLD:
        print(
            "perf-smoke[timing]: FAIL — trace-cached replay below the "
            f"{CACHED_THRESHOLD:.0f}x order-of-magnitude claim"
        )
        status = 1
    if totals["compiled_cached"] > totals["fast"]:
        print(
            "perf-smoke[timing]: FAIL — trace-cached replay slower than "
            "the fast engine"
        )
        status = 1
    if status:
        return status
    print("perf-smoke[timing]: OK")
    return 0


def main() -> int:
    status = accuracy_gate()
    print()
    status |= timing_gate()
    return status


if __name__ == "__main__":
    sys.exit(main())
