"""Core vocabulary types for the DSM coherence machinery.

The paper (Section 2) distinguishes two families of coherence messages
arriving at a home directory:

* *request* messages — ``READ``, ``WRITE``, and ``UPGRADE`` — issued by a
  processor that wants a copy of a memory block, and
* *acknowledgement* messages — ``ACK`` (response to a read-only
  invalidation) and ``WRITEBACK`` (response to an invalidation of a
  writable copy) — which are always direct consequences of protocol
  actions.

A general message predictor (Cosmos) predicts all five kinds; a Memory
Sharing Predictor only predicts the three request kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

NodeId = int
BlockId = int


class AccessKind(enum.Enum):
    """A processor-level memory access, before protocol translation."""

    LOAD = "load"
    STORE = "store"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AccessKind.{self.name}"


class MessageKind(enum.Enum):
    """Kinds of coherence messages observed at a home directory."""

    READ = "read"
    WRITE = "write"
    UPGRADE = "upgrade"
    ACK = "ack"
    WRITEBACK = "writeback"

    @property
    def is_request(self) -> bool:
        """True for the three memory-request kinds MSPs predict."""
        return self in REQUEST_KINDS

    @property
    def is_ack(self) -> bool:
        """True for protocol acknowledgements (ack / writeback)."""
        return self in ACK_KINDS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MessageKind.{self.name}"


REQUEST_KINDS = frozenset(
    {MessageKind.READ, MessageKind.WRITE, MessageKind.UPGRADE}
)
ACK_KINDS = frozenset({MessageKind.ACK, MessageKind.WRITEBACK})

#: Number of distinct message kinds a general message predictor encodes.
#: Three requests plus two acknowledgement kinds -> 3 bits (Section 7.3).
GENERAL_MESSAGE_KIND_COUNT = 5

#: Number of request kinds an MSP encodes -> 2 bits (Section 7.3).
REQUEST_KIND_COUNT = 3


@dataclass(frozen=True, slots=True)
class Message:
    """A coherence message as it arrives at a block's home directory.

    ``block`` is the memory block the message concerns and ``node`` the
    processor that sent it.  Messages compare by value so predictors can
    use them directly as pattern-table tokens.
    """

    kind: MessageKind
    node: NodeId
    block: BlockId

    @property
    def is_request(self) -> bool:
        return self.kind.is_request

    @property
    def token(self) -> tuple[MessageKind, NodeId]:
        """The (kind, node) pair used as a predictor token.

        The block id is implicit: history and pattern tables are indexed
        per block, so tokens never need to repeat it.
        """
        return (self.kind, self.node)

    def __str__(self) -> str:
        return f"<{self.kind.value},P{self.node}>@{self.block:#x}"


class DirectoryState(enum.Enum):
    """Stable states of the full-map write-invalidate directory FSM."""

    IDLE = "idle"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DirectoryState.{self.name}"
