"""Shared primitives for the DSM reproduction.

This package holds the vocabulary used by every other subsystem: message
and access kinds, node/block identifiers, the simulated machine
configuration (Table 1 of the paper), counters, and seeded randomness
helpers.
"""

from repro.common.canonical import canonical_hash, canonical_json
from repro.common.config import SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.stats import Counter, StatSet
from repro.common.types import (
    AccessKind,
    BlockId,
    Message,
    MessageKind,
    NodeId,
    ACK_KINDS,
    REQUEST_KINDS,
)

__all__ = [
    "AccessKind",
    "BlockId",
    "Counter",
    "DeterministicRng",
    "Message",
    "MessageKind",
    "NodeId",
    "StatSet",
    "SystemConfig",
    "canonical_hash",
    "canonical_json",
    "ACK_KINDS",
    "REQUEST_KINDS",
]
