"""Lightweight counters used across the simulators and predictors."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(slots=True)
class Counter:
    """An integer event counter with a few convenience accessors."""

    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value


class StatSet:
    """A named collection of counters, auto-created on first touch.

    >>> stats = StatSet()
    >>> stats.bump("reads")
    >>> stats.bump("reads", 2)
    >>> stats["reads"]
    3
    """

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def __getitem__(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def as_dict(self) -> dict[str, int]:
        return dict(self._counters)

    def ratio(self, numerator: str, denominator: str) -> float:
        """numerator / denominator, or 0.0 when the denominator is 0."""
        denom = self._counters.get(denominator, 0)
        if denom == 0:
            return 0.0
        return self._counters.get(numerator, 0) / denom

    def merge(self, other: "StatSet") -> None:
        for name, value in other._counters.items():
            self._counters[name] += value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatSet({inner})"
