"""Simulated machine configuration (Table 1 of the paper).

The defaults reproduce the CC-NUMA the paper simulates with the Wisconsin
Wind Tunnel II: sixteen nodes, 600-MHz processors, 104-cycle local
memory / remote-cache access, an 80-cycle point-to-point network, and a
418-cycle clean round-trip remote miss, for a remote-to-local access
ratio (rtl) of roughly four.

The 418-cycle round trip is decomposed into explicit components so the
timing simulator can price multi-hop transactions (for example a read
that must first recall a writable copy from a third node):

    request:  NI processing (25) + network (80)
    home:     memory/directory access (104)
    reply:    NI processing (25) + network (80)
    fill:     requester-side memory/remote-cache fill (104)

    25 + 80 + 104 + 25 + 80 + 104 = 418
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Parameters of the simulated DSM (paper Table 1)."""

    num_nodes: int = 16
    processor_mhz: int = 600
    processor_cache_bytes: int = 1 << 20
    memory_bus_mhz: int = 100
    block_bytes: int = 32
    page_bytes: int = 4096

    #: Local memory / remote cache access time, cycles (Table 1).
    local_access_cycles: int = 104
    #: One-way network latency, cycles (Table 1).
    network_cycles: int = 80
    #: Network-interface per-message processing, cycles.  Chosen so the
    #: clean remote round trip totals 418 cycles as in Table 1.
    ni_cycles: int = 25
    #: Processor cache hit, cycles.
    cache_hit_cycles: int = 1
    #: Fixed cost of an uncontended lock acquire, cycles.
    lock_acquire_cycles: int = 200
    #: Fixed cost of a barrier release broadcast, cycles.
    barrier_release_cycles: int = 50

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a DSM needs at least two nodes")
        if self.block_bytes <= 0 or self.page_bytes % self.block_bytes:
            raise ValueError("page size must be a multiple of block size")

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.block_bytes

    @property
    def round_trip_cycles(self) -> int:
        """Clean two-hop remote miss latency (Table 1: 418 cycles)."""
        return 2 * (self.ni_cycles + self.network_cycles) + 2 * self.local_access_cycles

    @property
    def remote_to_local_ratio(self) -> float:
        """The paper's ``rtl`` parameter (~4 for this configuration)."""
        return self.round_trip_cycles / self.local_access_cycles

    def home_of(self, block: int) -> int:
        """Home node of a block under page-granularity distribution.

        The address space is statically partitioned: the top bits of a
        block id name its home node (see ``repro.sim.address``), so homes
        are contiguous at page granularity as in real DSMs that
        distribute memory pages (Section 2).
        """
        return (block >> HOME_SHIFT) % self.num_nodes


#: Block ids reserve the bits above HOME_SHIFT for the home node, giving
#: each node a private 2^HOME_SHIFT-block heap (see repro.sim.address).
HOME_SHIFT = 24


def table1_rows(config: SystemConfig | None = None) -> list[tuple[str, str]]:
    """Rows of paper Table 1 for the given (default) configuration."""
    cfg = config or SystemConfig()
    return [
        ("Number of nodes", str(cfg.num_nodes)),
        ("Processor speed", f"{cfg.processor_mhz} MHz"),
        ("Processor cache", f"{cfg.processor_cache_bytes // (1 << 20)} Mbyte"),
        ("Memory bus", f"{cfg.memory_bus_mhz} MHz"),
        ("Local memory/Remote Cache access time", f"{cfg.local_access_cycles} cycles"),
        ("Network latency", f"{cfg.network_cycles} cycles"),
        ("Round-trip miss latency", f"{cfg.round_trip_cycles} cycles"),
        (
            "Remote-to-local access ratio (rtl)",
            f"~{cfg.remote_to_local_ratio:.0f}",
        ),
    ]
