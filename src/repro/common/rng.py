"""Deterministic, stream-splittable randomness.

Every stochastic element in the reproduction — message races in the
protocol emulator, workload shapes in the application kernels, timing
jitter in the simulator — draws from a :class:`DeterministicRng` derived
from a single experiment seed, so all results are reproducible
bit-for-bit.  Streams are split by string labels rather than by sharing
one generator, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import MutableSequence, Sequence
from typing import TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A labelled, splittable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int | str, label: str = "root") -> None:
        self._seed = str(seed)
        self._label = label
        digest = hashlib.sha256(f"{self._seed}/{label}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    @property
    def label(self) -> str:
        return self._label

    def split(self, label: str) -> "DeterministicRng":
        """Derive an independent stream identified by ``label``."""
        return DeterministicRng(self._seed, f"{self._label}/{label}")

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def shuffle(self, items: MutableSequence[T]) -> None:
        self._random.shuffle(items)

    def shuffled(self, items: Sequence[T]) -> list[T]:
        """A new list with the items in a random order."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._random.sample(items, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeterministicRng(seed={self._seed!r}, label={self._label!r})"
