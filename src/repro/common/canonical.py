"""Canonical JSON encoding and hashing.

The experiment harness addresses cached results by content: a sweep
point's identity is the SHA-256 of its canonical JSON form.  Canonical
means byte-stable across processes and Python versions — keys sorted,
separators fixed, no NaN/Infinity, and only JSON-representable values
(tuples are serialized as lists, so ``(1, 2)`` and ``[1, 2]`` hash
identically by design).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to a canonical (byte-stable) JSON string.

    Raises :class:`TypeError` for values outside the JSON model and
    :class:`ValueError` for NaN/Infinity, both of which would make the
    hash unstable or ambiguous.
    """
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def canonical_hash(value: Any) -> str:
    """Hex SHA-256 of the canonical JSON form of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
