"""Best-effort literal parsing shared by the CLI and the HTTP service.

Sweep parameters arrive as text — ``--axis depth=1,2,4`` on the command
line, ``?depth=4&config={"num_nodes":32}`` in a query string — and must
end up as canonical-JSON-hashable values so the same parameters address
the same cache entry no matter which front door they came through.
"""

from __future__ import annotations

import math
from typing import Any

import json


def parse_literal(text: str) -> Any:
    """Best-effort literal: int, float, bool, null, list/dict, else bare string.

    Non-finite floats (NaN/Infinity) stay bare strings: sweep
    parameters must be canonical-JSON-hashable.
    """
    try:
        value = json.loads(text)
    except json.JSONDecodeError:
        return text
    if isinstance(value, float) and not math.isfinite(value):
        return text
    return value
