"""Pattern-based coherence predictors (the paper's core contribution).

* :class:`~repro.predictors.cosmos.Cosmos` — the general message
  predictor of Mukherjee & Hill (ISCA'98), the paper's baseline: a
  two-level predictor over *all* coherence messages at the directory.
* :class:`~repro.predictors.msp.Msp` — the Memory Sharing Predictor:
  identical structure but only request messages (read/write/upgrade)
  enter the history and pattern tables (Section 3).
* :class:`~repro.predictors.vmsp.Vmsp` — the Vector MSP: read-request
  sequences are folded into reader bit-vectors, eliminating read
  re-ordering perturbation (Section 3.1).

All three share the accounting interface of
:class:`~repro.predictors.base.DirectoryPredictor` (per-message
correct / wrong / unpredicted outcomes) and the Table 4 storage model in
:mod:`repro.predictors.storage`.
"""

from repro.predictors.base import (
    DirectoryPredictor,
    Outcome,
    PredictionStats,
    ReadVector,
    Token,
)
from repro.predictors.cosmos import Cosmos
from repro.predictors.msp import Msp
from repro.predictors.storage import StorageProfile, storage_overhead_bytes
from repro.predictors.swi import EarlyWriteInvalidateTable
from repro.predictors.vmsp import Vmsp

PREDICTOR_CLASSES = {cls.name: cls for cls in (Cosmos, Msp, Vmsp)}


def make_predictor(name: str, depth: int = 1) -> DirectoryPredictor:
    """Instantiate a predictor by its paper name ('Cosmos'/'MSP'/'VMSP')."""
    try:
        cls = PREDICTOR_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(PREDICTOR_CLASSES))
        raise ValueError(f"unknown predictor {name!r} (known: {known})") from None
    return cls(depth=depth)


__all__ = [
    "Cosmos",
    "DirectoryPredictor",
    "EarlyWriteInvalidateTable",
    "Msp",
    "Outcome",
    "PredictionStats",
    "PREDICTOR_CLASSES",
    "ReadVector",
    "StorageProfile",
    "Token",
    "Vmsp",
    "make_predictor",
    "storage_overhead_bytes",
]
