"""VMSP — the Vector Memory Sharing Predictor (paper Section 3.1).

A full-map protocol lets any number of processors hold read-only copies
simultaneously, so a predictor need only identify *which* processors
read a block — not the order in which their requests happen to arrive.
VMSP therefore folds each read sequence (the reads between two writes)
into a single reader bit-vector token, the way a full-map directory
encodes its sharer list.  Re-ordered reads that would thrash MSP's
pattern tables map to the same vector and predict correctly.

Scoring semantics (per-message, matching Figure 7 / Table 3 accounting):

* an arriving read is CORRECT when the pattern table predicts a vector
  containing that (not yet seen) reader, WRONG when a different token is
  predicted, and UNPREDICTED when the table has no entry;
* the write/upgrade that closes a read sequence first commits the
  observed vector to the tables, then is itself scored against the
  entry keyed by the updated history.
"""

from __future__ import annotations

from repro.common.types import BlockId, Message, MessageKind, NodeId
from repro.predictors.base import (
    DirectoryPredictor,
    Outcome,
    ReadVector,
    Token,
)
from repro.predictors.storage import (
    StorageProfile,
    request_token_bits,
    vmsp_tokens_bits,
)


class Vmsp(DirectoryPredictor):
    """Two-level predictor with vector-encoded read sequences."""

    name = "VMSP"

    def __init__(self, depth: int = 1) -> None:
        super().__init__(depth=depth)
        self._runs: dict[BlockId, set[NodeId]] = {}

    def observe(self, message: Message) -> Outcome:
        if not message.is_request:
            self.stats.record(Outcome.IGNORED)
            return Outcome.IGNORED
        block = message.block
        if message.kind is MessageKind.READ:
            outcome = self._observe_read(block, message.node)
        else:
            outcome = self._observe_write(block, message.token)
        self.stats.record(outcome)
        return outcome

    def observe_request(
        self, kind: MessageKind, node: NodeId, block: BlockId
    ) -> Outcome:
        """Observe a request without boxing it into a :class:`Message`.

        The fast timing engine's speculation path: one call per
        directory transaction, no per-message dataclass, no throwaway
        set allocations.  The outcome, learning, and statistics are
        bit-identical to feeding the equivalent request through
        :meth:`observe` (the reference engines keep doing exactly
        that); the golden equivalence suite gates the two against each
        other.
        """
        if kind is MessageKind.READ:
            history = self._history.get(block, ())
            run = self._runs.get(block)
            if run is None:
                run = self._runs[block] = set()
            outcome = self._score_read(block, history, run, node)
            run.add(node)
        else:
            self._close_run(block)
            outcome = self._observe_token(block, (kind, node))
        self.stats.record(outcome)
        return outcome

    # ------------------------------------------------------------------
    # reads: scored against the currently predicted vector
    # ------------------------------------------------------------------
    def _observe_read(self, block: BlockId, node: NodeId) -> Outcome:
        history = self._history.get(block, ())
        run = self._runs.setdefault(block, set())
        outcome = self._score_read(block, history, run, node)
        run.add(node)
        return outcome

    def _score_read(
        self,
        block: BlockId,
        history: tuple[Token, ...],
        run: set[NodeId],
        node: NodeId,
    ) -> Outcome:
        if len(history) < self.depth:
            return Outcome.UNPREDICTED
        predicted = self._patterns.get(block, {}).get(history)
        if predicted is None:
            return Outcome.UNPREDICTED
        if isinstance(predicted, ReadVector):
            if node in predicted and node not in run:
                return Outcome.CORRECT
            return Outcome.WRONG
        return Outcome.WRONG  # a write/upgrade was predicted instead

    # ------------------------------------------------------------------
    # writes: close any open run, then standard two-level scoring
    # ------------------------------------------------------------------
    def _observe_write(self, block: BlockId, token: Token) -> Outcome:
        self._close_run(block)
        return self._observe_token(block, token)

    def _close_run(self, block: BlockId) -> None:
        run = self._runs.get(block)
        if not run:
            return
        vector = ReadVector(frozenset(run))
        history = self._history.get(block, ())
        self._learn(block, history, vector)
        self._history[block] = (history + (vector,))[-self.depth :]
        self._runs[block] = set()

    def flush(self) -> None:
        """Commit still-open read runs (end of trace) to the tables."""
        for block in list(self._runs):
            self._close_run(block)

    # ------------------------------------------------------------------
    # speculation support
    # ------------------------------------------------------------------
    def predicted_read_vector(self, block: BlockId) -> frozenset[NodeId] | None:
        """Readers predicted for the block's current/next read sequence.

        Returns the *remaining* predicted readers — the predicted vector
        minus any readers already observed in the open run — or None
        when no vector is predicted or the entry's speculation
        confidence has been exhausted by thrashing.  This is what
        First-Read and SWI speculation forward copies to (Section 4.1).
        """
        predicted = self.predicted_next(block)
        if not isinstance(predicted, ReadVector):
            return None
        history = self._history.get(block, ())
        if self.confidence(block, history) < 1:
            return None
        run = self._runs.get(block, set())
        return frozenset(predicted.readers - run)

    def open_run(self, block: BlockId) -> frozenset[NodeId]:
        """Readers observed since the last write (the open sequence)."""
        return frozenset(self._runs.get(block, set()))

    def has_open_run(self, block: BlockId) -> bool:
        """Whether any reader has been observed since the last write.

        The allocation-free truthiness probe of :meth:`open_run`, for
        the fast timing engine's first-of-run test.
        """
        return bool(self._runs.get(block))

    def observe_speculative_read(self, block: BlockId, node: NodeId) -> None:
        """Record a speculatively *performed* read without scoring it.

        When the home pushes a read-only copy to a predicted reader, the
        reader's request never arrives (it hits the pushed copy
        locally), so the home treats the push as the read itself.  This
        keeps the tables trained while speculation is hiding requests
        (Section 4.2's verification loop corrects the tables when the
        push turns out to be wrong).
        """
        self._runs.setdefault(block, set()).add(node)

    @classmethod
    def storage_profile(cls, num_nodes: int, depth: int) -> StorageProfile:
        # A pattern entry holds depth + 1 alternating tokens (key plus
        # prediction); at depth one that is 18 + 6 bits, because a vector
        # is always followed by a write or upgrade (Section 7.3).
        history_bits = vmsp_tokens_bits(num_nodes, depth)
        prediction_bits = vmsp_tokens_bits(num_nodes, depth + 1) - history_bits
        return StorageProfile(
            history_bits=history_bits,
            pattern_entry_bits=history_bits + prediction_bits,
        )
