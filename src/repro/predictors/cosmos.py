"""Cosmos — the general message predictor baseline (Mukherjee & Hill).

Cosmos records *every* coherence message arriving at the directory —
requests and acknowledgements alike — in its per-block history and
pattern tables.  The paper's Section 3 identifies the consequences this
reproduction demonstrates empirically: re-ordered invalidation
acknowledgements perturb the tables, inflate the entry count, and widen
the token encoding from 2 to 3 type bits.
"""

from __future__ import annotations

from repro.common.types import Message
from repro.predictors.base import DirectoryPredictor, Outcome
from repro.predictors.storage import StorageProfile, general_token_bits


class Cosmos(DirectoryPredictor):
    """Two-level predictor over all directory-arriving messages."""

    name = "Cosmos"

    def observe(self, message: Message) -> Outcome:
        outcome = self._observe_token(message.block, message.token)
        self.stats.record(outcome)
        return outcome

    @classmethod
    def storage_profile(cls, num_nodes: int, depth: int) -> StorageProfile:
        token = general_token_bits(num_nodes)
        return StorageProfile(
            history_bits=token * depth,
            pattern_entry_bits=token * depth + token,
        )
