"""Speculative Write-Invalidation support tables (paper Section 4.1).

SWI predicts that a processor has finished writing a memory block when
the *same processor's next* write (or upgrade) request — to a different
block — arrives at the directory.  The MSP keeps an early-write-
invalidate table recording the block address of the last write request
per processor; a hit advises the protocol to invalidate the writable
copy early and forward the block to the predicted consumers.

To prevent repeated premature invalidations, SWI keeps one bit per
write/upgrade pattern-table entry recording that a previous speculative
invalidation for that write was premature; suppressed entries no longer
trigger (Section 4.2).
"""

from __future__ import annotations

from repro.common.types import BlockId, NodeId
from repro.predictors.base import HistoryKey


class EarlyWriteInvalidateTable:
    """Last-written-block table plus per-pattern-entry suppression bits."""

    def __init__(self) -> None:
        self._last_write: dict[NodeId, BlockId] = {}
        self._suppressed: set[tuple[BlockId, HistoryKey]] = set()

    def record_write(self, writer: NodeId, block: BlockId) -> BlockId | None:
        """Record a write request; return the SWI candidate block.

        The candidate is the block this writer wrote *previously* — the
        one SWI now believes the writer is done with.  Returns None when
        there is no previous write or the writer re-wrote the same block
        (a signal that the done-writing heuristic does not hold).
        """
        previous = self._last_write.get(writer)
        self._last_write[writer] = block
        if previous is None or previous == block:
            return None
        return previous

    def last_write(self, writer: NodeId) -> BlockId | None:
        return self._last_write.get(writer)

    # ------------------------------------------------------------------
    # premature-invalidation suppression
    # ------------------------------------------------------------------
    def suppress(self, block: BlockId, history: HistoryKey) -> None:
        """Mark the write pattern entry as previously premature."""
        self._suppressed.add((block, history))

    def is_suppressed(self, block: BlockId, history: HistoryKey) -> bool:
        return (block, history) in self._suppressed

    @property
    def suppressed_count(self) -> int:
        return len(self._suppressed)
