"""MSP — the base Memory Sharing Predictor (paper Section 3).

The key observation: to hide remote access latency a predictor only
needs to predict the *request* messages (read / write / upgrade); the
acknowledgements are always direct responses to protocol actions and
carry no information.  MSP therefore filters acks and writebacks out of
the history and pattern tables, which removes their re-ordering
perturbation, shrinks the tables, and narrows the type encoding to two
bits.
"""

from __future__ import annotations

from repro.common.types import Message
from repro.predictors.base import DirectoryPredictor, Outcome
from repro.predictors.storage import StorageProfile, request_token_bits


class Msp(DirectoryPredictor):
    """Two-level predictor over request messages only."""

    name = "MSP"

    def observe(self, message: Message) -> Outcome:
        if not message.is_request:
            self.stats.record(Outcome.IGNORED)
            return Outcome.IGNORED
        outcome = self._observe_token(message.block, message.token)
        self.stats.record(outcome)
        return outcome

    @classmethod
    def storage_profile(cls, num_nodes: int, depth: int) -> StorageProfile:
        token = request_token_bits(num_nodes)
        return StorageProfile(
            history_bits=token * depth,
            pattern_entry_bits=token * depth + token,
        )
