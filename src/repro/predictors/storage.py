"""Predictor storage-overhead model (paper Section 7.3 / Table 4).

The paper prices table storage for a 16-processor machine as follows
(history depth one):

* Cosmos encodes 5 message kinds (3 bits) plus a processor id (4 bits):
  7 bits per token; a history entry is one token (7 bits) and a pattern
  entry is token + prediction (14 bits), so a block costs
  ``(7 + 14·pte) / 8`` bytes.
* MSP encodes 3 request kinds (2 bits) plus a processor id: 6 bits per
  token; ``(6 + 12·pte) / 8`` bytes.
* VMSP's read-vector token is 2 + 16 bits; because a vector is always
  followed by a write or upgrade, a pattern entry contains at most one
  vector: 18 bits of history and 18 + 6 bits per entry, i.e.
  ``(18 + 24·pte) / 8`` bytes.

For deeper histories the same token costs apply per history position;
for VMSP, vectors and write tokens alternate, so at most
``ceil(k / 2)`` of any ``k`` consecutive tokens are vectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Message-kind encoding widths (Section 7.3).
GENERAL_TYPE_BITS = 3  # read, write, upgrade, ack, writeback
REQUEST_TYPE_BITS = 2  # read, write, upgrade


@dataclass(frozen=True, slots=True)
class StorageProfile:
    """Bit costs of one history entry and one pattern-table entry."""

    history_bits: int
    pattern_entry_bits: int

    def bytes_per_block(self, average_pte: float) -> float:
        """Per-block table storage in bytes for an average entry count."""
        return (self.history_bits + self.pattern_entry_bits * average_pte) / 8


def pid_bits(num_nodes: int) -> int:
    """Bits to encode a processor id (4 for the paper's 16 nodes)."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    return max(1, math.ceil(math.log2(num_nodes)))


def general_token_bits(num_nodes: int) -> int:
    """One Cosmos token: message type + processor id (7 bits at n=16)."""
    return GENERAL_TYPE_BITS + pid_bits(num_nodes)


def request_token_bits(num_nodes: int) -> int:
    """One MSP token: request type + processor id (6 bits at n=16)."""
    return REQUEST_TYPE_BITS + pid_bits(num_nodes)


def vector_token_bits(num_nodes: int) -> int:
    """One VMSP vector token: request type + full reader bit-vector."""
    return REQUEST_TYPE_BITS + num_nodes


def vmsp_tokens_bits(num_nodes: int, count: int) -> int:
    """Worst-case bits for ``count`` consecutive VMSP history tokens.

    Read vectors are always separated by write/upgrade tokens, so at
    most ``ceil(count / 2)`` of them are vectors.
    """
    vectors = math.ceil(count / 2)
    writes = count - vectors
    return vectors * vector_token_bits(num_nodes) + writes * request_token_bits(
        num_nodes
    )


def storage_overhead_bytes(
    profile: StorageProfile, average_pte: float
) -> float:
    """Convenience wrapper matching the paper's 'ovh' column."""
    return profile.bytes_per_block(average_pte)


def vmsp_break_even_readers(num_nodes: int) -> float:
    """Minimum readers per block for VMSP's encoding to beat MSP's.

    Section 3.1: VMSP's vector is more compact than MSP's individual
    read entries only when the number of readers exceeds
    ``(2 + n) / (2 + log n)``.
    """
    return (REQUEST_TYPE_BITS + num_nodes) / (
        REQUEST_TYPE_BITS + pid_bits(num_nodes)
    )
