"""Two-level predictor scaffolding shared by Cosmos, MSP, and VMSP.

The structure mirrors Yeh & Patt's PAp branch predictor as adapted by
the paper (Section 2.1): a per-block *history table* holds the most
recent ``depth`` tokens, and a per-block *pattern table* maps each
observed history to the token that followed it last time.  A prediction
is made whenever the pattern table holds an entry for the current
history; its correctness is scored against the message that actually
arrives.  This per-message accounting is exactly what Figure 7 and
Table 3 of the paper report:

* accuracy          = correct / predicted            (Figure 7/8)
* coverage          = predicted / observed           (Table 3, first %)
* correct fraction  = correct / observed             (Table 3, in parens)
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Union

from repro.common.types import BlockId, Message, MessageKind, NodeId


class Outcome(enum.Enum):
    """Per-message result of presenting a message to a predictor."""

    CORRECT = "correct"  # prediction existed and matched
    WRONG = "wrong"  # prediction existed and missed
    UNPREDICTED = "unpredicted"  # no pattern entry (still learning)
    IGNORED = "ignored"  # message outside the predictor's scope

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Outcome.{self.name}"


@dataclass(frozen=True, slots=True)
class ReadVector:
    """VMSP's compact encoding of a read sequence: the set of readers."""

    readers: frozenset[NodeId]

    def __contains__(self, node: NodeId) -> bool:
        return node in self.readers

    def __len__(self) -> int:
        return len(self.readers)

    def __str__(self) -> str:
        inner = ",".join(f"P{r}" for r in sorted(self.readers))
        return f"<Read,{{{inner}}}>"


#: A pattern-table token: a (kind, node) request/message pair, or — for
#: VMSP only — a ReadVector standing for a whole read sequence.
Token = Union[tuple[MessageKind, NodeId], ReadVector]


@dataclass(slots=True)
class PredictionStats:
    """Aggregate per-message outcome counts."""

    observed: int = 0
    predicted: int = 0
    correct: int = 0
    ignored: int = 0

    def record(self, outcome: Outcome) -> None:
        if outcome is Outcome.IGNORED:
            self.ignored += 1
            return
        self.observed += 1
        if outcome is Outcome.UNPREDICTED:
            return
        self.predicted += 1
        if outcome is Outcome.CORRECT:
            self.correct += 1

    @property
    def wrong(self) -> int:
        return self.predicted - self.correct

    @property
    def accuracy(self) -> float:
        """Correct predictions over all predictions made (Figure 7)."""
        if self.predicted == 0:
            return 0.0
        return self.correct / self.predicted

    @property
    def coverage(self) -> float:
        """Messages predicted over messages observed (Table 3)."""
        if self.observed == 0:
            return 0.0
        return self.predicted / self.observed

    @property
    def correct_fraction(self) -> float:
        """Messages correctly predicted over observed (Table 3, parens)."""
        if self.observed == 0:
            return 0.0
        return self.correct / self.observed

    def merged_with(self, other: "PredictionStats") -> "PredictionStats":
        return PredictionStats(
            observed=self.observed + other.observed,
            predicted=self.predicted + other.predicted,
            correct=self.correct + other.correct,
            ignored=self.ignored + other.ignored,
        )


HistoryKey = tuple[Token, ...]


class DirectoryPredictor(abc.ABC):
    """Common two-level machinery over per-block history/pattern tables."""

    #: Paper name, e.g. "Cosmos"; set by subclasses.
    name: str = "abstract"

    #: Saturating per-entry speculation confidence bounds.
    CONFIDENCE_MAX = 3
    #: Jaccard similarity above which two read vectors count as the
    #: "same" pattern when updating confidence (appbt's alternating
    #: edge consumers overlap by exactly one third, and still speculate
    #: in the paper's Table 5; ocean's reduction singletons do not).
    VECTOR_SIMILARITY = 1 / 3

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError("history depth must be >= 1")
        self.depth = depth
        self.stats = PredictionStats()
        self._history: dict[BlockId, HistoryKey] = {}
        self._patterns: dict[BlockId, dict[HistoryKey, Token]] = {}
        #: Per-entry speculation confidence.  Prediction *scoring* never
        #: consults this — it exists so the speculation engine does not
        #: keep pushing copies from entries that thrash (e.g. ocean's
        #: lock reduction, whose successor changes every iteration).
        self._confidence: dict[tuple[BlockId, HistoryKey], int] = {}

    # ------------------------------------------------------------------
    # the subclass contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def observe(self, message: Message) -> Outcome:
        """Present one directory-arriving message; score and learn."""

    @classmethod
    @abc.abstractmethod
    def storage_profile(cls, num_nodes: int, depth: int) -> "StorageProfileT":
        """Bit costs of a history entry and a pattern-table entry."""

    # ------------------------------------------------------------------
    # shared two-level mechanics
    # ------------------------------------------------------------------
    def _observe_token(self, block: BlockId, token: Token) -> Outcome:
        """Score ``token`` against the block's prediction, then learn it."""
        history = self._history.get(block, ())
        outcome = self._score(block, history, token)
        self._learn(block, history, token)
        self._history[block] = (history + (token,))[-self.depth :]
        return outcome

    def _score(
        self, block: BlockId, history: HistoryKey, token: Token
    ) -> Outcome:
        if len(history) < self.depth:
            return Outcome.UNPREDICTED
        predicted = self._patterns.get(block, {}).get(history)
        if predicted is None:
            return Outcome.UNPREDICTED
        return Outcome.CORRECT if predicted == token else Outcome.WRONG

    def _learn(self, block: BlockId, history: HistoryKey, token: Token) -> None:
        if len(history) < self.depth:
            return
        table = self._patterns.setdefault(block, {})
        key = (block, history)
        previous = table.get(history)
        if previous is None:
            self._confidence[key] = 1
        elif self._same_pattern(previous, token):
            self._confidence[key] = min(
                self.CONFIDENCE_MAX, self._confidence.get(key, 1) + 1
            )
        else:
            self._confidence[key] = max(0, self._confidence.get(key, 1) - 1)
        table[history] = token

    @classmethod
    def _same_pattern(cls, a: Token, b: Token) -> bool:
        """Whether a relearned token confirms the previous prediction."""
        if isinstance(a, ReadVector) and isinstance(b, ReadVector):
            union = a.readers | b.readers
            if not union:
                return True
            return len(a.readers & b.readers) / len(union) >= cls.VECTOR_SIMILARITY
        return a == b

    def confidence(self, block: BlockId, history: HistoryKey) -> int:
        """Speculation confidence of the entry keyed by ``history``."""
        return self._confidence.get((block, history), 0)

    # ------------------------------------------------------------------
    # introspection (used by speculation and the storage model)
    # ------------------------------------------------------------------
    def predicted_next(self, block: BlockId) -> Token | None:
        """The token predicted to arrive next for ``block``, if any."""
        history = self._history.get(block, ())
        if len(history) < self.depth:
            return None
        return self._patterns.get(block, {}).get(history)

    def current_history(self, block: BlockId) -> HistoryKey:
        return self._history.get(block, ())

    def remove_entry(
        self,
        block: BlockId,
        history: HistoryKey,
        expected: "Token | None" = None,
    ) -> bool:
        """Drop a mispredicted pattern entry (speculation feedback).

        Returns True when an entry was present and removed.  Section 4.2:
        "The MSP ... removes mispredicted request sequences from the
        pattern tables."

        ``expected`` guards against removing a *newer* prediction: the
        misspeculation verdict rides back on an invalidation, by which
        time ordinary learning may already have replaced the offending
        entry — removal then must not destroy the replacement.
        """
        table = self._patterns.get(block)
        if table is None:
            return False
        if expected is not None and table.get(history) != expected:
            return False
        return table.pop(history, None) is not None

    def pattern_entry_count(self, block: BlockId) -> int:
        return len(self._patterns.get(block, {}))

    def allocated_blocks(self) -> list[BlockId]:
        """Blocks that have begun training (appear in the history table)."""
        return sorted(self._history)

    def average_pattern_entries(self) -> float:
        """Mean pattern-table entries per allocated block (Table 4 'pte')."""
        blocks = self.allocated_blocks()
        if not blocks:
            return 0.0
        total = sum(self.pattern_entry_count(b) for b in blocks)
        return total / len(blocks)


# Resolved late to avoid an import cycle with repro.predictors.storage.
from repro.predictors.storage import StorageProfile as StorageProfileT  # noqa: E402
