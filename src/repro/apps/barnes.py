"""barnes — SPLASH-2 Barnes-Hut N-body simulation.

Processors traverse a shared octree to compute gravitational forces.
The tree is rebuilt every iteration to reflect body movement, so the
read-sharing patterns change rapidly (paper Section 7.1):

* every tree block is rewritten by its owner each iteration (rebuild)
  and read by the subset of processors whose partial traversals touch
  it; that subset persists for a few iterations and is then redrawn;
* the *readers* arrive in a different order every iteration (each
  processor's traversal workload shifts with the tree), but the
  *acknowledgements* do not race — the read-sharing is asynchronous
  with minimal queueing, so invalidation acks return in full-map
  order every time.  Hence MSP does not improve on Cosmos, while VMSP's
  order-insensitive vectors lift accuracy to ~80% (Figure 7);
* rapid pattern change means little pattern-table reuse: barnes shows
  the lowest prediction coverage in Table 3 and its Cosmos table
  footprint explodes at depth four in Table 4;
* the application is compute-bound, so even good speculation buys
  little execution time (Figure 9).
"""

from __future__ import annotations

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


class Barnes(SharedMemoryApp):
    """Octree force computation with churning reader sets."""

    name = "barnes"
    paper_input = "4K particles"
    paper_iterations = 21

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        tree_blocks_per_proc: int = 12,
        mutate: float = 0.65,
        redraw: float = 0.10,
        max_readers: int = 5,
        read_race_probability: float = 0.10,
        compute_cycles: int = 90000,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if not 0.0 <= mutate <= 1.0 or not 0.0 <= redraw <= 1.0:
            raise ValueError("mutate/redraw must be within [0, 1]")
        if max_readers < 1:
            raise ValueError("max_readers must be >= 1")
        if not 0.0 <= read_race_probability <= 1.0:
            raise ValueError("read_race_probability must be within [0, 1]")
        self.tree_blocks_per_proc = tree_blocks_per_proc
        #: Probability per iteration that one reader is swapped out.
        self.mutate = mutate
        #: Probability per iteration that the whole set is redrawn.
        self.redraw = redraw
        self.max_readers = max_readers
        #: Probability that an iteration's traversal re-orders the reads.
        self.read_race_probability = read_race_probability
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 21

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        rng = self.rng("tree")
        jitter = self.rng("jitter")
        space = AddressSpace(self.num_procs)

        blocks: list[tuple[NodeId, BlockId]] = []
        for p in range(self.num_procs):
            for block in space.alloc(p, self.tree_blocks_per_proc):
                blocks.append((p, block))

        # Current reader set per block; redrawn with probability `churn`
        # each iteration as the octree shape shifts.
        readers: dict[BlockId, tuple[NodeId, ...]] = {
            block: self._draw_readers(rng, owner) for owner, block in blocks
        }

        race_rng = self.rng("races")
        # Static per-processor traversal ranks: each processor visits
        # tree blocks in its own fixed order, so concurrent readers of a
        # block arrive at spread-out times rather than in lockstep.
        traversal_rng = self.rng("traversal")
        all_blocks = [block for _owner, block in blocks]
        rank: dict[NodeId, dict[BlockId, int]] = {}
        for p in range(self.num_procs):
            order = traversal_rng.shuffled(all_blocks)
            rank[p] = {block: i for i, block in enumerate(order)}
        for _ in range(self.iterations):
            with b.phase("tree-build"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles // 4 + jitter.randint(0, 200))
                for owner, block in blocks:
                    b.write(owner, block)
                # The builder immediately reads the cells back while
                # linking the tree; silent under the base protocol (it
                # still holds the rebuilt copies exclusively) but the
                # access that exposes a premature SWI invalidation ("the
                # producer ... reads the block upon writing to it",
                # Section 7.4).
                for owner, block in blocks:
                    b.read(owner, block)
            # Asynchronous traversals: reads race (when workloads shift
            # enough), acks never do.  Each processor traverses in its
            # own (static) order, so different blocks' readers arrive at
            # different times.
            with b.phase(
                "force",
                racy_reads=race_rng.chance(self.read_race_probability),
                racy_acks=False,
            ):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles + jitter.randint(0, 400))
                for owner, block in blocks:
                    readers[block] = self._evolve(rng, owner, readers[block])
                reads_by_proc: dict[NodeId, list[BlockId]] = {}
                for _owner, block in blocks:
                    for reader in readers[block]:
                        reads_by_proc.setdefault(reader, []).append(block)
                for reader in sorted(reads_by_proc):
                    sequence = sorted(reads_by_proc[reader], key=rank[reader].__getitem__)
                    for block in sequence:
                        b.read(reader, block)

    def _draw_readers(self, rng, owner: NodeId) -> tuple[NodeId, ...]:
        others = [q for q in range(self.num_procs) if q != owner]
        size = rng.randint(2, min(self.max_readers, len(others)))
        return tuple(sorted(rng.sample(others, size)))

    def _evolve(
        self, rng, owner: NodeId, current: tuple[NodeId, ...]
    ) -> tuple[NodeId, ...]:
        """Tree movement: occasionally swap one reader or redraw the set."""
        if rng.chance(self.redraw):
            return self._draw_readers(rng, owner)
        if rng.chance(self.mutate):
            outside = [
                q
                for q in range(self.num_procs)
                if q != owner and q not in current
            ]
            if outside:
                replaced = rng.choice(current)
                kept = [r for r in current if r != replaced]
                return tuple(sorted(kept + [rng.choice(outside)]))
        return current
