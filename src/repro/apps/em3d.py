"""em3d — electromagnetic wave propagation on a bipartite graph.

The Split-C benchmark propagates values between electric (E) and
magnetic (H) field nodes along the edges of a static bipartite graph.
Sharing structure (paper Sections 6-7):

* **static producer/consumer** — each graph node is owned and rewritten
  by one processor every iteration and read by a small, fixed set of
  remote consumers (the paper's input has 15% remote edges and a small
  read-sharing degree);
* consumers read in a stable order (the graph is static), but the
  invalidation acknowledgements race — this is why Cosmos drops to
  ~79% on em3d while MSP/VMSP reach ~99% (Figure 7);
* the producer writes each block exactly once per iteration and never
  reads it back, which is why Speculative Write-Invalidation succeeds
  on ~98% of writes (Table 5).
"""

from __future__ import annotations

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


class Em3d(SharedMemoryApp):
    """Static bipartite producer/consumer kernel."""

    name = "em3d"
    paper_input = "76800 nodes, 15% remote"
    paper_iterations = 50

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        nodes_per_proc: int = 48,
        remote_fraction: float = 0.15,
        ack_race_probability: float = 0.55,
        compute_cycles: int = 950,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if nodes_per_proc < 1:
            raise ValueError("nodes_per_proc must be >= 1")
        if not 0.0 < remote_fraction <= 1.0:
            raise ValueError("remote_fraction must be in (0, 1]")
        if not 0.0 <= ack_race_probability <= 1.0:
            raise ValueError("ack_race_probability must be within [0, 1]")
        self.nodes_per_proc = nodes_per_proc
        self.remote_fraction = remote_fraction
        self.ack_race_probability = ack_race_probability
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 20

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        rng = self.rng("graph")
        space = AddressSpace(self.num_procs)
        shared_e = self._make_field(space, rng.split("e"))
        shared_h = self._make_field(space, rng.split("h"))
        jitter = self.rng("jitter")
        race_rng = self.rng("races")
        self._ranks = self._traversal_ranks(shared_e, shared_h)

        for _ in range(self.iterations):
            # E phase: read remote H dependencies, rewrite own E nodes.
            self._half_step(
                b, "e-compute", shared_e, shared_h, jitter, race_rng
            )
            # H phase: read remote E dependencies, rewrite own H nodes.
            self._half_step(
                b, "h-compute", shared_h, shared_e, jitter, race_rng
            )

    def _make_field(
        self, space: AddressSpace, rng
    ) -> dict[NodeId, list[tuple[BlockId, tuple[NodeId, ...]]]]:
        """Per owner: the remote-shared blocks and their consumer sets.

        Only the ``remote_fraction`` of graph nodes with remote edges
        generate coherence traffic; purely local nodes are folded into
        each phase's compute time.  Consumer-set sizes follow the
        paper's "small read-sharing degree": mostly one or two readers.
        """
        field: dict[NodeId, list[tuple[BlockId, tuple[NodeId, ...]]]] = {}
        shared_count = max(1, round(self.nodes_per_proc * self.remote_fraction))
        for p in range(self.num_procs):
            others = [q for q in range(self.num_procs) if q != p]
            blocks = space.alloc(p, shared_count)
            entries = []
            for block in blocks:
                # Small read-sharing degree, two consumers typically —
                # which is what makes First-Read cover ~58% of reads
                # ((degree-1)/degree) as in Table 5.
                degree = 2 if rng.random() < 0.60 else 3
                consumers = tuple(sorted(rng.sample(others, degree)))
                entries.append((block, consumers))
            field[p] = entries
        return field

    def _half_step(
        self, b: WorkloadBuilder, name: str, producers, consumed, jitter, race_rng
    ) -> None:
        """One half-iteration: write own field, read the other field."""
        # Writes first: the values read below are the previous half
        # phase's, so the producer writes of *this* field and consumer
        # reads of the *other* field are independent.
        with b.phase(f"{name}-write"):
            for p in range(self.num_procs):
                b.compute(p, self._local_work(jitter))
                for block, _consumers in producers[p]:
                    b.write(p, block)
        with b.phase(
            f"{name}-read",
            racy_reads=False,
            racy_acks=race_rng.chance(self.ack_race_probability),
        ):
            for p in range(self.num_procs):
                b.compute(p, self._local_work(jitter))
            # Each consumer walks its (static) dependency list in its
            # own order, so two consumers of the same block arrive at
            # spread-out times — the reads stay deterministic, only the
            # acks race (Section 7.1).
            reads_by_consumer: dict[NodeId, list[BlockId]] = {}
            for p in range(self.num_procs):
                for block, consumers in consumed[p]:
                    for consumer in consumers:
                        reads_by_consumer.setdefault(consumer, []).append(block)
            for consumer in sorted(reads_by_consumer):
                ranks = self._ranks[consumer]
                for block in sorted(reads_by_consumer[consumer], key=ranks.__getitem__):
                    b.read(consumer, block)

    def _traversal_ranks(self, shared_e, shared_h) -> dict[NodeId, dict[BlockId, int]]:
        """Static per-processor visit order over all shared blocks."""
        rng = self.rng("traversal")
        all_blocks = [
            block
            for field in (shared_e, shared_h)
            for entries in field.values()
            for block, _consumers in entries
        ]
        ranks: dict[NodeId, dict[BlockId, int]] = {}
        for p in range(self.num_procs):
            order = rng.shuffled(all_blocks)
            ranks[p] = {block: i for i, block in enumerate(order)}
        return ranks

    def _local_work(self, jitter) -> int:
        """Compute representing the ~85% purely local graph nodes."""
        base = self.compute_cycles * self.nodes_per_proc // 8
        return base + jitter.randint(0, self.compute_cycles)
