"""Workload representation shared by all application kernels.

A :class:`Workload` is the bridge between an application kernel and the
two evaluation tiers:

* the **block view** — one :class:`~repro.protocol.epochs.BlockScript`
  per shared block, consumed by the trace-driven protocol emulator for
  the predictor experiments, and
* the **program view** — per-processor operation lists organized into
  barrier-delimited :class:`Phase` objects, consumed by the event-driven
  timing simulator for the speculation experiments.

Application kernels construct both views simultaneously through a
:class:`WorkloadBuilder`, which guarantees they describe the same
logical computation: every ``read``/``write`` call appends both a
processor operation and a block-script event.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.common.rng import DeterministicRng
from repro.common.types import BlockId, NodeId
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


# ----------------------------------------------------------------------
# processor operations (program view)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Compute:
    """Local computation for a number of processor cycles."""

    cycles: int


@dataclass(frozen=True, slots=True)
class MemRead:
    """A load from a shared block."""

    block: BlockId


@dataclass(frozen=True, slots=True)
class MemWrite:
    """A store to a shared block."""

    block: BlockId


@dataclass(frozen=True, slots=True)
class LockAcquire:
    lock: int


@dataclass(frozen=True, slots=True)
class LockRelease:
    lock: int


Op = Union[Compute, MemRead, MemWrite, LockAcquire, LockRelease]


@dataclass(slots=True)
class Phase:
    """A barrier-delimited region of per-processor operation lists."""

    name: str
    ops: dict[NodeId, list[Op]]
    racy_reads: bool = False
    racy_acks: bool = False

    def ops_for(self, proc: NodeId) -> list[Op]:
        return self.ops.get(proc, [])

    def op_count(self) -> int:
        return sum(len(ops) for ops in self.ops.values())


@dataclass(slots=True)
class Workload:
    """Both views of one application run."""

    name: str
    num_procs: int
    phases: list[Phase] = field(default_factory=list)
    scripts: dict[BlockId, BlockScript] = field(default_factory=dict)
    locks: set[int] = field(default_factory=set)

    def block_scripts(self) -> list[BlockScript]:
        return [self.scripts[b] for b in sorted(self.scripts)]

    def total_ops(self) -> int:
        return sum(phase.op_count() for phase in self.phases)

    def blocks(self) -> list[BlockId]:
        return sorted(self.scripts)


class WorkloadBuilder:
    """Incrementally constructs a :class:`Workload`.

    The builder tracks, per phase and per block, the pending run of read
    accesses so consecutive reads become a single
    :class:`~repro.protocol.epochs.ReadEpoch` whose raciness comes from
    the enclosing phase.  Calls must be made in the application's
    logical dependency order (producer writes before consumer reads of
    the new value), which is the order the block scripts replay.
    """

    def __init__(self, name: str, num_procs: int) -> None:
        if num_procs < 2:
            raise ValueError("workloads need at least two processors")
        self._workload = Workload(name=name, num_procs=num_procs)
        self._phase: Phase | None = None
        # Pending (not yet flushed) read run per block: list of readers.
        self._pending_reads: dict[BlockId, list[NodeId]] = {}
        self._finished = False

    @property
    def num_procs(self) -> int:
        return self._workload.num_procs

    # ------------------------------------------------------------------
    # phase structure
    # ------------------------------------------------------------------
    @contextmanager
    def phase(
        self,
        name: str,
        racy_reads: bool = False,
        racy_acks: bool = False,
    ) -> Iterator[None]:
        """Open a barrier-delimited phase; closes (with a barrier) on exit."""
        self._require_open()
        if self._phase is not None:
            raise RuntimeError("phases cannot nest")
        self._phase = Phase(
            name=name,
            ops={p: [] for p in range(self.num_procs)},
            racy_reads=racy_reads,
            racy_acks=racy_acks,
        )
        try:
            yield
        finally:
            self._flush_reads()
            self._workload.phases.append(self._phase)
            self._phase = None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def read(self, proc: NodeId, block: BlockId) -> None:
        phase = self._current_phase()
        phase.ops[proc].append(MemRead(block))
        run = self._pending_reads.setdefault(block, [])
        if proc not in run:
            run.append(proc)

    def write(self, proc: NodeId, block: BlockId) -> None:
        phase = self._current_phase()
        phase.ops[proc].append(MemWrite(block))
        self._flush_reads_for(block)
        self._script(block).append(WriteEpoch(writer=proc))

    def compute(self, proc: NodeId, cycles: int) -> None:
        if cycles < 0:
            raise ValueError("compute cycles must be >= 0")
        if cycles == 0:
            return
        self._current_phase().ops[proc].append(Compute(cycles))

    def lock(self, proc: NodeId, lock_id: int) -> None:
        self._current_phase().ops[proc].append(LockAcquire(lock_id))
        self._workload.locks.add(lock_id)

    def unlock(self, proc: NodeId, lock_id: int) -> None:
        self._current_phase().ops[proc].append(LockRelease(lock_id))

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def finish(self) -> Workload:
        self._require_open()
        if self._phase is not None:
            raise RuntimeError("finish() called inside an open phase")
        self._finished = True
        return self._workload

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._finished:
            raise RuntimeError("builder already finished")

    def _current_phase(self) -> Phase:
        self._require_open()
        if self._phase is None:
            raise RuntimeError("operations must be inside a phase")
        return self._phase

    def _script(self, block: BlockId) -> BlockScript:
        scripts = self._workload.scripts
        if block not in scripts:
            scripts[block] = BlockScript(block=block)
        return scripts[block]

    def _flush_reads_for(self, block: BlockId) -> None:
        run = self._pending_reads.pop(block, None)
        if not run:
            return
        phase = self._phase
        # Reads may be flushed by a phase boundary after the phase object
        # was already detached; fall back to the last recorded phase.
        if phase is None and self._workload.phases:
            phase = self._workload.phases[-1]
        racy = phase.racy_reads if phase else False
        racy_acks = phase.racy_acks if phase else False
        self._script(block).append(
            ReadEpoch(readers=tuple(run), racy=racy, racy_acks=racy_acks)
        )

    def _flush_reads(self) -> None:
        for block in list(self._pending_reads):
            self._flush_reads_for(block)


# ----------------------------------------------------------------------
# the application interface
# ----------------------------------------------------------------------
class SharedMemoryApp(abc.ABC):
    """One of the paper's Table 2 applications.

    Subclasses implement :meth:`_build`, constructing the workload with
    a :class:`WorkloadBuilder`.  ``iterations`` controls the number of
    outer iterations; ``paper_input`` / ``paper_iterations`` record the
    configuration the paper used (Table 2) for documentation purposes.
    """

    #: Paper name, e.g. "em3d"; set by subclasses.
    name: str = "abstract"
    #: The paper's input data set description (Table 2).
    paper_input: str = ""
    #: The paper's iteration count (Table 2).
    paper_iterations: int = 0

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
    ) -> None:
        if num_procs < 2:
            raise ValueError("need at least two processors")
        self.num_procs = num_procs
        self.iterations = iterations if iterations is not None else self.default_iterations()
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        self.seed = seed

    @classmethod
    def default_iterations(cls) -> int:
        """Scaled-down default iteration count (paper counts in Table 2)."""
        return 10

    def rng(self, label: str) -> DeterministicRng:
        return DeterministicRng(self.seed, f"{self.name}/{label}")

    def build(self) -> Workload:
        """Construct the workload (deterministic for a given seed)."""
        builder = WorkloadBuilder(self.name, self.num_procs)
        self._build(builder)
        return builder.finish()

    @abc.abstractmethod
    def _build(self, b: WorkloadBuilder) -> None:
        """Emit the kernel's phases into the builder."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(num_procs={self.num_procs}, "
            f"iterations={self.iterations}, seed={self.seed!r})"
        )
