"""unstructured — computational fluid dynamics on an unstructured mesh.

The shared-memory port uses a cyclic partitioning of the mesh, making
it the most communication-intensive application in the study (paper
Sections 6-7):

* **wide read-sharing producer/consumer** — each mesh-node block is
  rewritten once per iteration by its owner and then read by most of
  the machine (the paper reports ~12 reads per write in this phase);
  the read bursts race heavily, collapsing MSP to ~65% accuracy while
  VMSP's vectors restore it (Figure 7);
* **migratory sum reduction** — every iteration, a sequence of
  processors makes read+upgrade visits to each reduction block;
* **alternating participation** — processors whose contribution to the
  sum is zero skip the reduction *and* the surrounding communication,
  and some processors' contributions alternate between zero and
  non-zero every other iteration.  At history depth one the predictors
  therefore mispredict both the migratory visitors and the subsequent
  consumers in the producer/consumer phase, capping VMSP near ~87%;
  deeper histories separate the even- and odd-iteration patterns and
  recover most of the loss (Figure 8);
* producers write their blocks back-to-back and never revisit them, so
  SWI invalidates ~90% of writable copies and, chained with the
  migratory visits, speculatively covers most reads (Table 5).
"""

from __future__ import annotations

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


class Unstructured(SharedMemoryApp):
    """Wide producer/consumer plus alternating migratory reduction."""

    name = "unstructured"
    paper_input = "mesh.2K"
    paper_iterations = 50

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        mesh_blocks_per_proc: int = 4,
        reduction_blocks_per_proc: int = 5,
        stable_visitors: int | None = None,
        read_race_probability: float = 0.6,
        compute_cycles: int = 16000,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if stable_visitors is None:
            # Half the machine participates every iteration, leaving
            # room for the four alternating visitors.
            stable_visitors = max(2, min(8, num_procs - 4))
        if stable_visitors + 4 > num_procs:
            raise ValueError(
                "stable_visitors + 4 alternating visitors exceed the machine"
            )
        if not 0.0 <= read_race_probability <= 1.0:
            raise ValueError("read_race_probability must be within [0, 1]")
        self.mesh_blocks_per_proc = mesh_blocks_per_proc
        self.reduction_blocks_per_proc = reduction_blocks_per_proc
        self.stable_visitors = stable_visitors
        self.read_race_probability = read_race_probability
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 16

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        rng = self.rng("mesh")
        jitter = self.rng("jitter")
        space = AddressSpace(self.num_procs)

        # Mesh node blocks: wide reader sets whose stable core persists
        # while two members alternate with the iteration parity (zero
        # contributors skip the read).
        mesh: list[
            tuple[NodeId, BlockId, tuple[NodeId, ...], tuple[NodeId, ...]]
        ] = []
        for p in range(self.num_procs):
            others = [q for q in range(self.num_procs) if q != p]
            for block in space.alloc(p, self.mesh_blocks_per_proc):
                pool = rng.shuffled(others)
                narrowest = max(1, min(8, len(pool) - 2))
                widest = max(narrowest, min(12, len(pool) - 2))
                width = rng.randint(narrowest, widest)
                core = tuple(sorted(pool[:width]))
                even = tuple(sorted(core + (pool[width],)))
                odd = tuple(sorted(core + (pool[width + 1],)))
                mesh.append((p, block, even, odd))

        # Reduction blocks: visit sequence [head_alt, s0, mid_alt,
        # s1, ..., s_last] where head/mid alternate with parity.  The
        # head alternator is identifiable at depth one (the previous
        # iteration's pattern differs), the mid alternator only once the
        # history window reaches back to the head (depth four), giving
        # the paper's gradual depth recovery (Section 7.2).
        reduction: list[tuple[BlockId, tuple[NodeId, ...], tuple[NodeId, ...]]] = []
        for p in range(self.num_procs):
            for block in space.alloc(p, self.reduction_blocks_per_proc):
                order = rng.shuffled(range(self.num_procs))
                stable = order[: self.stable_visitors]
                alt = order[self.stable_visitors : self.stable_visitors + 4]
                even = (alt[0], stable[0], alt[1], *stable[1:])
                odd = (alt[2], stable[0], alt[3], *stable[1:])
                reduction.append((block, even, odd))

        # Static per-processor mesh traversal orders (cyclic partition).
        traversal_rng = self.rng("traversal")
        mesh_blocks = [block for _owner, block, _even, _odd in mesh]
        traversal: dict[NodeId, dict[BlockId, int]] = {}
        for p in range(self.num_procs):
            order = traversal_rng.shuffled(mesh_blocks)
            traversal[p] = {block: i for i, block in enumerate(order)}

        race_rng = self.rng("races")
        for iteration in range(self.iterations):
            with b.phase("compute-write"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles + jitter.randint(0, 50))
                for owner, block, _even, _odd in mesh:
                    b.write(owner, block)
            # The wide read bursts race in most — not all — iterations.
            # The invalidation bursts, in contrast, return in full-map
            # order: the directory walks its sharer bitmap and the acks
            # stream back in send order, so Cosmos is not additionally
            # perturbed (it tracks MSP on this application — Figure 7).
            racy = race_rng.chance(self.read_race_probability)
            with b.phase("gather", racy_reads=racy, racy_acks=False):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles // 2 + jitter.randint(0, 50))
                reads_by_reader: dict[NodeId, list[BlockId]] = {}
                for _owner, block, even, odd in mesh:
                    for reader in (even if iteration % 2 == 0 else odd):
                        reads_by_reader.setdefault(reader, []).append(block)
                for reader in sorted(reads_by_reader):
                    ranks = traversal[reader]
                    for block in sorted(
                        reads_by_reader[reader], key=ranks.__getitem__
                    ):
                        b.read(reader, block)
            # Reduction: each participant sweeps all reduction blocks in
            # a tight loop; participants enter the reduction one after
            # another as they finish their mesh work — modeled as
            # positional sub-phases.  The tight per-visitor sweep is
            # what lets SWI chain the migratory writes (Section 7.4).
            max_position = max(
                len(even if iteration % 2 == 0 else odd)
                for _b, even, odd in reduction
            )
            for position in range(max_position):
                with b.phase(f"reduction-{position}"):
                    for p in range(self.num_procs):
                        b.compute(p, 400 + jitter.randint(0, 100))
                    for block, even, odd in reduction:
                        visitors = even if iteration % 2 == 0 else odd
                        if position < len(visitors):
                            visitor = visitors[position]
                            b.read(visitor, block)
                            b.write(visitor, block)
