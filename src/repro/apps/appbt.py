"""appbt — NAS block-tridiagonal solver (shared-memory port).

Processors own sub-cubes of a 3D grid and perform a gaussian
elimination that sweeps the cube along each of the three dimensions in
turn, passing boundary data down a pipeline of processors (paper
Sections 6-7 and [5]):

* **face blocks** — on a sub-cube face, consumed by the single
  neighbour along that face's dimension: perfectly stable
  producer/consumer;
* **edge blocks** — on a sub-cube edge, consumed by *different*
  processors along the two adjacent dimensions in alternating sweeps.
  With a history depth of one no predictor can distinguish the two
  consumers, capping accuracy near 90%; depth two captures both
  patterns and lifts accuracy to 100% (Figure 8);
* some face blocks are read both by the pipeline successor and by a
  second processor working the perpendicular pencil, and those two
  reads race — separating VMSP from MSP at depth one;
* acknowledgements do *not* race (the pipeline spaces requests out),
  and because an ack identifies the previous consumer, Cosmos slightly
  *beats* MSP on appbt at depth one — the one application where acks
  carry useful information (Section 7.1).

The pipeline is modeled as barrier-separated stages, which preserves
the paper's observation that the consumer read and producer
write/upgrade requests sit on the pipeline's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


def _cube_shape(num_procs: int) -> tuple[int, int, int]:
    """Factor the processor count into the most cubical 3D grid."""
    best = (1, 1, num_procs)
    best_spread = num_procs
    for x in range(1, num_procs + 1):
        if num_procs % x:
            continue
        rest = num_procs // x
        for y in range(1, rest + 1):
            if rest % y:
                continue
            z = rest // y
            spread = max(x, y, z) - min(x, y, z)
            if spread < best_spread:
                best_spread = spread
                best = tuple(sorted((x, y, z)))
    return best


@dataclass(frozen=True, slots=True)
class _Face:
    """A boundary face: owner passes blocks to its dim-successor."""

    owner: NodeId
    dim: int
    consumer: NodeId
    blocks: tuple[BlockId, ...]
    #: Second (racing) reader for shared faces, None for plain faces.
    second_reader: NodeId | None = None

    def readers(self) -> tuple[NodeId, ...]:
        if self.second_reader is None:
            return (self.consumer,)
        return (self.consumer, self.second_reader)


@dataclass(frozen=True, slots=True)
class _Edge:
    """A sub-cube edge: consumed along two dimensions alternately."""

    owner: NodeId
    dims: tuple[int, int]
    consumers: tuple[NodeId, NodeId]
    blocks: tuple[BlockId, ...]

    def consumer_for(self, dim: int) -> NodeId | None:
        for d, consumer in zip(self.dims, self.consumers):
            if d == dim:
                return consumer
        return None


class Appbt(SharedMemoryApp):
    """Pipelined gaussian elimination over sub-cubes."""

    name = "appbt"
    paper_input = "12x12x12 cubes"
    paper_iterations = 40

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        face_blocks: int = 5,
        shared_face_blocks: int = 1,
        edge_blocks: int = 3,
        read_race_probability: float = 0.3,
        compute_cycles: int = 250,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if not 0.0 <= read_race_probability <= 1.0:
            raise ValueError("read_race_probability must be within [0, 1]")
        self.face_blocks = face_blocks
        self.shared_face_blocks = shared_face_blocks
        self.edge_blocks = edge_blocks
        self.read_race_probability = read_race_probability
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 15

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        self._shape = _cube_shape(self.num_procs)
        self._coords = {p: self._coord_of(p) for p in range(self.num_procs)}
        faces, edges = self._make_topology()
        jitter = self.rng("jitter")
        race_rng = self.rng("races")
        for _ in range(self.iterations):
            for dim in range(3):
                self._sweep(b, dim, faces, edges, jitter, race_rng)

    def _coord_of(self, p: NodeId) -> tuple[int, int, int]:
        sx, sy, _sz = self._shape
        return (p % sx, (p // sx) % sy, p // (sx * sy))

    def _neighbour(self, p: NodeId, dim: int) -> NodeId | None:
        coordinate = list(self._coords[p])
        coordinate[dim] += 1
        if coordinate[dim] >= self._shape[dim]:
            return None
        sx, sy, _sz = self._shape
        x, y, z = coordinate
        return x + y * sx + z * sx * sy

    def _make_topology(self) -> tuple[list[_Face], list[_Edge]]:
        space = AddressSpace(self.num_procs)
        second_rng = self.rng("second-reader")
        faces: list[_Face] = []
        edges: list[_Edge] = []
        for p in range(self.num_procs):
            open_dims = []
            for dim in range(3):
                succ = self._neighbour(p, dim)
                if succ is None:
                    continue
                open_dims.append((dim, succ))
                faces.append(
                    _Face(
                        owner=p,
                        dim=dim,
                        consumer=succ,
                        blocks=tuple(space.alloc(p, self.face_blocks)),
                    )
                )
                if self.shared_face_blocks:
                    candidates = [
                        q for q in range(self.num_procs) if q not in (p, succ)
                    ]
                    faces.append(
                        _Face(
                            owner=p,
                            dim=dim,
                            consumer=succ,
                            blocks=tuple(space.alloc(p, self.shared_face_blocks)),
                            second_reader=second_rng.choice(candidates),
                        )
                    )
            if len(open_dims) >= 2 and self.edge_blocks:
                (dim_a, cons_a), (dim_b, cons_b) = open_dims[0], open_dims[1]
                edges.append(
                    _Edge(
                        owner=p,
                        dims=(dim_a, dim_b),
                        consumers=(cons_a, cons_b),
                        blocks=tuple(space.alloc(p, self.edge_blocks)),
                    )
                )
        return faces, edges

    # ------------------------------------------------------------------
    def _sweep(self, b, dim: int, faces, edges, jitter, race_rng) -> None:
        """One pipelined sweep along ``dim``, stage by stage."""
        for stage in range(self._shape[dim]):
            at_stage = [
                p
                for p in range(self.num_procs)
                if self._coords[p][dim] == stage
            ]
            stage_faces = [
                f for f in faces if f.dim == dim and f.owner in at_stage
            ]
            stage_edges = [
                e
                for e in edges
                if e.owner in at_stage and e.consumer_for(dim) is not None
            ]
            with b.phase(f"sweep{dim}-stage{stage}"):
                for p in at_stage:
                    b.compute(p, self.compute_cycles + jitter.randint(0, 30))
                # The elimination re-reads the boundary it owns (its copy
                # was recalled by last sweep's consumer), then updates it
                # twice — the second update is silent under the base
                # protocol but makes SWI invalidations premature ("the
                # producer ... writes multiple times to the block",
                # Section 7.4).
                for f in stage_faces:
                    for block in f.blocks:
                        b.read(f.owner, block)
                        b.write(f.owner, block)
                for e in stage_edges:
                    for block in e.blocks:
                        b.read(e.owner, block)
                        b.write(e.owner, block)
                for f in stage_faces:
                    for block in f.blocks:
                        b.write(f.owner, block)
                for e in stage_edges:
                    for block in e.blocks:
                        b.write(e.owner, block)
            # The perpendicular reader races with the pipeline successor
            # only when their pencils coincide in time (about half the
            # sweeps); otherwise arrival order is stable.
            with b.phase(
                f"sweep{dim}-stage{stage}-x",
                racy_reads=race_rng.chance(self.read_race_probability),
            ):
                for f in stage_faces:
                    for block in f.blocks:
                        for reader in f.readers():
                            b.read(reader, block)
                for e in stage_edges:
                    consumer = e.consumer_for(dim)
                    for block in e.blocks:
                        b.read(consumer, block)
