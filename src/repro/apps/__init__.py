"""The paper's seven shared-memory applications (Table 2).

Each application is a *sharing-pattern kernel*: a faithful Python
re-implementation of the logical communication structure of the original
benchmark (who writes which blocks, who reads them, in which phase, with
what raciness), scaled so Python-speed simulation is practical.  Every
kernel produces a :class:`~repro.apps.base.Workload` with two coherent
views:

* per-block access scripts for the trace-driven protocol emulator
  (predictor experiments: Figures 7-8, Tables 3-4), and
* per-processor, phase-structured programs for the event-driven timing
  simulator (speculation experiments: Figure 9, Table 5).
"""

from repro.apps.appbt import Appbt
from repro.apps.barnes import Barnes
from repro.apps.base import (
    Compute,
    LockAcquire,
    LockRelease,
    MemRead,
    MemWrite,
    Phase,
    SharedMemoryApp,
    Workload,
    WorkloadBuilder,
)
from repro.apps.em3d import Em3d
from repro.apps.moldyn import Moldyn
from repro.apps.ocean import Ocean
from repro.apps.registry import APP_CLASSES, APP_NAMES, make_app
from repro.apps.tomcatv import Tomcatv
from repro.apps.unstructured import Unstructured

__all__ = [
    "APP_CLASSES",
    "APP_NAMES",
    "Appbt",
    "Barnes",
    "Compute",
    "Em3d",
    "LockAcquire",
    "LockRelease",
    "MemRead",
    "MemWrite",
    "Moldyn",
    "Ocean",
    "Phase",
    "SharedMemoryApp",
    "Tomcatv",
    "Unstructured",
    "Workload",
    "WorkloadBuilder",
    "make_app",
]
