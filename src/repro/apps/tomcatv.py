"""tomcatv — vectorized mesh-generation stencil (SPEC).

Processors own contiguous bands of matrix rows and share only the rows
at band boundaries.  Sharing structure (paper Section 7.1):

* pure near-neighbour stencil: each boundary row block is produced by
  its owner and consumed by exactly one neighbour, in a deterministic
  order every iteration — all three predictors reach 100% accuracy;
* the producer re-reads its own boundary block before rewriting it, so
  every block's read sequence holds two readers: the consumer and the
  producer (this is what lets First-Read trigger the producer's read
  from the consumer's request — Table 5);
* a *correction phase* rewrites half of the boundary blocks after the
  main write, which defeats Speculative Write-Invalidation on exactly
  those blocks ("SWI only succeeds in invalidating half of the
  writes" — Section 7.4).
"""

from __future__ import annotations

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


class Tomcatv(SharedMemoryApp):
    """Row-band stencil with a correction phase."""

    name = "tomcatv"
    paper_input = "128x128 array"
    paper_iterations = 50

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        blocks_per_row: int = 8,
        compute_cycles: int = 5000,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if blocks_per_row < 2:
            raise ValueError("blocks_per_row must be >= 2")
        self.blocks_per_row = blocks_per_row
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 20

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        space = AddressSpace(self.num_procs)
        jitter = self.rng("jitter")
        # Each internal band boundary has two shared rows: the lower
        # band's top row (owner p, consumer p-1 — unused here) and the
        # upper band's bottom row (owner p, consumer p+1).  We allocate
        # both directions so every processor is both producer and
        # consumer, as in the real stencil.
        boundary: list[tuple[NodeId, NodeId, list[BlockId]]] = []
        for p in range(self.num_procs - 1):
            boundary.append((p, p + 1, space.alloc(p, self.blocks_per_row)))
            boundary.append((p + 1, p, space.alloc(p + 1, self.blocks_per_row)))

        for _ in range(self.iterations):
            # Main phase: the producer re-reads its boundary row (its
            # copy was recalled by the consumer's read last iteration),
            # then writes the new values.
            with b.phase("main"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles + jitter.randint(0, 40))
                for owner, _consumer, blocks in boundary:
                    for block in blocks:
                        b.read(owner, block)
                        b.write(owner, block)
            # Correction phase: rewrite half of each boundary row.
            # Silent under the base protocol (the producer still holds
            # the block exclusively) but a premature-invalidation signal
            # for SWI.
            with b.phase("correction"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles // 4 + jitter.randint(0, 20))
                for owner, _consumer, blocks in boundary:
                    for block in blocks[: len(blocks) // 2]:
                        b.write(owner, block)
            # Consumer phase: the neighbour reads the boundary row.
            with b.phase("consume"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles // 2 + jitter.randint(0, 40))
                for _owner, consumer, blocks in boundary:
                    for block in blocks:
                        b.read(consumer, block)
