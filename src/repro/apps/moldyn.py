"""moldyn — CHARMM-like molecular dynamics (as in Mukherjee & Hill).

Two sharing patterns coexist (paper Section 7.1):

* **producer/consumer** on particle-position blocks: each owner
  rewrites its positions every iteration and a small static set of
  neighbours (from the interaction lists) reads them.  The producer
  *reads its positions back shortly after writing* — the detail that
  makes Speculative Write-Invalidation misspeculate and fall back to
  First-Read for this phase (Table 5);
* **static migratory** on force-accumulation blocks: a fixed sequence
  of processors makes read+write visits to each block every iteration.
  The visit sequences never change, so the pattern is highly
  predictable and SWI invalidates the migratory writes successfully
  (~68% of all writes — Table 5).

Invalidation acks race in the producer/consumer phase (readers cluster
behind the phase barrier), degrading Cosmos but not MSP/VMSP.
"""

from __future__ import annotations

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


class Moldyn(SharedMemoryApp):
    """Producer/consumer positions plus static migratory forces."""

    name = "moldyn"
    paper_input = "2048 particles"
    paper_iterations = 60

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        position_blocks_per_proc: int = 10,
        force_blocks_per_proc: int = 6,
        ack_race_probability: float = 0.5,
        compute_cycles: int = 12000,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if not 0.0 <= ack_race_probability <= 1.0:
            raise ValueError("ack_race_probability must be within [0, 1]")
        self.position_blocks_per_proc = position_blocks_per_proc
        self.force_blocks_per_proc = force_blocks_per_proc
        self.ack_race_probability = ack_race_probability
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 20

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        rng = self.rng("interactions")
        jitter = self.rng("jitter")
        space = AddressSpace(self.num_procs)

        # Interaction lists: per position block, 1-3 static consumers.
        positions: list[tuple[NodeId, BlockId, tuple[NodeId, ...]]] = []
        for p in range(self.num_procs):
            others = [q for q in range(self.num_procs) if q != p]
            for block in space.alloc(p, self.position_blocks_per_proc):
                degree = 2
                if rng.random() < 0.50:
                    degree += 1
                if rng.random() < 0.15:
                    degree += 1
                consumers = tuple(sorted(rng.sample(others, degree)))
                positions.append((p, block, consumers))

        # Force blocks: visited by a static ordered sequence of 2-3
        # processors (owner first).  Each visitor processes its home
        # group of force blocks consecutively, which is what lets SWI
        # chain the migratory writes.
        forces: list[tuple[BlockId, tuple[NodeId, ...], int]] = []
        for p in range(self.num_procs):
            others = [q for q in range(self.num_procs) if q != p]
            for index, block in enumerate(space.alloc(p, self.force_blocks_per_proc)):
                extra = rng.sample(others, 1 + (rng.random() < 0.5))
                forces.append((block, (p, *extra), index))

        race_rng = self.rng("races")
        # Static per-processor interaction-list traversal orders.
        traversal_rng = self.rng("traversal")
        position_blocks = [block for _owner, block, _consumers in positions]
        traversal: dict[NodeId, dict[BlockId, int]] = {}
        for p in range(self.num_procs):
            order = traversal_rng.shuffled(position_blocks)
            traversal[p] = {block: i for i, block in enumerate(order)}

        # One lock per force block; lock ids live in their own namespace,
        # so reusing the block id is unambiguous.
        for _ in range(self.iterations):
            # Update phase: rewrite positions, then read them back.
            with b.phase("update-positions"):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles + jitter.randint(0, 60))
                for owner, block, _consumers in positions:
                    b.write(owner, block)
                for owner, block, _consumers in positions:
                    b.read(owner, block)  # silent re-read; defeats SWI
            # Force phase: neighbours read remote positions (acks race
            # in about half the iterations); each walks its interaction
            # list in its own static order.
            with b.phase(
                "read-positions",
                racy_reads=False,
                racy_acks=race_rng.chance(self.ack_race_probability),
            ):
                for p in range(self.num_procs):
                    b.compute(p, self.compute_cycles // 2 + jitter.randint(0, 60))
                reads_by_consumer: dict[NodeId, list[BlockId]] = {}
                for _owner, block, consumers in positions:
                    for consumer in consumers:
                        reads_by_consumer.setdefault(consumer, []).append(block)
                for consumer in sorted(reads_by_consumer):
                    ranks = traversal[consumer]
                    for block in sorted(
                        reads_by_consumer[consumer], key=ranks.__getitem__
                    ):
                        b.read(consumer, block)
            # Accumulation: static migratory visits.  Each visitor sweeps
            # its share of the force array back-to-back (a tight loop in
            # the original code), and successive visitors are separated
            # by their own computation — modeled as positional
            # sub-phases.  The tight per-visitor sweep is what lets SWI
            # chain the migratory writes (Section 7.4).
            max_position = max(len(v) for _b, v, _i in forces)
            for position in range(max_position):
                with b.phase(f"accumulate-forces-{position}"):
                    for p in range(self.num_procs):
                        b.compute(
                            p, self.compute_cycles // 6 + jitter.randint(0, 60)
                        )
                    for block, visitors, _index in forces:
                        if position < len(visitors):
                            visitor = visitors[position]
                            b.read(visitor, block)
                            b.write(visitor, block)
