"""ocean — SPLASH-2 eddy-current simulation on a 2D grid.

Processors own square sub-grids and share boundary blocks with their
immediate neighbours (paper Section 7.1):

* **near-neighbour stencil** — edge blocks have a single stable
  consumer; corner-region blocks are read by two neighbours whose read
  requests race, which is what separates MSP (~92%) from VMSP (~96%)
  on this application;
* **multigrid levels** — coarser levels run only every 2nd/4th
  iteration, so their patterns recur rarely and depress prediction
  coverage (Table 3 shows ocean's coverage in the 80s);
* **lock-based reduction** — every iteration ends with a global sum
  protected by a lock, and the order in which processors enter the lock
  changes every iteration; the resulting migratory read/upgrade pairs
  are why no predictor reaches 100% on ocean;
* the producer smooths (writes) its boundary blocks twice per stencil
  step, which defeats Speculative Write-Invalidation ("the producer ...
  writes multiple times to the block" — Section 7.4).
"""

from __future__ import annotations

import math

from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.types import BlockId, NodeId
from repro.sim.address import AddressSpace


def _grid_shape(num_procs: int) -> tuple[int, int]:
    """Factor the processor count into the squarest grid."""
    best = (1, num_procs)
    for rows in range(1, int(math.isqrt(num_procs)) + 1):
        if num_procs % rows == 0:
            best = (rows, num_procs // rows)
    return best


class Ocean(SharedMemoryApp):
    """Near-neighbour stencil with multigrid levels and a reduction."""

    name = "ocean"
    paper_input = "130x130 array"
    paper_iterations = 12

    def __init__(
        self,
        num_procs: int = 16,
        iterations: int | None = None,
        seed: int | str = 1999,
        edge_blocks: int = 6,
        corner_blocks: int = 2,
        multigrid_levels: int = 3,
        compute_cycles: int = 450,
    ) -> None:
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        if multigrid_levels < 1:
            raise ValueError("need at least one multigrid level")
        self.edge_blocks = edge_blocks
        self.corner_blocks = corner_blocks
        self.multigrid_levels = multigrid_levels
        self.compute_cycles = compute_cycles

    @classmethod
    def default_iterations(cls) -> int:
        return 12

    # ------------------------------------------------------------------
    def _build(self, b: WorkloadBuilder) -> None:
        rows, cols = _grid_shape(self.num_procs)
        space = AddressSpace(self.num_procs)
        jitter = self.rng("jitter")
        lock_rng = self.rng("lock-order")

        # Shared blocks per multigrid level: (owner, consumers, blocks);
        # coarser levels have half the boundary blocks of the previous.
        levels = []
        for level in range(self.multigrid_levels):
            scale = max(1, self.edge_blocks >> level)
            corner_scale = max(1, self.corner_blocks >> level)
            levels.append(
                self._make_boundaries(space, rows, cols, scale, corner_scale)
            )

        # One global reduction cell (plus its lock).
        sum_block = space.alloc_one(0)

        for iteration in range(self.iterations):
            for level, boundaries in enumerate(levels):
                if iteration % (1 << level):
                    continue  # coarse levels run every 2^level iterations
                self._stencil_step(b, f"level{level}", boundaries, jitter)
            self._reduction(b, sum_block, lock_rng, jitter)

    def _make_boundaries(
        self,
        space: AddressSpace,
        rows: int,
        cols: int,
        edge_blocks: int,
        corner_blocks: int,
    ) -> list[tuple[NodeId, tuple[NodeId, ...], list[BlockId]]]:
        """Edge blocks (one consumer) plus corner blocks (two, racing)."""
        boundaries = []
        for p in range(self.num_procs):
            r, c = divmod(p, cols)
            right = p + 1 if c + 1 < cols else None
            down = p + cols if r + 1 < rows else None
            if right is not None:
                boundaries.append((p, (right,), space.alloc(p, edge_blocks)))
            if down is not None:
                boundaries.append((p, (down,), space.alloc(p, edge_blocks)))
            if right is not None and down is not None:
                # Corner region: both neighbours read these blocks.
                boundaries.append(
                    (p, (right, down), space.alloc(p, corner_blocks))
                )
        return boundaries

    def _stencil_step(self, b: WorkloadBuilder, name, boundaries, jitter) -> None:
        # The owner re-reads its boundary blocks (recalled by last
        # step's consumers) and smooths them in two full sweeps — the
        # second sweep's writes are silent under the base protocol but
        # arrive after SWI has recalled the copies, which is what defeats
        # SWI on ocean ("the producer ... writes multiple times to the
        # block", Section 7.4).
        with b.phase(f"{name}-smooth"):
            for p in range(self.num_procs):
                b.compute(p, self.compute_cycles + jitter.randint(0, 50))
            for owner, _consumers, blocks in boundaries:
                for block in blocks:
                    b.read(owner, block)
                    b.write(owner, block)
            for owner, _consumers, blocks in boundaries:
                for block in blocks:
                    b.write(owner, block)
        with b.phase(f"{name}-exchange", racy_reads=True, racy_acks=True):
            for p in range(self.num_procs):
                b.compute(p, self.compute_cycles // 2 + jitter.randint(0, 50))
            for _owner, consumers, blocks in boundaries:
                for block in blocks:
                    for consumer in consumers:
                        b.read(consumer, block)

    def _reduction(self, b: WorkloadBuilder, sum_block, lock_rng, jitter) -> None:
        """Global sum under a lock; entry order reshuffles every time."""
        order = lock_rng.shuffled(range(self.num_procs))
        with b.phase("reduction"):
            for p in range(self.num_procs):
                b.compute(p, jitter.randint(10, 80))
            for p in order:
                b.lock(p, 0)
                b.read(p, sum_block)
                b.write(p, sum_block)
                b.unlock(p, 0)
