"""Application registry: the paper's Table 2 line-up."""

from __future__ import annotations

from repro.apps.appbt import Appbt
from repro.apps.barnes import Barnes
from repro.apps.base import SharedMemoryApp
from repro.apps.em3d import Em3d
from repro.apps.moldyn import Moldyn
from repro.apps.ocean import Ocean
from repro.apps.tomcatv import Tomcatv
from repro.apps.unstructured import Unstructured

#: Paper order (Table 2, alphabetical).
APP_CLASSES: dict[str, type[SharedMemoryApp]] = {
    cls.name: cls
    for cls in (Appbt, Barnes, Em3d, Moldyn, Ocean, Tomcatv, Unstructured)
}

APP_NAMES: tuple[str, ...] = tuple(APP_CLASSES)


def make_app(
    name: str,
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    **kwargs,
) -> SharedMemoryApp:
    """Instantiate an application kernel by its paper name."""
    try:
        cls = APP_CLASSES[name]
    except KeyError:
        known = ", ".join(APP_NAMES)
        raise ValueError(f"unknown application {name!r} (known: {known})") from None
    return cls(num_procs=num_procs, iterations=iterations, seed=seed, **kwargs)


def table2_rows() -> list[tuple[str, str, int]]:
    """Rows of paper Table 2: (application, input data set, iterations)."""
    return [
        (cls.name, cls.paper_input, cls.paper_iterations)
        for cls in APP_CLASSES.values()
    ]
