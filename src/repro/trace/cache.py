"""Compiled-trace caching and the trace-pipeline entry point.

A compiled trace depends only on ``(app, num_procs, iterations, seed,
race_seed)`` — every accuracy sweep point that shares those parameters
shares the trace, whatever predictors or depths it evaluates.
:func:`compile_app_trace` is the single way the evaluation layer obtains
a trace: it consults the configured trace cache (a
:class:`~repro.harness.store.ResultStore` holding ``trace``-kind
entries, content-addressed exactly like sweep points), compiles on a
miss, and stores the columnar payload with its content hash in the
entry metadata (entry format v3).

The cache is configured process-wide — :func:`configure_trace_cache` is
called by the CLI and the HTTP service when they build a cached runner —
and is inherited by forked sweep workers; the ``REPRO_TRACE_CACHE``
environment variable seeds the configuration for spawned or external
processes.  Hit/miss counters are process-local and are harvested
around each sweep-point execution
(:func:`repro.harness.runners.execute_point_instrumented`), which is
how per-point trace-cache provenance reaches ``ResultStore`` entries,
sweep reports, and the service's ``/statz``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from repro.harness.spec import SweepPoint
from repro.harness.store import MISS, ResultStore
from repro.trace.compiled import CompiledTrace

#: The ResultStore kind under which compiled traces are filed.  It is a
#: storage kind only — there is deliberately no registered point runner
#: for it, so it can never be executed (or served) as a sweep point.
TRACE_KIND = "trace"

#: Environment fallback for the cache directory (workers spawned
#: without inheriting this process's configuration read it).
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Bumped when the trace payload layout changes; keys every trace entry
#: so old payloads simply miss instead of mis-decoding.
TRACE_SCHEMA = 1

#: The second trace family: compiled *timing* traces (macro-step
#: records of whole Machine runs, see ``repro.sim.timetrace``).  They
#: share the configured directory with accuracy traces but live under
#: their own kind and schema, so either family can change layout
#: without invalidating the other.  Like :data:`TRACE_KIND`, it is a
#: storage kind only — never a runnable sweep point.
TIMETRACE_KIND = "timetrace"

_UNSET = object()
_configured: Any = _UNSET
_lock = threading.Lock()
_hits = 0
_misses = 0


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def configure_trace_cache(directory: str | os.PathLike | None) -> None:
    """Set (or with ``None`` disable) the process-wide trace cache.

    The directory is also exported as :data:`TRACE_CACHE_ENV` so worker
    processes that do *not* inherit this module's state (spawn start
    method, external subprocesses) see the same configuration; forked
    workers inherit the module global directly.
    """
    global _configured
    _configured = None if directory is None else str(directory)
    if _configured is None:
        os.environ.pop(TRACE_CACHE_ENV, None)
    else:
        os.environ[TRACE_CACHE_ENV] = _configured


def configured_trace_dir() -> str | None:
    """The active trace-cache directory, or None when caching is off."""
    if _configured is not _UNSET:
        return _configured
    return os.environ.get(TRACE_CACHE_ENV) or None


def trace_store() -> ResultStore | None:
    """A store over the configured directory, or None when disabled."""
    directory = configured_trace_dir()
    if directory is None:
        return None
    return ResultStore(
        directory,
        fingerprint={"trace_schema": TRACE_SCHEMA},
        compact=True,  # columns are bulk int lists; indent would bloat
    )


def timetrace_store() -> ResultStore | None:
    """The timing-trace family's store, or None when caching is off.

    Same directory as :func:`trace_store`, separately fingerprinted:
    ``repro.sim.timetrace.trace.TIMETRACE_SCHEMA`` bumps invalidate
    timing traces without touching compiled accuracy traces.
    """
    directory = configured_trace_dir()
    if directory is None:
        return None
    from repro.sim.timetrace.trace import TIMETRACE_SCHEMA

    return ResultStore(
        directory,
        fingerprint={"timetrace_schema": TIMETRACE_SCHEMA},
        compact=True,
    )


# ----------------------------------------------------------------------
# hit/miss accounting
# ----------------------------------------------------------------------
def snapshot_counters() -> tuple[int, int]:
    """Process-local (hits, misses) since startup; callers diff."""
    with _lock:
        return _hits, _misses


def _note(hit: bool) -> None:
    global _hits, _misses
    with _lock:
        if hit:
            _hits += 1
        else:
            _misses += 1


def note_trace_event(hit: bool) -> None:
    """Record one trace-cache hit or miss (both trace families).

    The timing-trace pipeline reports through the same process-local
    counters as accuracy traces, so per-point provenance
    (:func:`repro.harness.runners.execute_point_instrumented`), sweep
    reports, and ``/statz`` cover both without new plumbing.
    """
    _note(hit)


# ----------------------------------------------------------------------
# the pipeline entry point
# ----------------------------------------------------------------------
def trace_point(
    app: str,
    num_procs: int,
    iterations: int,
    seed: int | str,
    race_seed: int | str,
) -> SweepPoint:
    """The cache address of one workload's compiled trace."""
    return SweepPoint.make(
        TRACE_KIND,
        {
            "app": app,
            "num_procs": num_procs,
            "iterations": iterations,
            "seed": seed,
            "race_seed": race_seed,
        },
    )


def compile_app_trace(
    app: str,
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    race_seed: int | str = 7,
) -> CompiledTrace:
    """The compiled message trace for one workload, cache-first.

    On a hit the workload is never built and the emulator never runs —
    the columnar payload decodes straight into arrays.  On a miss the
    trace is compiled and (when a cache is configured) stored with its
    content hash, so any process sharing the cache directory reuses it.
    """
    # Imported lazily: this module is reachable from the harness layer,
    # which must stay importable without dragging the app kernels in.
    from repro.apps.registry import make_app
    from repro.common.rng import DeterministicRng
    from repro.protocol.emulator import ProtocolEmulator

    instance = make_app(app, num_procs=num_procs, iterations=iterations, seed=seed)
    store = trace_store()
    point = trace_point(app, num_procs, instance.iterations, seed, race_seed)
    if store is not None:
        entry = store.load_entry(point)
        if entry is not MISS:
            try:
                trace = CompiledTrace.from_payload(entry.result)
            except (KeyError, TypeError, ValueError):
                trace = None  # unreadable payload degrades to a miss
            if trace is not None:
                _note(hit=True)
                return trace

    started = time.perf_counter()
    workload = instance.build()
    emulator = ProtocolEmulator(DeterministicRng(race_seed))
    trace = emulator.compile(workload.block_scripts(), num_nodes=num_procs)
    if store is not None:
        _note(hit=False)
        try:
            store.store(
                point,
                trace.as_payload(),
                elapsed_s=time.perf_counter() - started,
                meta={
                    "content_hash": trace.content_hash(),
                    "messages": len(trace),
                    "blocks": trace.block_count(),
                },
            )
        except OSError:
            pass  # a full/readonly cache degrades to recompiles
    return trace
