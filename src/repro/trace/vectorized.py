"""Vectorized predictor evaluation over a :class:`CompiledTrace`.

The per-message reference predictors (:mod:`repro.predictors`) walk the
trace one Python object at a time; this module computes the *identical*
accuracy counters with batched numpy passes.  The key observation is
that a two-level predictor's pattern table always holds "the token that
followed this history the last time it occurred", so scoring reduces to
a previous-occurrence join:

1. encode each message (or VMSP event) as a dense integer token,
2. form each position's history key — the ``depth`` preceding tokens of
   the same block — as a dense group id,
3. for every position, find the latest earlier position with the same
   group id (one stable argsort); the token observed *there* is exactly
   the pattern-table entry consulted *here*,
4. compare predicted vs observed tokens in bulk.

VMSP adds an event-compilation step (read runs fold into reader
bit-vectors, exactly as ``Vmsp._close_run`` does), after which the same
previous-occurrence join applies to the event stream, and individual
reads are scored against their run's predicted vector by bitmask tests.

The contract with the reference implementation is **bit-identical
accuracy counters** (observed / predicted / correct / ignored) and
pattern-table entry counts for every trace the protocol emulator can
produce; ``tests/trace/test_vectorized.py`` enforces it across all
seven applications.  :func:`evaluate_trace_reference` runs the actual
per-message predictors over the decoded trace and is both the fallback
for configurations the vectorized path does not cover (VMSP beyond 64
nodes) and the golden baseline in those tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors import PREDICTOR_CLASSES
from repro.predictors.base import PredictionStats
from repro.trace.compiled import KIND_TO_CODE, CompiledTrace
from repro.common.types import MessageKind

#: Column code of READ (the one request kind VMSP folds into vectors).
_READ_CODE = KIND_TO_CODE[MessageKind.READ]

#: Widest node id a uint64 reader bitmask can represent.
_MAX_VECTOR_NODE = 63


@dataclass(frozen=True, slots=True)
class TraceEvaluation:
    """Accuracy counters and table shape from one trace pass."""

    predictor: str
    depth: int
    stats: PredictionStats
    #: Total pattern-table entries across all blocks (after flush).
    pattern_entries: int
    #: Blocks that began training (appear in the history table).
    allocated_blocks: int

    @property
    def average_pte(self) -> float:
        """Mean pattern-table entries per allocated block (Table 4)."""
        if not self.allocated_blocks:
            return 0.0
        return self.pattern_entries / self.allocated_blocks


# ----------------------------------------------------------------------
# primitive passes
# ----------------------------------------------------------------------
def _dense_groups(first: np.ndarray, *rest: np.ndarray) -> np.ndarray:
    """Dense int64 ids for the row tuples formed by parallel columns."""
    _, group = np.unique(np.asarray(first), return_inverse=True)
    group = group.astype(np.int64, copy=False)
    for column in rest:
        _, inverse = np.unique(np.asarray(column), return_inverse=True)
        if inverse.size == 0:
            continue
        # Re-densify after each combine so the product never overflows.
        group = group * np.int64(inverse.max() + 1) + inverse.astype(np.int64)
        _, group = np.unique(group, return_inverse=True)
        group = group.astype(np.int64, copy=False)
    return group


def _previous_occurrence(groups: np.ndarray) -> np.ndarray:
    """For each position, the latest earlier position sharing its group.

    Returns -1 where no earlier occurrence exists.  One stable argsort:
    equal group ids end up adjacent in index order, so each element's
    predecessor in the sorted run is its previous occurrence.
    """
    n = groups.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    same = sorted_groups[1:] == sorted_groups[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _segment_positions(segment_ids: np.ndarray) -> np.ndarray:
    """0-based position of each element within its contiguous segment."""
    n = segment_ids.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate(
        ([0], np.flatnonzero(segment_ids[1:] != segment_ids[:-1]) + 1)
    )
    lengths = np.diff(np.concatenate((starts, [n])))
    return np.arange(n, dtype=np.int64) - np.repeat(starts, lengths)


def _segment_count(segment_ids: np.ndarray) -> int:
    n = segment_ids.shape[0]
    if n == 0:
        return 0
    return 1 + int((segment_ids[1:] != segment_ids[:-1]).sum())


def _table_join(
    blocks: np.ndarray, tokens: np.ndarray, depth: int
) -> tuple[np.ndarray, int, int]:
    """The previous-occurrence join behind two-level scoring.

    Returns ``(entry_source, pattern_entries, allocated_blocks)`` where
    ``entry_source[i]`` is the position whose token is the pattern-table
    entry consulted at position ``i`` (-1 when the history is still
    short or the table has no entry — both UNPREDICTED).  Positions with
    fewer than ``depth`` predecessors in their block neither consult nor
    populate the table, mirroring ``DirectoryPredictor._score/_learn``.
    """
    n = tokens.shape[0]
    entry_source = np.full(n, -1, dtype=np.int64)
    positions = _segment_positions(blocks)
    valid = np.flatnonzero(positions >= depth)
    pattern_entries = 0
    if valid.size:
        columns = [blocks[valid]]
        columns.extend(tokens[valid - k] for k in range(1, depth + 1))
        groups = _dense_groups(*columns)
        pattern_entries = int(groups.max()) + 1
        prev = _previous_occurrence(groups)
        found = prev >= 0
        entry_source[valid[found]] = valid[prev[found]]
    return entry_source, pattern_entries, _segment_count(blocks)


# ----------------------------------------------------------------------
# flat evaluators (Cosmos, MSP)
# ----------------------------------------------------------------------
def _evaluate_flat(
    name: str,
    depth: int,
    blocks: np.ndarray,
    kinds: np.ndarray,
    nodes: np.ndarray,
    ignored: int,
) -> TraceEvaluation:
    tokens = _dense_groups(kinds, nodes)
    entry_source, pattern_entries, allocated = _table_join(blocks, tokens, depth)
    scored = np.flatnonzero(entry_source >= 0)
    correct = int((tokens[entry_source[scored]] == tokens[scored]).sum())
    stats = PredictionStats(
        observed=int(tokens.shape[0]),
        predicted=int(scored.shape[0]),
        correct=correct,
        ignored=ignored,
    )
    return TraceEvaluation(
        predictor=name,
        depth=depth,
        stats=stats,
        pattern_entries=pattern_entries,
        allocated_blocks=allocated,
    )


def _evaluate_cosmos(trace: CompiledTrace, depth: int) -> TraceEvaluation:
    return _evaluate_flat(
        "Cosmos", depth, trace.blocks, trace.kinds, trace.nodes, ignored=0
    )


def _evaluate_msp(trace: CompiledTrace, depth: int) -> TraceEvaluation:
    requests = trace.request_mask()
    ignored = int(len(trace) - requests.sum())
    return _evaluate_flat(
        "MSP",
        depth,
        trace.blocks[requests],
        trace.kinds[requests],
        trace.nodes[requests],
        ignored=ignored,
    )


# ----------------------------------------------------------------------
# VMSP: event compilation + vector-aware read scoring
# ----------------------------------------------------------------------
def _evaluate_vmsp(trace: CompiledTrace, depth: int) -> TraceEvaluation:
    requests = trace.request_mask()
    ignored = int(len(trace) - requests.sum())
    blocks = trace.blocks[requests]
    kinds = trace.kinds[requests]
    nodes = trace.nodes[requests]
    observed = int(blocks.shape[0])
    if observed == 0:
        return TraceEvaluation(
            predictor="VMSP",
            depth=depth,
            stats=PredictionStats(ignored=ignored),
            pattern_entries=0,
            allocated_blocks=0,
        )
    if int(nodes.max()) > _MAX_VECTOR_NODE:
        # Reader bitmasks are uint64; wider systems take the reference
        # path (correct, just not vectorized).
        return evaluate_trace_reference(trace, "VMSP", depth)

    is_write = kinds != _READ_CODE
    # Per-block write ordinal: for writes, how many writes precede them
    # in their block (their ordinal); for reads, their run id.
    cumulative = np.cumsum(is_write.astype(np.int64))
    positions = _segment_positions(blocks)
    segment_start = np.arange(blocks.shape[0], dtype=np.int64) - positions
    base = cumulative[segment_start] - is_write[segment_start]
    in_block = cumulative - base

    # --- write events: one per write/upgrade message -------------------
    write_index = np.flatnonzero(is_write)
    write_blocks = blocks[write_index]
    write_ordinal = in_block[write_index] - 1
    write_values = (
        kinds[write_index].astype(np.uint64) * np.uint64(_MAX_VECTOR_NODE + 1)
        + nodes[write_index].astype(np.uint64)
    )

    # --- vector events: one per read run ------------------------------
    read_index = np.flatnonzero(~is_write)
    read_blocks = blocks[read_index]
    read_runs = in_block[read_index]
    read_nodes = nodes[read_index]
    n_reads = int(read_index.shape[0])
    if n_reads:
        boundary = np.flatnonzero(
            (read_blocks[1:] != read_blocks[:-1])
            | (read_runs[1:] != read_runs[:-1])
        )
        run_starts = np.concatenate(([0], boundary + 1))
        run_lengths = np.diff(np.concatenate((run_starts, [n_reads])))
        masks = np.uint64(1) << read_nodes.astype(np.uint64)
        run_vectors = np.bitwise_or.reduceat(masks, run_starts)
        run_blocks = read_blocks[run_starts]
        run_ordinal = read_runs[run_starts]
        run_of_read = np.repeat(
            np.arange(run_starts.shape[0], dtype=np.int64), run_lengths
        )
    else:
        run_starts = np.empty(0, dtype=np.int64)
        run_vectors = np.empty(0, dtype=np.uint64)
        run_blocks = np.empty(0, dtype=np.int64)
        run_ordinal = np.empty(0, dtype=np.int64)
        run_of_read = np.empty(0, dtype=np.int64)
    n_runs = int(run_starts.shape[0])
    n_writes = int(write_index.shape[0])

    # --- the event stream ---------------------------------------------
    # Per block, the reference predictor's history evolves as:
    #   [V_r] W_r  [V_r+1] W_r+1 ... [V_trailing(flush)]
    # i.e. run r's vector commits immediately before write #r (or at
    # flush for a trailing run).  Sort key (block, ordinal, vector<write)
    # reproduces exactly that order.
    event_blocks = np.concatenate((write_blocks, run_blocks))
    event_ordinal = np.concatenate((write_ordinal, run_ordinal))
    event_tie = np.concatenate(
        (np.ones(n_writes, dtype=np.int8), np.zeros(n_runs, dtype=np.int8))
    )
    event_tag = np.concatenate(
        (np.zeros(n_writes, dtype=np.int8), np.ones(n_runs, dtype=np.int8))
    )
    event_value = np.concatenate((write_values, run_vectors))
    order = np.lexsort((event_tie, event_ordinal, event_blocks))
    event_blocks = event_blocks[order]
    event_tag = event_tag[order]
    event_value = event_value[order]
    position_of = np.empty(order.shape[0], dtype=np.int64)
    position_of[order] = np.arange(order.shape[0], dtype=np.int64)

    event_tokens = _dense_groups(event_tag, event_value)
    entry_source, pattern_entries, allocated = _table_join(
        event_blocks, event_tokens, depth
    )

    # --- score writes: ordinary two-level token comparison ------------
    write_events = position_of[:n_writes]
    write_entry = entry_source[write_events]
    write_scored = write_entry >= 0
    predicted_w = int(write_scored.sum())
    correct_w = int(
        (
            event_tokens[write_entry[write_scored]]
            == event_tokens[write_events[write_scored]]
        ).sum()
    )

    # --- score reads against their run's predicted vector -------------
    # Every read in run r is scored against the table entry its block's
    # history selected at run start — which is the entry the run's own
    # vector event sees, since nothing learns mid-run.
    run_events = position_of[n_writes:]
    run_entry = entry_source[run_events]
    read_entry = run_entry[run_of_read]
    read_predicted = read_entry >= 0
    predicted_r = int(read_predicted.sum())
    entry_is_vector = np.zeros(read_entry.shape[0], dtype=bool)
    in_vector = np.zeros(read_entry.shape[0], dtype=bool)
    scored = np.flatnonzero(read_predicted)
    if scored.size:
        sources = read_entry[scored]
        entry_is_vector[scored] = event_tag[sources] == 1
        vector_bits = (
            event_value[sources] >> read_nodes[scored].astype(np.uint64)
        ) & np.uint64(1)
        in_vector[scored] = vector_bits.astype(bool)
    # "node not in run": only a node's first read of its run can be
    # correct (the reference tracks the open run as a set).  Emulator
    # traces never repeat a reader within a run, but the check is part
    # of the scoring contract, so keep it exact.
    first_in_run = np.ones(n_reads, dtype=bool)
    if n_reads > 1:
        dup_order = np.lexsort((np.arange(n_reads), read_nodes, run_of_read))
        ordered_runs = run_of_read[dup_order]
        ordered_nodes = read_nodes[dup_order]
        duplicate = (ordered_runs[1:] == ordered_runs[:-1]) & (
            ordered_nodes[1:] == ordered_nodes[:-1]
        )
        first_in_run[dup_order[1:][duplicate]] = False
    correct_r = int((entry_is_vector & in_vector & first_in_run).sum())

    stats = PredictionStats(
        observed=observed,
        predicted=predicted_w + predicted_r,
        correct=correct_w + correct_r,
        ignored=ignored,
    )
    return TraceEvaluation(
        predictor="VMSP",
        depth=depth,
        stats=stats,
        pattern_entries=pattern_entries,
        allocated_blocks=allocated,
    )


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
_EVALUATORS = {
    "Cosmos": _evaluate_cosmos,
    "MSP": _evaluate_msp,
    "VMSP": _evaluate_vmsp,
}


def evaluate_trace(
    trace: CompiledTrace, predictor: str, depth: int = 1
) -> TraceEvaluation:
    """Evaluate one predictor over a compiled trace, vectorized.

    Produces counters bit-identical to feeding the decoded message
    stream through the per-message reference predictor.
    """
    if depth < 1:
        raise ValueError("history depth must be >= 1")
    try:
        evaluator = _EVALUATORS[predictor]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS))
        raise ValueError(
            f"unknown predictor {predictor!r} (known: {known})"
        ) from None
    return evaluator(trace, depth)


def evaluate_trace_reference(
    trace: CompiledTrace, predictor: str, depth: int = 1
) -> TraceEvaluation:
    """The same evaluation through the per-message reference objects.

    This is the golden baseline the equivalence tests compare
    :func:`evaluate_trace` against, and the fallback for configurations
    the vectorized path does not cover.
    """
    instance = PREDICTOR_CLASSES[predictor](depth=depth)
    for message in trace.to_messages():
        instance.observe(message)
    flush = getattr(instance, "flush", None)
    if flush is not None:
        flush()
    allocated = instance.allocated_blocks()
    pattern_entries = sum(
        instance.pattern_entry_count(block) for block in allocated
    )
    return TraceEvaluation(
        predictor=predictor,
        depth=depth,
        stats=instance.stats,
        pattern_entries=pattern_entries,
        allocated_blocks=len(allocated),
    )
