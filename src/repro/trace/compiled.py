"""Columnar message traces: the home-directory stream as parallel arrays.

A :class:`CompiledTrace` holds the *entire* message stream a workload
presents to its home directories — every block's sequence, concatenated
block-major — as four parallel numpy columns:

* ``kinds``  — message-kind codes (:data:`KIND_CODES` order),
* ``nodes``  — sending processor ids,
* ``blocks`` — block ids (each block's messages are contiguous),
* ``epochs`` — the ordinal of the originating epoch within its block
  script (diagnostics and future timing work; the predictors ignore it).

Compiling the trace once decouples trace *generation* (the Python-loop
protocol emulation) from trace *consumption*: the vectorized predictor
evaluators (:mod:`repro.trace.vectorized`) do batched numpy passes over
the columns, and :meth:`CompiledTrace.to_messages` decodes the identical
per-message stream for the reference predictors — the two views are the
same trace by construction, which is what the equivalence golden tests
lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.common.canonical import canonical_hash
from repro.common.types import Message, MessageKind

#: Fixed kind encoding: ``kinds`` column value = index into this tuple.
#: Codes 0..2 are the request kinds (READ/WRITE/UPGRADE), matching
#: :data:`repro.common.types.REQUEST_KINDS`; 3..4 are acknowledgements.
KIND_CODES: tuple[MessageKind, ...] = (
    MessageKind.READ,
    MessageKind.WRITE,
    MessageKind.UPGRADE,
    MessageKind.ACK,
    MessageKind.WRITEBACK,
)

#: kind -> column code.
KIND_TO_CODE: dict[MessageKind, int] = {k: i for i, k in enumerate(KIND_CODES)}

#: Codes <= this value are request messages.
MAX_REQUEST_CODE = KIND_TO_CODE[MessageKind.UPGRADE]


@dataclass(frozen=True, slots=True, eq=False)
class CompiledTrace:
    """The full home-directory message stream, encoded as columns."""

    kinds: np.ndarray  # uint8 codes into KIND_CODES
    nodes: np.ndarray  # int32 sender ids
    blocks: np.ndarray  # int64 block ids, block-major
    epochs: np.ndarray  # int32 epoch ordinal within the block script
    num_nodes: int
    #: Cached segment boundaries; computed lazily by ``block_starts``.
    _starts: list = field(default_factory=list, repr=False)

    def __len__(self) -> int:
        return int(self.kinds.shape[0])

    @classmethod
    def from_columns(
        cls,
        kinds: Any,
        nodes: Any,
        blocks: Any,
        epochs: Any,
        num_nodes: int,
    ) -> "CompiledTrace":
        return cls(
            kinds=np.asarray(kinds, dtype=np.uint8),
            nodes=np.asarray(nodes, dtype=np.int32),
            blocks=np.asarray(blocks, dtype=np.int64),
            epochs=np.asarray(epochs, dtype=np.int32),
            num_nodes=int(num_nodes),
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def block_starts(self) -> np.ndarray:
        """Index of each block segment's first message (ascending)."""
        if not self._starts:
            if len(self) == 0:
                starts = np.empty(0, dtype=np.int64)
            else:
                change = np.flatnonzero(self.blocks[1:] != self.blocks[:-1]) + 1
                starts = np.concatenate(([0], change))
            self._starts.append(starts)
        return self._starts[0]

    def block_count(self) -> int:
        return int(self.block_starts.shape[0])

    def request_mask(self) -> np.ndarray:
        """Boolean mask selecting the three request kinds."""
        return self.kinds <= MAX_REQUEST_CODE

    # ------------------------------------------------------------------
    # the reference view
    # ------------------------------------------------------------------
    def to_messages(self) -> Iterator[Message]:
        """Decode the identical per-message stream (reference path)."""
        kinds, nodes, blocks = self.kinds, self.nodes, self.blocks
        for i in range(len(self)):
            yield Message(
                kind=KIND_CODES[kinds[i]],
                node=int(nodes[i]),
                block=int(blocks[i]),
            )

    # ------------------------------------------------------------------
    # serialization (the trace-cache payload)
    # ------------------------------------------------------------------
    def as_payload(self) -> dict[str, Any]:
        """A JSON-representable form, loadable by :meth:`from_payload`."""
        return {
            "num_nodes": self.num_nodes,
            "kinds": self.kinds.tolist(),
            "nodes": self.nodes.tolist(),
            "blocks": self.blocks.tolist(),
            "epochs": self.epochs.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "CompiledTrace":
        return cls.from_columns(
            kinds=payload["kinds"],
            nodes=payload["nodes"],
            blocks=payload["blocks"],
            epochs=payload["epochs"],
            num_nodes=payload["num_nodes"],
        )

    def content_hash(self) -> str:
        """SHA-256 over the canonical JSON form of the columns."""
        return canonical_hash(self.as_payload())
