"""The columnar message-trace pipeline.

Trace *generation* (Python-loop protocol emulation) is decoupled from
trace *consumption*: :meth:`~repro.protocol.emulator.ProtocolEmulator.compile`
produces a :class:`CompiledTrace` — the full home-directory message
stream as parallel numpy columns — once per workload, and the
vectorized evaluators score MSP, VMSP, and Cosmos over it with batched
array passes that are bit-identical to the per-message reference
predictors.  See ``docs/performance.md``.
"""

from repro.trace.cache import (
    TRACE_KIND,
    compile_app_trace,
    configure_trace_cache,
    configured_trace_dir,
    snapshot_counters,
    trace_point,
    trace_store,
)
from repro.trace.compiled import KIND_CODES, KIND_TO_CODE, CompiledTrace
from repro.trace.vectorized import (
    TraceEvaluation,
    evaluate_trace,
    evaluate_trace_reference,
)

__all__ = [
    "CompiledTrace",
    "KIND_CODES",
    "KIND_TO_CODE",
    "TRACE_KIND",
    "TraceEvaluation",
    "compile_app_trace",
    "configure_trace_cache",
    "configured_trace_dir",
    "evaluate_trace",
    "evaluate_trace_reference",
    "snapshot_counters",
    "trace_point",
    "trace_store",
]
