"""repro — Memory Sharing Predictors and a speculative coherent DSM.

A full reproduction of Lai & Falsafi, *Memory Sharing Predictor: The
Key to a Speculative Coherent DSM* (ISCA 1999): the Cosmos / MSP / VMSP
pattern-based coherence predictors, a trace-driven full-map
write-invalidate protocol emulator, an event-driven CC-NUMA timing
simulator with First-Read and Speculative Write-Invalidation
speculation, the paper's seven shared-memory application kernels, its
analytic performance model, and drivers that regenerate every table and
figure of the evaluation.

Quick start::

    from repro import MachineMode, run_predictors, run_speculation

    runs = run_predictors("em3d")          # Cosmos vs MSP vs VMSP
    print(runs["VMSP"].accuracy)

    spec = run_speculation("em3d")         # Base vs FR vs SWI DSM
    print(spec.normalized_time(MachineMode.SWI))
"""

from repro.analytic import SpeculationModel, communication_speedup, speedup
from repro.apps import APP_NAMES, SharedMemoryApp, Workload, make_app
from repro.common import SystemConfig
from repro.eval import run_experiment, run_predictors, run_speculation
from repro.harness import ParallelRunner, ResultStore, SweepSpec
from repro.predictors import Cosmos, Msp, Vmsp, make_predictor
from repro.protocol import BlockScript, ProtocolEmulator, ReadEpoch, WriteEpoch
from repro.sim import Machine, MachineMode

__version__ = "1.0.0"

__all__ = [
    "APP_NAMES",
    "BlockScript",
    "Cosmos",
    "Machine",
    "MachineMode",
    "Msp",
    "ParallelRunner",
    "ProtocolEmulator",
    "ReadEpoch",
    "ResultStore",
    "SharedMemoryApp",
    "SpeculationModel",
    "SweepSpec",
    "SystemConfig",
    "Vmsp",
    "Workload",
    "WriteEpoch",
    "communication_speedup",
    "make_app",
    "make_predictor",
    "run_experiment",
    "run_predictors",
    "run_speculation",
    "speedup",
]
