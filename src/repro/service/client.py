"""Session client: replay a recorded app trace against a live server.

The library half of ``repro-paper session``.  It speaks the streaming
session protocol (docs/service.md "Streaming sessions") over stdlib
``http.client`` — open a session, POST NDJSON event batches, read the
chunked NDJSON prediction lines back, close for the final summary —
and can *record* an application's home-directory message trace with
the same emulator the batch evaluation uses, so a replayed session is
bit-comparable to a batch ``accuracy`` sweep point over the same
workload.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlsplit


class SessionClientError(Exception):
    """A non-2xx server answer; carries the status and decoded body."""

    def __init__(self, status: int, body: Any) -> None:
        message = body.get("error") if isinstance(body, dict) else str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body


def record_app_trace(
    app: str,
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    race_seed: int | str = 7,
) -> list[dict[str, Any]]:
    """The app's home-directory message stream as NDJSON-ready events.

    Exactly the stream the reference evaluation trains on
    (:func:`repro.eval.accuracy.run_predictors`): the workload's block
    scripts replayed through the protocol emulator with the same
    deterministic race RNG, block-major.  Streaming these events
    through a session therefore reproduces the batch numbers
    bit-for-bit.
    """
    from repro.apps.registry import make_app
    from repro.common.rng import DeterministicRng
    from repro.protocol.emulator import ProtocolEmulator
    from repro.service.sessions import encode_message

    workload = make_app(
        app, num_procs=num_procs, iterations=iterations, seed=seed
    ).build()
    emulator = ProtocolEmulator(DeterministicRng(race_seed))
    return [
        encode_message(message)
        for _block, messages in emulator.run(workload.block_scripts())
        for message in messages
    ]


def load_trace(path: str) -> list[dict[str, Any]]:
    """Read a recorded NDJSON trace file (one event object per line)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from None
    return events


def save_trace(path: str, events: list[dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


class SessionClient:
    """One keep-alive connection speaking the session protocol."""

    def __init__(self, url: str, timeout_s: float = 60.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self._conn = HTTPConnection(
            split.hostname or "127.0.0.1", split.port or 80, timeout=timeout_s
        )

    def close_connection(self) -> None:
        self._conn.close()

    # ------------------------------------------------------------------
    def _request_json(self, method: str, target: str, body: bytes | None = None) -> Any:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        self._conn.request(method, target, body=body, headers=headers)
        response = self._conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        if response.status >= 400:
            raise SessionClientError(response.status, payload)
        return payload

    def open(
        self, predictor: str = "MSP", depth: int = 1, num_procs: int = 16
    ) -> dict[str, Any]:
        body = json.dumps(
            {"predictor": predictor, "depth": depth, "num_procs": num_procs}
        ).encode("utf-8")
        return self._request_json("POST", "/v1/sessions", body)

    def send_events(
        self,
        session_id: str,
        events: list[dict[str, Any]],
        on_line: Callable[[dict[str, Any]], None] | None = None,
    ) -> int:
        """POST one NDJSON batch; stream the prediction lines back.

        ``on_line`` sees each decoded prediction object as it arrives
        off the chunked response.  Returns the number of lines read.
        """
        body = b"".join(
            json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
            for event in events
        )
        self._conn.request(
            "POST",
            f"/v1/sessions/{session_id}/events",
            body=body,
            headers={"Content-Type": "application/x-ndjson"},
        )
        response = self._conn.getresponse()
        if response.status >= 400:
            raise SessionClientError(
                response.status, json.loads(response.read().decode("utf-8"))
            )
        count = 0
        # http.client de-chunks transparently; readline() hands back
        # NDJSON lines as their chunks land.
        for raw in iter(response.readline, b""):
            line = raw.strip()
            if not line:
                continue
            count += 1
            if on_line is not None:
                on_line(json.loads(line))
        return count

    def status(self, session_id: str) -> dict[str, Any]:
        return self._request_json("GET", f"/v1/sessions/{session_id}")

    def close(self, session_id: str) -> dict[str, Any]:
        """DELETE the session; the batch-identical final summary."""
        return self._request_json("DELETE", f"/v1/sessions/{session_id}")


def batched(events: list[dict[str, Any]], size: int) -> Iterator[list[dict[str, Any]]]:
    if size < 1:
        raise ValueError("batch size must be >= 1")
    for start in range(0, len(events), size):
        yield events[start : start + size]


def replay_session(
    url: str,
    events: list[dict[str, Any]],
    predictor: str = "MSP",
    depth: int = 1,
    num_procs: int = 16,
    batch_size: int = 256,
    on_line: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Open → stream every batch → close; the final summary.

    The summary's ``run`` object carries the same accuracy / coverage /
    correct_fraction / average_pte / overhead_bytes a batch run over
    the identical event sequence produces.
    """
    client = SessionClient(url)
    try:
        opened = client.open(predictor=predictor, depth=depth, num_procs=num_procs)
        session_id = opened["session"]
        streamed = 0
        for batch in batched(events, batch_size):
            streamed += client.send_events(session_id, batch, on_line=on_line)
        if streamed != len(events):
            raise SessionClientError(
                500,
                {
                    "error": (
                        f"streamed {len(events)} events but received "
                        f"{streamed} prediction lines"
                    )
                },
            )
        return client.close(session_id)
    finally:
        client.close_connection()
