"""Minimal HTTP/1.1 framing over asyncio streams.

Hand-rolled on purpose: the service needs exactly one verb pair
(GET/POST), JSON bodies, keep-alive, and strict input bounds — a few
hundred lines of explicit parsing we fully control, instead of dragging
in a framework the offline environment doesn't have.  Everything here
is transport only; routing and semantics live in
:mod:`repro.service.app`.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections.abc import AsyncIterator
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard bounds on what a client may send; exceeding them is a wire error.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8192
MAX_BODY_BYTES = 1 << 20

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class WireError(Exception):
    """A malformed or over-limit request; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(slots=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: False when the client asked for (or implied) connection close.
    keep_alive: bool = True

    def json(self) -> Any:
        """The body decoded as JSON, or :class:`WireError` 400."""
        if not self.body:
            raise WireError(400, "expected a JSON request body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(400, f"invalid JSON body: {exc}") from None


@dataclass(slots=True)
class Response:
    """One response to be written back.

    Three framings share this type:

    * ``payload`` (the default) — a JSON body written with an explicit
      ``Content-Length``;
    * ``body`` — pre-encoded raw bytes written as-is (set a
      ``Content-Type`` header; ``/metrics`` uses this for the
      Prometheus text exposition format);
    * ``stream`` — an async iterator of byte chunks written with
      ``Transfer-Encoding: chunked``, one HTTP chunk per yielded value,
      drained as they are produced.  Streaming responses default to
      NDJSON content (one JSON object per line) unless ``headers``
      overrides ``Content-Type``.
    """

    status: int = 200
    payload: Any = None
    headers: dict[str, str] = field(default_factory=dict)
    stream: AsyncIterator[bytes] | None = None
    body: bytes | None = None

    def encode_body(self) -> bytes:
        if self.body is not None:
            return self.body
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode("utf-8")


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF(-ish) terminated line, bounded; '' only at clean EOF."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise WireError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise WireError(431, "header line too long") from None
    if len(line) > limit:
        raise WireError(431, "header line too long")
    return line.rstrip(b"\r\n")


async def read_start_line(reader: asyncio.StreamReader) -> bytes:
    """The raw request line, or b'' at clean end-of-stream.

    Split out of :func:`read_request` so a server can put an *idle*
    timeout on waiting for the next request and a separate, more
    generous timeout on receiving the rest of it (slow uploads are not
    idle connections).
    """
    return await _read_line(reader, MAX_REQUEST_LINE)


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
    start_line: bytes | None = None,
) -> Request | None:
    """Parse one request off the stream; None at clean end-of-stream."""
    raw_line = (
        start_line if start_line is not None else await read_start_line(reader)
    )
    if not raw_line:
        return None
    try:
        line = raw_line.decode("ascii")
    except UnicodeDecodeError:
        raise WireError(400, "request line is not ASCII") from None
    parts = line.split()
    if len(parts) != 3:
        raise WireError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise WireError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    header_lines = 0
    while True:
        header_line = await _read_line(reader, MAX_HEADER_LINE)
        if not header_line:
            break
        # Count received lines, not dict entries: repeated names collapse
        # in the dict and would make this loop unbounded otherwise.
        header_lines += 1
        if header_lines > MAX_HEADER_COUNT:
            raise WireError(431, "too many request headers")
        name, sep, value = header_line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise WireError(400, f"malformed header line: {header_line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise WireError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is None and method in ("POST", "PUT", "PATCH"):
        raise WireError(411, "POST requires a Content-Length header")
    if length_text is not None:
        # Consume a declared body on ANY method (a GET may legally carry
        # one); leaving it unread would desynchronize keep-alive framing.
        try:
            length = int(length_text)
        except ValueError:
            raise WireError(400, f"bad Content-Length: {length_text!r}") from None
        if length < 0:
            raise WireError(400, f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise WireError(413, f"request body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise WireError(400, "connection closed mid-body") from None

    split = urlsplit(target)
    query = {
        name: value for name, value in parse_qsl(split.query, keep_blank_values=True)
    }
    connection = headers.get("connection", "").lower()
    keep_alive = connection != "close" and (
        version == "HTTP/1.1" or connection == "keep-alive"
    )
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


async def write_response(
    writer: asyncio.StreamWriter, response: Response, keep_alive: bool
) -> None:
    """Serialize one response and drain.

    Payload responses are JSON with an explicit ``Content-Length``;
    stream responses are written chunk-by-chunk with
    ``Transfer-Encoding: chunked`` (each yielded chunk is flushed
    before the next is pulled, so a slow consumer sees results as they
    are produced, and the terminating zero-chunk keeps keep-alive
    framing intact).
    """
    reason = REASONS.get(response.status, "Unknown")
    if response.stream is not None:
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            "Content-Type: application/x-ndjson; charset=utf-8",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(
            f"{name}: {value}" for name, value in response.headers.items()
        )
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii"))
        await writer.drain()
        async for chunk in response.stream:
            if not chunk:
                continue  # a zero-length chunk would terminate the body
            writer.write(f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return
    body = response.encode_body()
    content_type = "application/json; charset=utf-8"
    extra = []
    for name, value in response.headers.items():
        # A handler-supplied Content-Type (e.g. /metrics' text format)
        # replaces the JSON default instead of duplicating the header.
        if name.lower() == "content-type":
            content_type = value
        else:
            extra.append(f"{name}: {value}")
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(extra)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
    await writer.drain()


def error_response(status: int, message: str, **extra: Any) -> Response:
    """A JSON error body, plus the standard headers clients rely on.

    A ``retry_after_s`` hint is mirrored into a real ``Retry-After``
    header (rounded up to whole seconds, the delta-seconds form of RFC
    9110 §10.2.3) — standard HTTP clients, proxies, and load balancers
    only honor the header, never a JSON field.
    """
    payload = {"error": message}
    payload.update(extra)
    response = Response(status=status, payload=payload)
    retry_after = extra.get("retry_after_s")
    if retry_after is not None:
        response.headers["Retry-After"] = str(max(1, math.ceil(retry_after)))
    return response
