"""Prediction-accuracy-as-a-service: an HTTP front-end over the harness.

The reproduction's quantitative claims are all sweep points —
deterministic, content-addressed, cacheable — so serving them is a
cache problem, not a compute problem.  This package exposes the
experiment harness over HTTP/1.1 (stdlib ``asyncio`` only, no new
dependencies):

* ``GET /v1/point``    — one sweep point; instant on cache hit, computed
  in a :class:`~repro.harness.ParallelRunner`-backed pool on miss, with
  request coalescing, bounded-queue backpressure (429), and timeouts.
* ``POST /v1/sweep``   — submit a whole grid as a background job.
* ``GET /v1/jobs/...`` — poll job progress and fetch results.
* ``GET /v1/experiments`` — the named paper figures/tables and kinds.
* ``POST /v1/sessions`` + ``POST /v1/sessions/<id>/events`` — open a
  live predictor session and stream NDJSON coherence events through it;
  predictions stream back chunked, and closing the session reports the
  same numbers a batch run over the concatenated events produces.
* ``GET /healthz``, ``GET /statz`` — liveness and serving statistics.

Start it with ``repro-paper serve`` or programmatically::

    from repro.service import ReproService, ServiceConfig

    service = ReproService(ServiceConfig(port=0))   # ephemeral port
    await service.start()
    print(service.url)

See ``docs/service.md``.
"""

from repro.service.app import ServiceApp
from repro.service.jobs import (
    ComputePool,
    JobTable,
    PointTimeout,
    PoolSaturated,
    ServiceStats,
    SweepJob,
)
from repro.service.client import SessionClient, SessionClientError, replay_session
from repro.service.server import ReproService, ServiceConfig
from repro.service.sessions import (
    PredictorSession,
    SessionBoundExceeded,
    SessionError,
    SessionTable,
    SessionTableFull,
    UnknownSession,
)
from repro.service.wire import Request, Response, WireError

__all__ = [
    "ComputePool",
    "JobTable",
    "PointTimeout",
    "PoolSaturated",
    "PredictorSession",
    "ReproService",
    "Request",
    "Response",
    "ServiceApp",
    "ServiceConfig",
    "ServiceStats",
    "SessionBoundExceeded",
    "SessionClient",
    "SessionClientError",
    "SessionError",
    "SessionTable",
    "SessionTableFull",
    "SweepJob",
    "UnknownSession",
    "WireError",
    "replay_session",
]
