"""The serving core: a coalescing compute pool and background sweep jobs.

``ComputePool`` is the single shared path every request takes to a
sweep-point value:

1. **Coalesce** — if the same canonical point is already in flight, the
   request awaits the existing computation; N concurrent requests for
   one point trigger exactly one execution.
2. **Cache** — the :class:`~repro.harness.ResultStore` is consulted
   inline (a single local-disk JSON read); hits return without ever
   touching the runner.
3. **Compute** — misses are submitted to the runner's incremental pool
   (:meth:`~repro.harness.ParallelRunner.submit_point`), bounded by
   ``max_pending``; beyond the bound new computations are refused
   (:class:`PoolSaturated` → HTTP 429).  Requests carry a timeout
   (:class:`PointTimeout` → HTTP 504) but a timed-out computation keeps
   running and lands in the cache, so a retry is a hit.

``JobTable`` drives whole grids (``POST /v1/sweep``) through the same
pool, so a job's points coalesce with interactive requests and every
computed point is shared.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.harness import ParallelRunner, PointOutcome, SweepError, SweepPoint

_UNSET = object()


class PoolSaturated(Exception):
    """The compute queue is full; the client should back off and retry."""


class PointTimeout(Exception):
    """The request timed out; the computation itself continues."""


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


@dataclass(slots=True)
class ServiceStats:
    """Counters and latency windows behind ``GET /statz``."""

    #: Wall-clock start, reported as a timestamp; ``uptime_s`` is
    #: measured against the monotonic anchor below — an NTP step must
    #: never make uptime jump or go negative.
    started_at: float = field(default_factory=time.time)
    started_monotonic: float = field(default_factory=time.monotonic)
    hits: int = 0
    computes: int = 0
    coalesced: int = 0
    rejected: int = 0
    timeouts: int = 0
    errors: int = 0
    compute_seconds: float = 0.0
    saved_seconds: float = 0.0
    #: Compiled-trace cache events observed by computed points (a point
    #: served from the result cache never compiles a trace at all).
    trace_hits: int = 0
    trace_misses: int = 0
    hit_latencies_ms: deque = field(default_factory=lambda: deque(maxlen=1024))
    compute_latencies_ms: deque = field(default_factory=lambda: deque(maxlen=1024))

    def note_hit(self, outcome: PointOutcome, wall_s: float) -> None:
        self.hits += 1
        self.hit_latencies_ms.append(1000.0 * wall_s)
        if outcome.elapsed_s:
            self.saved_seconds += outcome.elapsed_s

    def note_computed(self, outcome: PointOutcome, wall_s: float) -> None:
        self.computes += 1
        self.compute_latencies_ms.append(1000.0 * wall_s)
        if outcome.elapsed_s:
            self.compute_seconds += outcome.elapsed_s
        self.trace_hits += outcome.trace_hits
        self.trace_misses += outcome.trace_misses

    @property
    def point_requests(self) -> int:
        return self.hits + self.computes + self.coalesced

    def snapshot(self, in_flight: int, queue_bound: int) -> dict[str, Any]:
        total = self.point_requests
        hit = sorted(self.hit_latencies_ms)
        compute = sorted(self.compute_latencies_ms)
        return {
            "started_at": self.started_at,
            "uptime_s": round(time.monotonic() - self.started_monotonic, 3),
            "point_requests": total,
            "hits": self.hits,
            "computes": self.computes,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "hit_rate": round(self.hits / total, 4) if total else None,
            "in_flight": in_flight,
            "queue_depth_bound": queue_bound,
            "compute_seconds": round(self.compute_seconds, 3),
            "cache_saved_seconds": round(self.saved_seconds, 3),
            "trace_cache": {
                "hits": self.trace_hits,
                "misses": self.trace_misses,
                "hit_rate": (
                    round(self.trace_hits / (self.trace_hits + self.trace_misses), 4)
                    if (self.trace_hits + self.trace_misses)
                    else None
                ),
            },
            "latency_ms": {
                "hit": {
                    "count": len(hit),
                    "p50": round(_percentile(hit, 0.50), 3),
                    "p90": round(_percentile(hit, 0.90), 3),
                    "p99": round(_percentile(hit, 0.99), 3),
                },
                "compute": {
                    "count": len(compute),
                    "p50": round(_percentile(compute, 0.50), 3),
                    "p90": round(_percentile(compute, 0.90), 3),
                    "p99": round(_percentile(compute, 0.99), 3),
                },
            },
        }


class ComputePool:
    """Cache-first, coalescing access to sweep points for an event loop."""

    def __init__(
        self,
        runner: ParallelRunner,
        max_pending: int = 16,
        timeout_s: float | None = 60.0,
    ) -> None:
        self.runner = runner
        self.max_pending = max_pending
        self.timeout_s = timeout_s
        self.stats = ServiceStats()
        self._tasks: dict[str, asyncio.Task] = {}

    @property
    def in_flight(self) -> int:
        """Computations currently pending or running."""
        return len(self._tasks)

    async def fetch(
        self,
        point: SweepPoint,
        *,
        wait: bool = False,
        timeout_s: Any = _UNSET,
    ) -> PointOutcome:
        """The outcome for ``point``: cached, coalesced, or computed.

        ``wait=True`` (background jobs) skips the saturation check —
        such callers throttle themselves and prefer queueing in-process
        over a 429.  ``timeout_s`` overrides the pool default; ``None``
        waits indefinitely.
        """
        started = time.perf_counter()
        key = f"{point.kind}/{point.key}"
        # NOTE: everything up to task creation is synchronous, so two
        # concurrent fetches of one point cannot both miss the dict.
        task = self._tasks.get(key)
        if task is None:
            cached = self.runner.cached_outcome(point)
            if cached is not None:
                self.stats.note_hit(cached, time.perf_counter() - started)
                return cached
            if not wait and len(self._tasks) >= self.max_pending:
                self.stats.rejected += 1
                raise PoolSaturated(
                    f"compute queue is full ({self.max_pending} in flight)"
                )
            task = asyncio.get_running_loop().create_task(self._compute(key, point))
            self._tasks[key] = task
        else:
            self.stats.coalesced += 1

        timeout = self.timeout_s if timeout_s is _UNSET else timeout_s
        try:
            return await asyncio.wait_for(asyncio.shield(task), timeout)
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            raise PointTimeout(
                f"point did not complete within {timeout}s; it is still "
                "computing — retry to pick up the cached result"
            ) from None

    async def _compute(self, key: str, point: SweepPoint) -> PointOutcome:
        started = time.perf_counter()
        try:
            future = self.runner.submit_point(point)
            outcome = await asyncio.wrap_future(future)
            wall = time.perf_counter() - started
            if outcome.cached:
                # A claimed replica resolves points computed by a *peer*
                # replica as cached outcomes (it waited on the claim and
                # read the store) — that is a hit, not a local compute,
                # or /statz would double-count the fleet's work.
                self.stats.note_hit(outcome, wall)
            else:
                self.stats.note_computed(outcome, wall)
            return outcome
        except SweepError:
            self.stats.errors += 1
            raise
        finally:
            self._tasks.pop(key, None)

    async def drain(self) -> None:
        """Wait for all in-flight computations (used at shutdown)."""
        tasks = list(self._tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


@dataclass(slots=True)
class SweepJob:
    """One submitted grid and its progress."""

    id: str
    kind: str
    points: list[SweepPoint]
    #: Name of the named experiment this job runs, when submitted via
    #: ``GET /v1/experiments/<name>`` (None for raw ``POST /v1/sweep``).
    experiment: str | None = None
    state: str = "running"  # running | done | failed
    done: int = 0
    cached: int = 0
    error: str | None = None
    results: list[Any] = field(default_factory=list)
    #: Wall-clock timestamps, reported as timestamps; ``elapsed_s`` is
    #: computed from the monotonic anchors so a wall-clock (NTP) step
    #: can never make a job's elapsed time jump or go negative.
    created_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    created_monotonic: float = field(default_factory=time.monotonic)
    finished_monotonic: float | None = None
    task: asyncio.Task | None = None

    @property
    def elapsed_s(self) -> float:
        """Monotonic runtime: so-far while running, total once finished."""
        end = (
            self.finished_monotonic
            if self.finished_monotonic is not None
            else time.monotonic()
        )
        return end - self.created_monotonic

    def status(self, include_results: bool = False) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "experiment": self.experiment,
            "state": self.state,
            "total": len(self.points),
            "done": self.done,
            "cached": self.cached,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "elapsed_s": round(self.elapsed_s, 3),
        }
        if self.error is not None:
            payload["error"] = self.error
        if include_results:
            payload["points"] = [
                {"params": point.as_dict(), "result": value}
                for point, value in zip(self.points, self.results)
            ]
        return payload


class JobTable:
    """Background sweep jobs driven through the shared :class:`ComputePool`."""

    def __init__(
        self, pool: ComputePool, concurrency: int = 2, max_jobs: int = 64
    ) -> None:
        self.pool = pool
        self.concurrency = max(1, concurrency)
        self.max_jobs = max_jobs
        self._jobs: dict[str, SweepJob] = {}
        self._counter = itertools.count(1)

    def submit(
        self,
        kind: str,
        points: list[SweepPoint],
        experiment: str | None = None,
    ) -> SweepJob:
        self._evict_finished()
        if len(self._jobs) >= self.max_jobs:
            raise PoolSaturated(
                f"job table is full ({self.max_jobs} unfinished jobs)"
            )
        number = next(self._counter)
        job = SweepJob(
            id=f"job-{number:05d}-{points[0].key[:8] if points else 'empty'}",
            kind=kind,
            points=points,
            experiment=experiment,
            results=[None] * len(points),
        )
        self._jobs[job.id] = job
        job.task = asyncio.get_running_loop().create_task(self._drive(job))
        return job

    def get(self, job_id: str) -> SweepJob | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[SweepJob]:
        return sorted(self._jobs.values(), key=lambda job: job.id)

    def _submission_order(self, points: list[SweepPoint]) -> list[int]:
        """Indices longest-predicted-first — the same recorded-wall-time
        signal batch chunk packing uses, so a job's stragglers start
        first instead of serializing behind the grid's tail.  With no
        timing signal every point weighs the same and the sort is
        stable, preserving grid order."""
        try:
            durations = self.pool.runner.predicted_durations(points)
        except Exception:
            return list(range(len(points)))
        return sorted(range(len(points)), key=lambda i: (-durations[i], i))

    async def _drive(self, job: SweepJob) -> None:
        semaphore = asyncio.Semaphore(self.concurrency)

        async def one(index: int, point: SweepPoint) -> None:
            async with semaphore:
                outcome = await self.pool.fetch(point, wait=True, timeout_s=None)
            job.results[index] = outcome.value
            job.done += 1
            job.cached += 1 if outcome.cached else 0

        # to_thread: predicting durations scans the store's recorded
        # entries on disk — off the event loop, like every other bulk
        # cache scan.  gather() starts tasks in argument order and the
        # semaphore admits them in that order, so submission follows
        # the predicted-duration order; results stay in grid order.
        order = await asyncio.to_thread(self._submission_order, job.points)
        settled = await asyncio.gather(
            *(one(i, job.points[i]) for i in order),
            return_exceptions=True,
        )
        failures = [exc for exc in settled if isinstance(exc, BaseException)]
        if failures:
            job.state = "failed"
            job.error = str(failures[0])
        else:
            job.state = "done"
        job.finished_at = time.time()
        job.finished_monotonic = time.monotonic()

    def _evict_finished(self) -> None:
        """Drop oldest finished jobs once the table is over capacity."""
        overflow = len(self._jobs) - self.max_jobs + 1
        if overflow <= 0:
            # NOTE: a negative overflow must not reach the slice below —
            # finished[:negative] would evict almost every finished job
            # while the table is still far under capacity.
            return
        finished = [job for job in self.jobs() if job.state != "running"]
        for job in finished[:overflow]:
            del self._jobs[job.id]
