"""Endpoint semantics: map parsed requests onto the harness.

Transport-agnostic by construction — a :class:`ServiceApp` turns a
:class:`~repro.service.wire.Request` into a
:class:`~repro.service.wire.Response` and never touches a socket, so
tests can drive it without a server and the server stays dumb plumbing.
"""

from __future__ import annotations

import hmac
import json
import time
from collections.abc import Callable
from typing import Any

from repro.common.literals import parse_literal
from repro.harness import (
    SweepError,
    SweepPoint,
    SweepSpec,
    runner_kinds,
    validate_point_params,
)
from repro.service.jobs import ComputePool, JobTable, PointTimeout, PoolSaturated
from repro.service.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.service.metrics import render_metrics
from repro.service.sessions import (
    SessionError,
    SessionTable,
    parse_ndjson_events,
)
from repro.service.wire import Request, Response, error_response

#: Largest grid a single POST /v1/sweep may expand to.
MAX_SWEEP_POINTS = 1024

#: Reserved /v1/point query parameters (everything else is a point param).
_TIMEOUT_PARAM = "_timeout_s"

#: Runner kinds the service refuses to execute: ``selftest`` exists to
#: exercise harness failure paths and can deliberately kill its host
#: process (``behavior=crash``) — a remote client must not reach it.
UNSERVABLE_KINDS = frozenset({"selftest"})

#: How long a computed trace-entry count stays fresh in ``/statz``
#: (counting is a directory scan; monitoring pollers shouldn't pay it
#: on every request).  Point-entry counts no longer scan at all — the
#: store maintains them incrementally; this TTL only covers the rare
#: configuration where the trace dir is NOT the store's directory.
_CACHE_COUNT_TTL_S = 5.0

#: How stale the store's incremental entry counts may grow before a
#: rescan, when claim coordination is active (peer replicas write into
#: the shared cache dir behind this process's back).  Unclaimed
#: replicas are the only writer and never rescan.
_SHARED_CACHE_RESCAN_S = 60.0

#: Endpoints that bypass API-key auth: liveness probes (load balancers,
#: Kubernetes) cannot carry credentials.
AUTH_EXEMPT_PATHS = frozenset({"/healthz"})


class ServiceApp:
    """Routes requests to the compute pool, job table, and session table."""

    def __init__(
        self,
        pool: ComputePool,
        jobs: JobTable,
        sessions: SessionTable | None = None,
        api_key: str | None = None,
    ) -> None:
        self.pool = pool
        self.jobs = jobs
        self.sessions = sessions if sessions is not None else SessionTable()
        #: When set, every endpoint except :data:`AUTH_EXEMPT_PATHS`
        #: requires this key (``Authorization: Bearer`` or
        #: ``X-API-Key``); compared constant-time.
        self.api_key = api_key
        #: Wall time this app came up, reported as a timestamp; uptime
        #: is measured against the monotonic anchor (an NTP step must
        #: never make uptime jump or go negative).
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._trace_count: tuple[float, int | None] | None = None

    def servable_kinds(self) -> tuple[str, ...]:
        return tuple(k for k in runner_kinds() if k not in UNSERVABLE_KINDS)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _routes(self, path: str) -> dict[str, Callable] | None:
        """Method → handler map for ``path``, or None (404).

        One table for every route, so the 405 path can always name the
        allowed methods (RFC 9110 requires ``Allow`` on 405) without
        each endpoint repeating the logic.
        """
        exact: dict[str, dict[str, Callable]] = {
            "/healthz": {"GET": self._healthz},
            "/statz": {"GET": self._statz},
            "/metrics": {"GET": self._metrics},
            "/v1/experiments": {"GET": self._experiments},
            "/v1/point": {"GET": self._point},
            "/v1/sweep": {"POST": self._sweep},
            "/v1/jobs": {"GET": lambda _r: self._job_list()},
            "/v1/sessions": {
                "GET": self._session_list,
                "POST": self._open_session,
            },
        }
        if path in exact:
            return exact[path]
        if path.startswith("/v1/experiments/"):
            return {"GET": self._run_experiment}
        if path.startswith("/v1/jobs/"):
            return {"GET": self._job_status}
        if path.startswith("/v1/sessions/"):
            if path.endswith("/events"):
                return {"POST": self._session_events}
            return {
                "GET": self._session_status,
                "DELETE": self._close_session,
            }
        return None

    async def handle(self, request: Request) -> Response:
        if not self._authorized(request):
            response = error_response(
                401, "missing or invalid API key"
            )
            response.headers["WWW-Authenticate"] = 'Bearer realm="repro-paper"'
            return response
        methods = self._routes(request.path)
        if methods is None:
            return error_response(
                404, f"no such endpoint: {request.method} {request.path}"
            )
        handler = methods.get(request.method)
        if handler is None:
            return self._method_not_allowed(request, methods)
        result = handler(request)
        if hasattr(result, "__await__"):
            return await result
        return result

    def _authorized(self, request: Request) -> bool:
        """True when the request may proceed.

        With no key configured the service is open (the development
        default).  With one, the client must present it via
        ``Authorization: Bearer <key>`` or ``X-API-Key: <key>``; the
        comparison is constant-time (:func:`hmac.compare_digest`) so
        the check never leaks key bytes through response timing.
        Liveness probes (:data:`AUTH_EXEMPT_PATHS`) are always allowed.
        """
        if self.api_key is None or request.path in AUTH_EXEMPT_PATHS:
            return True
        presented: str | None = None
        authorization = request.headers.get("authorization", "")
        scheme, _, credential = authorization.partition(" ")
        if scheme.lower() == "bearer" and credential.strip():
            presented = credential.strip()
        elif "x-api-key" in request.headers:
            presented = request.headers["x-api-key"]
        if presented is None:
            return False
        return hmac.compare_digest(
            presented.encode("utf-8"), self.api_key.encode("utf-8")
        )

    @staticmethod
    def _method_not_allowed(
        request: Request, methods: dict[str, Callable]
    ) -> Response:
        allow = ", ".join(sorted(methods))
        response = error_response(
            405,
            f"method {request.method} not allowed on {request.path}; "
            f"use {allow}",
        )
        response.headers["Allow"] = allow
        return response

    def _retry_after_s(self) -> float:
        """Backoff hint derived from compute-queue depth.

        An empty queue suggests retrying almost immediately (1 s); a
        full one the expected drain time (5 s).  Both saturation paths
        (point requests and sweep/experiment job submission) share this
        derivation so clients see one consistent hint.
        """
        bound = max(1, self.pool.max_pending)
        depth = min(self.pool.in_flight, bound)
        return round(1.0 + 4.0 * (depth / bound), 1)

    # ------------------------------------------------------------------
    # health and stats
    # ------------------------------------------------------------------
    def _healthz(self, request: Request) -> Response:
        return Response(
            payload={
                "status": "ok",
                "started_at": self.started_at,
                "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            }
        )

    def _statz(self, request: Request) -> Response:
        return Response(payload=self._stats_snapshot())

    def _metrics(self, request: Request) -> Response:
        """``GET /metrics``: the same snapshot, Prometheus text format."""
        return Response(
            body=render_metrics(self._stats_snapshot()).encode("utf-8"),
            headers={"Content-Type": METRICS_CONTENT_TYPE},
        )

    def _stats_snapshot(self) -> dict[str, Any]:
        """One stats dict, shared verbatim by ``/statz`` and rendered
        into text format by ``/metrics``."""
        runner = self.pool.runner
        snapshot = self.pool.stats.snapshot(
            in_flight=self.pool.in_flight, queue_bound=self.pool.max_pending
        )
        snapshot["jobs"] = {
            "total": len(self.jobs.jobs()),
            "running": sum(1 for j in self.jobs.jobs() if j.state == "running"),
        }
        # NOTE: ResultStore defines __len__, so an empty store is falsy —
        # these checks must be identity checks, not truthiness.
        store = runner.store
        claims = getattr(runner, "claims", None)
        snapshot["runner"] = {
            "jobs": runner.jobs,
            "pool_started": runner.incremental_started,
            "cache_dir": str(store.root) if store is not None else None,
            "cache_entries": self._count_cache_entries(claims_active=claims is not None),
        }
        from repro.trace import configured_trace_dir

        trace_dir = configured_trace_dir()
        snapshot["trace_cache"].update(
            {
                "dir": trace_dir,
                "entries": self._count_trace_entries(trace_dir),
            }
        )
        # Claim coordination (multi-replica deployments): held/stolen/
        # released counters, or null when this replica runs unclaimed.
        snapshot["claims"] = claims.stats() if claims is not None else None
        snapshot["sessions"] = self.sessions.stats()
        snapshot["hot_tier"] = (
            store.hot_tier.stats()
            if store is not None and store.hot_tier is not None
            else None
        )
        return snapshot

    def _count_cache_entries(self, claims_active: bool) -> int | None:
        """Point entries in the store, from its incremental counts.

        The store scans its directory exactly once and maintains the
        counts on every write/discard, so this is a dict sum — the
        periodic ``os.scandir`` the old implementation paid per poll is
        gone.  With claim coordination active, peer replicas also write
        into the cache dir, so the counts are allowed to refresh via a
        bounded-staleness rescan; unclaimed replicas are the sole
        writer and never rescan.  Compiled traces — both families,
        accuracy (``trace/``) and timing (``timetrace/``) — share the
        store's directory but are inputs, not point results: they are
        excluded here and counted separately in ``trace_cache``.
        """
        store = self.pool.runner.store
        if store is None:
            return None
        from repro.trace.cache import TIMETRACE_KIND, TRACE_KIND

        counts = store.entry_counts(
            max_age_s=_SHARED_CACHE_RESCAN_S if claims_active else None
        )
        return sum(
            count
            for kind, count in counts.items()
            if kind not in (TRACE_KIND, TIMETRACE_KIND)
        )

    def _count_trace_entries(self, trace_dir: str | None) -> int | None:
        """Compiled traces on disk (both families).

        On the serve path the trace dir IS the store's directory (see
        ``ReproService.__init__``), so the store's incremental counts
        cover it for free; the amortized glob scan only survives for
        the configuration where they differ.
        """
        if trace_dir is None:
            return None
        from repro.trace.cache import TIMETRACE_KIND, TRACE_KIND

        store = self.pool.runner.store
        if store is not None and str(store.root) == trace_dir:
            counts = store.entry_counts()
            return counts.get(TRACE_KIND, 0) + counts.get(TIMETRACE_KIND, 0)
        now = time.monotonic()
        if self._trace_count is None or now - self._trace_count[0] > _CACHE_COUNT_TTL_S:
            from pathlib import Path

            self._trace_count = (
                now,
                sum(
                    len(list(Path(trace_dir).glob(f"{kind}/*.json")))
                    for kind in (TRACE_KIND, TIMETRACE_KIND)
                ),
            )
        return self._trace_count[1]

    def _experiments(self, request: Request) -> Response:
        from repro.eval.experiments import experiment_catalog

        return Response(
            payload={
                "experiments": experiment_catalog(),
                "kinds": list(self.servable_kinds()),
            }
        )

    def _run_experiment(self, request: Request) -> Response:
        """``GET /v1/experiments/<name>``: run a named experiment.

        Grid-shaped experiments expand to exactly the sweep points their
        CLI drivers run and become a background job on the shared pool
        (202 + poll URL), so their points coalesce with interactive
        requests and land in the same cache.  Static configuration
        tables (table1/table2) have no grid and return inline.
        ``?fast=1`` selects the quarter-size grids.
        """
        from repro.eval.experiments import (
            EXPERIMENTS,
            STATIC_EXPERIMENTS,
            experiment_spec,
            run_experiment,
        )

        name = request.path.removeprefix("/v1/experiments/")
        if name not in EXPERIMENTS:
            return error_response(
                404,
                f"no such experiment: {name!r} (known: {', '.join(EXPERIMENTS)})",
            )
        fast = request.query.get("fast") in ("1", "true", "yes")
        if name in STATIC_EXPERIMENTS:
            return Response(
                payload={
                    "experiment": name,
                    "static": True,
                    "result": run_experiment(name, fast=fast),
                }
            )
        spec = experiment_spec(name, fast=fast)
        assert spec is not None  # non-static experiments all have grids
        points = spec.points()
        try:
            job = self.jobs.submit(spec.kind, points, experiment=name)
        except PoolSaturated as exc:
            return error_response(429, str(exc), retry_after_s=self._retry_after_s())
        return Response(
            status=202,
            payload={
                "job": job.id,
                "experiment": name,
                "fast": fast,
                "points": len(points),
                "poll": f"/v1/jobs/{job.id}",
            },
        )

    # ------------------------------------------------------------------
    # points
    # ------------------------------------------------------------------
    async def _point(self, request: Request) -> Response:
        started = time.perf_counter()
        kind = request.query.get("kind")
        if not kind:
            return error_response(400, "missing required query parameter 'kind'")
        if kind not in self.servable_kinds():
            return error_response(
                400,
                f"unknown kind {kind!r} (known: {', '.join(self.servable_kinds())})",
            )
        timeout_s: Any = None
        params: dict[str, Any] = {}
        for name, raw in request.query.items():
            if name == "kind":
                continue
            if name == _TIMEOUT_PARAM:
                try:
                    timeout_s = float(raw)
                except ValueError:
                    return error_response(400, f"bad {_TIMEOUT_PARAM}: {raw!r}")
                continue
            if name.startswith("_"):
                return error_response(400, f"unknown reserved parameter {name!r}")
            params[name] = parse_literal(raw)
        try:
            validate_point_params(kind, params)
            point = SweepPoint.make(kind, params)
        except (TypeError, ValueError) as exc:
            return error_response(400, f"invalid point parameters: {exc}")

        fetch_kwargs: dict[str, Any] = {}
        if timeout_s is not None:
            fetch_kwargs["timeout_s"] = timeout_s
        try:
            outcome = await self.pool.fetch(point, **fetch_kwargs)
        except PoolSaturated as exc:
            return error_response(
                429, str(exc), retry_after_s=self._retry_after_s()
            )
        except PointTimeout as exc:
            # The computation continues and will land in the cache, so
            # the retry hint (and Retry-After header) tells the client
            # when a retry is likely to be a pure hit.
            return error_response(
                504, str(exc), retry_after_s=self._retry_after_s()
            )
        except SweepError as exc:
            return error_response(500, str(exc))
        return Response(
            payload={
                "kind": kind,
                "params": point.as_dict(),
                "key": point.key,
                "result": outcome.value,
                "cached": outcome.cached,
                "elapsed_s": outcome.elapsed_s,
                "wall_ms": round(1000.0 * (time.perf_counter() - started), 3),
            }
        )

    # ------------------------------------------------------------------
    # sweep jobs
    # ------------------------------------------------------------------
    def _sweep(self, request: Request) -> Response:
        try:
            body = request.json()
        except Exception as exc:  # WireError
            return error_response(400, str(exc))
        if not isinstance(body, dict):
            return error_response(400, "sweep body must be a JSON object")
        kind = body.get("kind")
        if not isinstance(kind, str) or kind not in self.servable_kinds():
            return error_response(
                400,
                "sweep body needs a known 'kind' "
                f"(known: {', '.join(self.servable_kinds())})",
            )
        axes = body.get("axes") or {}
        base = body.get("base") or {}
        if not isinstance(axes, dict) or not all(
            isinstance(values, list) for values in axes.values()
        ):
            return error_response(400, "'axes' must map names to value lists")
        if not isinstance(base, dict):
            return error_response(400, "'base' must be a JSON object")
        if not axes:
            return error_response(400, "at least one axis is required")
        try:
            points = SweepSpec(kind=kind, axes=axes, base=base).points()
            for point in points:
                validate_point_params(kind, point.as_dict())
        except (TypeError, ValueError) as exc:
            return error_response(400, f"invalid sweep grid: {exc}")
        if len(points) > MAX_SWEEP_POINTS:
            return error_response(
                413,
                f"grid expands to {len(points)} points "
                f"(limit {MAX_SWEEP_POINTS}); split the sweep",
            )
        try:
            job = self.jobs.submit(kind, points)
        except PoolSaturated as exc:
            return error_response(429, str(exc), retry_after_s=self._retry_after_s())
        return Response(
            status=202,
            payload={
                "job": job.id,
                "points": len(points),
                "poll": f"/v1/jobs/{job.id}",
            },
        )

    def _job_list(self) -> Response:
        return Response(
            payload={"jobs": [job.status() for job in self.jobs.jobs()]}
        )

    def _job_status(self, request: Request) -> Response:
        job_id = request.path.removeprefix("/v1/jobs/")
        job = self.jobs.get(job_id)
        if job is None:
            return error_response(404, f"no such job: {job_id!r}")
        include_results = request.query.get("results") in ("1", "true", "yes")
        return Response(payload=job.status(include_results=include_results))

    # ------------------------------------------------------------------
    # streaming prediction sessions
    # ------------------------------------------------------------------
    @staticmethod
    def _session_error(exc: SessionError) -> Response:
        extra: dict[str, Any] = {}
        if exc.retry_after_s is not None:
            extra["retry_after_s"] = round(exc.retry_after_s, 1)
        return error_response(exc.status, exc.message, **extra)

    def _session_id(self, request: Request) -> str:
        return request.path.removeprefix("/v1/sessions/").removesuffix("/events")

    def _open_session(self, request: Request) -> Response:
        """``POST /v1/sessions``: admit one live predictor session."""
        try:
            body = request.json()
        except Exception as exc:  # WireError
            return error_response(400, str(exc))
        if not isinstance(body, dict):
            return error_response(400, "session body must be a JSON object")
        unknown = set(body) - {"predictor", "depth", "num_procs"}
        if unknown:
            return error_response(
                400, f"unknown session field(s): {', '.join(sorted(unknown))}"
            )
        try:
            session = self.sessions.open(
                predictor=body.get("predictor", "MSP"),
                depth=body.get("depth", 1),
                num_procs=body.get("num_procs", 16),
            )
        except SessionError as exc:
            return self._session_error(exc)
        except (TypeError, ValueError) as exc:
            return error_response(400, f"invalid session parameters: {exc}")
        return Response(
            status=201,
            payload={
                "session": session.id,
                "predictor": session.predictor_name,
                "depth": session.depth,
                "num_procs": session.num_procs,
                "events_url": f"/v1/sessions/{session.id}/events",
                "max_events": self.sessions.max_events,
                "ttl_s": self.sessions.ttl_s,
            },
        )

    def _session_list(self, request: Request) -> Response:
        self.sessions.reap()
        now = time.monotonic()
        return Response(
            payload={
                "sessions": [s.status(now) for s in self.sessions.sessions()],
                "counters": self.sessions.stats(),
            }
        )

    def _session_status(self, request: Request) -> Response:
        try:
            session = self.sessions.peek(self._session_id(request))
        except SessionError as exc:
            return self._session_error(exc)
        return Response(payload=session.status(time.monotonic()))

    def _close_session(self, request: Request) -> Response:
        """``DELETE /v1/sessions/<id>``: flush, summarize, remove.

        The summary's ``run`` object is bit-identical to the
        per-predictor entry a batch ``accuracy`` point over the same
        event sequence reports.
        """
        try:
            summary = self.sessions.close(self._session_id(request))
        except SessionError as exc:
            return self._session_error(exc)
        return Response(payload=summary)

    def _session_events(self, request: Request) -> Response:
        """``POST /v1/sessions/<id>/events``: one NDJSON batch in,
        chunked NDJSON predictions out.

        The batch is validated and applied atomically *before* the
        response starts (so a 400/413 can still be a clean JSON error,
        and a client disconnect mid-response can never leave the
        session half-fed); the per-event prediction lines then stream
        back chunk-by-chunk with ``Transfer-Encoding: chunked``.
        """
        session_id = self._session_id(request)
        try:
            session = self.sessions.peek(session_id)
        except SessionError as exc:
            return self._session_error(exc)
        try:
            messages = parse_ndjson_events(request.body, session.num_procs)
        except ValueError as exc:
            return error_response(400, f"bad event batch: {exc}")
        try:
            lines = self.sessions.feed(session_id, messages)
        except SessionError as exc:
            return self._session_error(exc)

        async def stream():
            # Group lines into ~16 KB chunks: still streamed (a large
            # batch arrives as many flushed chunks), without a drain
            # per 100-byte line.
            buffer = bytearray()
            for line in lines:
                buffer += (json.dumps(line, sort_keys=True) + "\n").encode("utf-8")
                if len(buffer) >= 16384:
                    yield bytes(buffer)
                    buffer.clear()
            if buffer:
                yield bytes(buffer)

        return Response(
            status=200,
            headers={"X-Session-Events": str(len(lines))},
            stream=stream(),
        )
