"""The asyncio server: sockets in, :class:`ServiceApp` responses out.

One task per connection, HTTP/1.1 keep-alive with an idle timeout,
bounded request framing from :mod:`repro.service.wire`, and a graceful
stop that drains in-flight computations so their results still land in
the cache.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.harness import (
    DEFAULT_CLAIM_TTL_S,
    DEFAULT_HOT_BYTES,
    DEFAULT_HOT_ENTRIES,
    ClaimBoard,
    ClaimedRunner,
    HotTier,
    ParallelRunner,
    ResultStore,
)
from repro.service.app import ServiceApp
from repro.service.jobs import ComputePool, JobTable
from repro.service.sessions import (
    DEFAULT_MAX_EVENTS,
    DEFAULT_MAX_SESSIONS,
    DEFAULT_SESSION_TTL_S,
    SessionTable,
)
from repro.service.wire import (
    WireError,
    error_response,
    read_request,
    read_start_line,
    write_response,
)


@dataclass(slots=True)
class ServiceConfig:
    """Everything ``repro-paper serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8599
    jobs: int = 1
    cache_dir: str | None = ".repro-cache"
    refresh: bool = False
    max_pending: int = 16
    timeout_s: float | None = 60.0
    keep_alive_s: float = 10.0
    #: How long a request may take to arrive once its first line has;
    #: distinct from the idle timeout — a slow upload is not an idle
    #: connection (it gets a 408, not a silent close).
    request_timeout_s: float = 30.0
    job_concurrency: int = 2
    #: Claim-file directory for multi-replica deployments (canonically
    #: ``<cache-dir>/claims``): replicas sharing one cache dir claim
    #: each point before computing it, so a grid submitted to two
    #: replicas is computed exactly once across them.  None disables
    #: claim coordination (single-replica default).
    claim_dir: str | None = None
    #: Claim owner id for this replica (default: host:pid).
    worker_id: str | None = None
    claim_ttl_s: float = DEFAULT_CLAIM_TTL_S
    #: Streaming prediction sessions (``POST /v1/sessions``): admission
    #: bound, idle TTL before a session is reaped, and the per-session
    #: event bound (predictor state grows with the trace, so unbounded
    #: sessions are unbounded memory; see docs/performance.md).
    max_sessions: int = DEFAULT_MAX_SESSIONS
    session_ttl_s: float = DEFAULT_SESSION_TTL_S
    session_max_events: int = DEFAULT_MAX_EVENTS
    #: API key every endpoint except ``/healthz`` must present
    #: (``Authorization: Bearer`` or ``X-API-Key``); None leaves the
    #: service open (the development default).
    api_key: str | None = None
    #: In-process LRU hot tier in front of the on-disk store: entry and
    #: byte bounds (0 disables the tier — every load reads the disk).
    hot_entries: int = DEFAULT_HOT_ENTRIES
    hot_bytes: int = DEFAULT_HOT_BYTES


class ReproService:
    """Owns the runner, pool, job table, app, and listening socket."""

    def __init__(
        self, config: ServiceConfig | None = None, runner: ParallelRunner | None = None
    ) -> None:
        self.config = config or ServiceConfig()
        if runner is None:
            # Hot tier validation is tied to claim coordination: with
            # peer replicas writing into the shared cache dir, each hit
            # re-stats its backing file; single-replica deployments are
            # the only writer and skip even that.
            hot_tier = (
                HotTier(
                    max_entries=self.config.hot_entries,
                    max_bytes=self.config.hot_bytes,
                    validate=self.config.claim_dir is not None,
                )
                if self.config.hot_entries > 0 and self.config.hot_bytes > 0
                else None
            )
            store = (
                ResultStore(self.config.cache_dir, hot_tier=hot_tier)
                if self.config.cache_dir is not None
                else None
            )
            runner = ParallelRunner(
                jobs=self.config.jobs, store=store, refresh=self.config.refresh
            )
        if self.config.claim_dir is not None and not isinstance(
            runner, ClaimedRunner
        ):
            # Replica mode: claim points before computing them, so
            # replicas sharing this cache dir divide grids between
            # them instead of duplicating work (raises on store=None —
            # claims without a shared store cannot share results).
            runner = ClaimedRunner(
                runner,
                ClaimBoard(
                    self.config.claim_dir,
                    owner=self.config.worker_id,
                    ttl_s=self.config.claim_ttl_s,
                ),
            )
        self.runner = runner
        if self.runner.store is not None:
            # Compiled traces share the point cache's directory; the
            # incremental pool's workers (thread or forked processes)
            # inherit this configuration.
            from repro.trace import configure_trace_cache

            configure_trace_cache(self.runner.store.root)
        self.pool = ComputePool(
            runner,
            max_pending=self.config.max_pending,
            timeout_s=self.config.timeout_s,
        )
        self.jobs = JobTable(self.pool, concurrency=self.config.job_concurrency)
        self.sessions = SessionTable(
            max_sessions=self.config.max_sessions,
            ttl_s=self.config.session_ttl_s,
            max_events=self.config.session_max_events,
        )
        self.app = ServiceApp(
            self.pool, self.jobs, self.sessions, api_key=self.config.api_key
        )
        self._server: asyncio.Server | None = None
        self._reaper: asyncio.Task | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> "ReproService":
        if self._server is not None:
            raise RuntimeError("service is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        # Idle-session reaping is lazy (every table access reaps), but a
        # replica that stops receiving traffic should still free
        # predictor state — this sweep bounds how long an abandoned
        # session can outlive its TTL.
        self._reaper = asyncio.get_running_loop().create_task(
            self._reap_sessions_forever()
        )
        return self

    async def _reap_sessions_forever(self) -> None:
        interval = max(1.0, self.config.session_ttl_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            self.sessions.reap()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight computations, free the pool."""
        server, self._server = self._server, None
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.cancel()
        if server is not None:
            server.close()
            await server.wait_closed()
        await self.pool.drain()
        self.runner.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    # idle timeout: waiting for the next request to START.
                    start_line = await asyncio.wait_for(
                        read_start_line(reader), timeout=self.config.keep_alive_s
                    )
                    if not start_line:
                        break  # client closed cleanly
                    # request timeout: receiving the REST of it.
                    try:
                        request = await asyncio.wait_for(
                            read_request(reader, start_line=start_line),
                            timeout=self.config.request_timeout_s,
                        )
                    except asyncio.TimeoutError:
                        await write_response(
                            writer,
                            error_response(
                                408,
                                "request did not arrive within "
                                f"{self.config.request_timeout_s}s",
                            ),
                            keep_alive=False,
                        )
                        break
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection
                except WireError as exc:
                    await write_response(
                        writer,
                        error_response(exc.status, exc.message),
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break  # unreachable with a non-empty start line
                try:
                    response = await self.app.handle(request)
                except Exception as exc:  # noqa: BLE001 — last-resort 500
                    response = error_response(
                        500, f"internal error: {type(exc).__name__}: {exc}"
                    )
                await write_response(writer, response, keep_alive=request.keep_alive)
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def _serve(config: ServiceConfig, announce) -> None:
    service = ReproService(config)
    await service.start()
    announce(service)
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def run_service(config: ServiceConfig, announce=lambda service: None) -> int:
    """Blocking entry point used by ``repro-paper serve``; 0 on clean exit."""
    try:
        asyncio.run(_serve(config, announce))
    except KeyboardInterrupt:
        pass
    return 0
