"""Prometheus text-format rendering of the service's counters.

``GET /metrics`` exposes exactly the state ``GET /statz`` reports, in
the text exposition format (version 0.0.4) every Prometheus-compatible
scraper understands — no client library, no new dependency, just
deterministic string assembly from the same snapshot dict.

Conventions follow the Prometheus guidelines: monotonic counters end in
``_total``, base units are seconds and bytes, discrete outcomes are one
metric with a label rather than a family of metric names, and optional
subsystems (claims, hot tier) simply omit their families when absent so
dashboards can use ``absent()`` to detect configuration.
"""

from __future__ import annotations

import math
from typing import Any

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: Any) -> str:
    """One Prometheus sample value: integers stay exact, floats short."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Writer:
    """Accumulates families; one HELP/TYPE header per family name."""

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: Any, labels: dict[str, str] | None = None
    ) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape(val)}"' for key, val in labels.items()
            )
            self._lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            self._lines.append(f"{name} {_fmt(value)}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_metrics(snapshot: dict[str, Any]) -> str:
    """The ``/metrics`` body for one ``/statz``-shaped snapshot."""
    w = _Writer()

    w.family("repro_uptime_seconds", "gauge", "Seconds since the service started.")
    w.sample("repro_uptime_seconds", snapshot.get("uptime_s", 0.0))

    w.family(
        "repro_point_requests_total",
        "counter",
        "Point requests by outcome (hit/compute/coalesced/rejected/timeout/error).",
    )
    for outcome, key in (
        ("hit", "hits"),
        ("compute", "computes"),
        ("coalesced", "coalesced"),
        ("rejected", "rejected"),
        ("timeout", "timeouts"),
        ("error", "errors"),
    ):
        w.sample(
            "repro_point_requests_total",
            snapshot.get(key, 0),
            {"outcome": outcome},
        )

    w.family(
        "repro_in_flight_computations",
        "gauge",
        "Point computations currently in flight.",
    )
    w.sample("repro_in_flight_computations", snapshot.get("in_flight", 0))

    w.family(
        "repro_queue_depth_bound",
        "gauge",
        "Configured bound on pending point computations.",
    )
    w.sample("repro_queue_depth_bound", snapshot.get("queue_depth_bound", 0))

    w.family(
        "repro_compute_seconds_total",
        "counter",
        "Worker seconds spent computing points.",
    )
    w.sample("repro_compute_seconds_total", snapshot.get("compute_seconds", 0.0))

    w.family(
        "repro_cache_saved_seconds_total",
        "counter",
        "Worker seconds avoided by serving cached points.",
    )
    w.sample(
        "repro_cache_saved_seconds_total", snapshot.get("cache_saved_seconds", 0.0)
    )

    latency = snapshot.get("latency_ms") or {}
    w.family(
        "repro_request_latency_milliseconds",
        "summary",
        "Recent /v1/point wall latency quantiles over a sliding window.",
    )
    for path in ("hit", "compute"):
        window = latency.get(path) or {}
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            w.sample(
                "repro_request_latency_milliseconds",
                window.get(key, 0.0),
                {"path": path, "quantile": quantile},
            )
        w.sample(
            "repro_request_latency_milliseconds_count",
            window.get("count", 0),
            {"path": path},
        )

    trace = snapshot.get("trace_cache") or {}
    w.family(
        "repro_trace_cache_events_total",
        "counter",
        "Compiled-trace cache lookups observed by computed points.",
    )
    w.sample(
        "repro_trace_cache_events_total", trace.get("hits", 0), {"result": "hit"}
    )
    w.sample(
        "repro_trace_cache_events_total", trace.get("misses", 0), {"result": "miss"}
    )
    if trace.get("entries") is not None:
        w.family(
            "repro_trace_cache_entries",
            "gauge",
            "Compiled traces on disk (both families).",
        )
        w.sample("repro_trace_cache_entries", trace["entries"])

    runner = snapshot.get("runner") or {}
    if runner.get("cache_entries") is not None:
        w.family(
            "repro_cache_entries",
            "gauge",
            "Point results in the on-disk store (excluding traces).",
        )
        w.sample("repro_cache_entries", runner["cache_entries"])

    jobs = snapshot.get("jobs") or {}
    w.family("repro_jobs_tracked", "gauge", "Sweep jobs tracked by the job table.")
    w.sample("repro_jobs_tracked", jobs.get("total", 0))
    w.family("repro_jobs_running", "gauge", "Sweep jobs currently running.")
    w.sample("repro_jobs_running", jobs.get("running", 0))

    sessions = snapshot.get("sessions") or {}
    w.family(
        "repro_sessions_active", "gauge", "Streaming prediction sessions open now."
    )
    w.sample("repro_sessions_active", sessions.get("active", 0))
    w.family(
        "repro_sessions_opened_total", "counter", "Sessions opened since start."
    )
    w.sample("repro_sessions_opened_total", sessions.get("opened", 0))
    w.family(
        "repro_sessions_closed_total", "counter", "Sessions closed by clients."
    )
    w.sample("repro_sessions_closed_total", sessions.get("closed", 0))
    w.family(
        "repro_sessions_evicted_total", "counter", "Sessions reaped past their TTL."
    )
    w.sample("repro_sessions_evicted_total", sessions.get("evicted", 0))
    w.family(
        "repro_session_events_total",
        "counter",
        "Trace events observed across all sessions.",
    )
    w.sample("repro_session_events_total", sessions.get("events_observed", 0))
    w.family(
        "repro_sessions_rejected_total",
        "counter",
        "Session opens/feeds rejected, by reason.",
    )
    w.sample(
        "repro_sessions_rejected_total",
        sessions.get("rejected_full", 0),
        {"reason": "full"},
    )
    w.sample(
        "repro_sessions_rejected_total",
        sessions.get("rejected_bound", 0),
        {"reason": "event_bound"},
    )

    hot = snapshot.get("hot_tier")
    if hot is not None:
        w.family(
            "repro_hot_tier_requests_total",
            "counter",
            "Hot-tier lookups by result.",
        )
        w.sample(
            "repro_hot_tier_requests_total", hot.get("hits", 0), {"result": "hit"}
        )
        w.sample(
            "repro_hot_tier_requests_total", hot.get("misses", 0), {"result": "miss"}
        )
        w.family(
            "repro_hot_tier_evictions_total",
            "counter",
            "Hot-tier entries evicted by the LRU bounds.",
        )
        w.sample("repro_hot_tier_evictions_total", hot.get("evictions", 0))
        w.family(
            "repro_hot_tier_invalidations_total",
            "counter",
            "Hot-tier entries dropped by discard/overwrite/validation.",
        )
        w.sample("repro_hot_tier_invalidations_total", hot.get("invalidations", 0))
        w.family("repro_hot_tier_entries", "gauge", "Entries resident in the hot tier.")
        w.sample("repro_hot_tier_entries", hot.get("entries", 0))
        w.family("repro_hot_tier_bytes", "gauge", "Bytes resident in the hot tier.")
        w.sample("repro_hot_tier_bytes", hot.get("bytes", 0))
        w.family(
            "repro_hot_tier_max_entries", "gauge", "Configured hot-tier entry bound."
        )
        w.sample("repro_hot_tier_max_entries", hot.get("max_entries", 0))
        w.family(
            "repro_hot_tier_max_bytes", "gauge", "Configured hot-tier byte bound."
        )
        w.sample("repro_hot_tier_max_bytes", hot.get("max_bytes", 0))

    claims = snapshot.get("claims")
    if claims is not None:
        w.family(
            "repro_claims_held",
            "gauge",
            "Point claims this replica currently holds.",
        )
        w.sample("repro_claims_held", claims.get("held", 0))
        w.family(
            "repro_claims_total",
            "counter",
            "Claim-protocol events on this replica, by event.",
        )
        for event in ("claimed", "computed", "released", "stolen", "lost"):
            w.sample(
                "repro_claims_total", claims.get(event, 0), {"event": event}
            )

    return w.render()
