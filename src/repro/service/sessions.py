"""Online prediction sessions: stream coherence events in, predictions out.

The paper's predictors are *online* by construction — they observe a
stream of coherence messages arriving at a home directory and predict
the next sharers — so the service can hold one live predictor per
client instead of only answering precomputed sweep points.  A session
is exactly the reference evaluation path of
:func:`repro.eval.accuracy.run_predictors` kept open between requests:
the client picks a predictor kind, depth, and node count, then feeds
NDJSON events in batches; the server applies each event through
``DirectoryPredictor.observe`` and answers with the per-event outcome,
the predicted next token, and the running accuracy.  Closing the
session flushes open read runs (VMSP) and reports the same
``accuracy`` / ``coverage`` / ``correct_fraction`` / ``average_pte`` /
``overhead_bytes`` numbers a batch run over the concatenated event
sequence would produce — bit-identical, which the golden tests enforce.

The :class:`SessionTable` is the "millions of users" shape: many small
stateful sessions with TTL + LRU idle reaping, a per-session event
bound (predictor state grows with the trace, so unbounded sessions are
unbounded memory), and admission backpressure once the table is full.
Everything is event-loop-confined: feeds are applied synchronously, so
two batches can never interleave mid-event and eviction can never
observe a half-applied batch.
"""

from __future__ import annotations

import itertools
import json
import time
from collections.abc import Callable, Iterable
from typing import Any

from repro.common.types import BlockId, Message, MessageKind, NodeId
from repro.predictors import PREDICTOR_CLASSES, DirectoryPredictor
from repro.predictors.base import ReadVector, Token

#: Admission defaults; ``repro-paper serve`` exposes all three.
DEFAULT_MAX_SESSIONS = 64
DEFAULT_SESSION_TTL_S = 300.0
DEFAULT_MAX_EVENTS = 100_000

_KIND_BY_NAME = {kind.value: kind for kind in MessageKind}


class SessionError(Exception):
    """Base for session failures; carries the HTTP status to answer."""

    status = 400

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.retry_after_s = retry_after_s


class SessionTableFull(SessionError):
    """No admission slot free; the client should back off and retry."""

    status = 429


class SessionBoundExceeded(SessionError):
    """The batch would push the session past its event bound."""

    status = 413


class UnknownSession(SessionError):
    """The id names no live session (never opened, expired, or closed)."""

    status = 404


# ----------------------------------------------------------------------
# event codec (the NDJSON schema)
# ----------------------------------------------------------------------
def parse_event(obj: Any, num_procs: int) -> Message:
    """One NDJSON event object to a :class:`Message`; ValueError if bad.

    Schema: ``{"kind": "read|write|upgrade|ack|writeback", "node": N,
    "block": B}`` — exactly the coherence-message vocabulary the
    predictors observe at a home directory.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"event must be a JSON object, got {obj!r}")
    unknown = set(obj) - {"kind", "node", "block"}
    if unknown:
        raise ValueError(f"unknown event field(s): {', '.join(sorted(unknown))}")
    kind = _KIND_BY_NAME.get(obj.get("kind"))
    if kind is None:
        raise ValueError(
            f"bad event kind {obj.get('kind')!r} "
            f"(known: {', '.join(sorted(_KIND_BY_NAME))})"
        )
    node = obj.get("node")
    if not isinstance(node, int) or isinstance(node, bool) or node < 0:
        raise ValueError(f"event node must be a non-negative integer, got {node!r}")
    if node >= num_procs:
        raise ValueError(
            f"event node {node} out of range for a {num_procs}-node session"
        )
    block = obj.get("block")
    if not isinstance(block, int) or isinstance(block, bool) or block < 0:
        raise ValueError(
            f"event block must be a non-negative integer, got {block!r}"
        )
    return Message(kind=kind, node=node, block=block)


def parse_ndjson_events(body: bytes, num_procs: int) -> list[Message]:
    """Decode an NDJSON batch; ValueError names the offending line."""
    messages: list[Message] = []
    for lineno, raw in enumerate(body.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"line {lineno}: invalid JSON: {exc}") from None
        try:
            messages.append(parse_event(obj, num_procs))
        except ValueError as exc:
            raise ValueError(f"line {lineno}: {exc}") from None
    return messages


def encode_token(token: Token | None) -> dict[str, Any] | None:
    """A predictor token as JSON: request pair or VMSP reader vector."""
    if token is None:
        return None
    if isinstance(token, ReadVector):
        return {"readers": sorted(token.readers)}
    kind, node = token
    return {"kind": kind.value, "node": node}


def encode_message(message: Message) -> dict[str, Any]:
    return {"kind": message.kind.value, "node": message.node, "block": message.block}


# ----------------------------------------------------------------------
# one session
# ----------------------------------------------------------------------
class PredictorSession:
    """One client's live predictor plus its accounting."""

    def __init__(
        self,
        session_id: str,
        predictor_name: str,
        depth: int,
        num_procs: int,
        now_monotonic: float,
    ) -> None:
        cls = PREDICTOR_CLASSES.get(predictor_name)
        if cls is None:
            raise ValueError(
                f"unknown predictor {predictor_name!r} "
                f"(known: {', '.join(sorted(PREDICTOR_CLASSES))})"
            )
        if not isinstance(num_procs, int) or isinstance(num_procs, bool) or (
            num_procs < 1
        ):
            raise ValueError(f"num_procs must be a positive integer, got {num_procs!r}")
        if not isinstance(depth, int) or isinstance(depth, bool) or depth < 1:
            raise ValueError(f"history depth must be a positive integer, got {depth!r}")
        self.id = session_id
        self.predictor_name = predictor_name
        self.depth = depth
        self.num_procs = num_procs
        self.predictor: DirectoryPredictor = cls(depth=depth)
        self.events = 0
        self.created_at = time.time()  # wall clock: reported as a timestamp
        self.created_monotonic = now_monotonic
        self.last_active = now_monotonic

    def feed(self, message: Message) -> dict[str, Any]:
        """Apply one event; the NDJSON prediction line it earns.

        ``outcome`` scores this event against what the predictor
        expected; ``predicted`` is the token now predicted to arrive
        *next* for the event's block; the stats are running totals
        identical to the batch path's accounting.
        """
        self.events += 1
        outcome = self.predictor.observe(message)
        stats = self.predictor.stats
        return {
            "seq": self.events,
            "outcome": outcome.value,
            "predicted": encode_token(self.predictor.predicted_next(message.block)),
            "observed": stats.observed,
            "correct": stats.correct,
            "accuracy": stats.accuracy,
            "coverage": stats.coverage,
        }

    def status(self, now_monotonic: float) -> dict[str, Any]:
        stats = self.predictor.stats
        return {
            "session": self.id,
            "predictor": self.predictor_name,
            "depth": self.depth,
            "num_procs": self.num_procs,
            "events": self.events,
            "created_at": self.created_at,
            "age_s": round(now_monotonic - self.created_monotonic, 3),
            "idle_s": round(now_monotonic - self.last_active, 3),
            "stats": {
                "observed": stats.observed,
                "predicted": stats.predicted,
                "correct": stats.correct,
                "ignored": stats.ignored,
            },
            "accuracy": stats.accuracy,
            "coverage": stats.coverage,
            "correct_fraction": stats.correct_fraction,
        }

    def finalize(self, now_monotonic: float) -> dict[str, Any]:
        """End-of-stream summary, mirroring the batch evaluation exactly.

        Flushes still-open read runs (VMSP commits them to the tables,
        like the reference engine at end of trace) and computes the
        Table 3/4 numbers from the same formulas
        :func:`repro.eval.accuracy.run_predictors` uses — the ``run``
        object is byte-comparable to a batch ``accuracy`` sweep point's
        per-predictor entry.
        """
        flush = getattr(self.predictor, "flush", None)
        if flush is not None:
            flush()
        stats = self.predictor.stats
        average_pte = self.predictor.average_pattern_entries()
        profile = self.predictor.storage_profile(self.num_procs, self.depth)
        summary = self.status(now_monotonic)
        summary["run"] = {
            "accuracy": stats.accuracy,
            "coverage": stats.coverage,
            "correct_fraction": stats.correct_fraction,
            "average_pte": average_pte,
            "overhead_bytes": profile.bytes_per_block(average_pte),
        }
        return summary


# ----------------------------------------------------------------------
# the table
# ----------------------------------------------------------------------
class SessionTable:
    """Live sessions with TTL + LRU reaping, bounds, and backpressure.

    The dict doubles as the LRU order (oldest-touched first): every
    touch re-inserts the session at the end, and reaping walks the
    front.  A session is only ever evicted once it has sat idle past
    the TTL — an active session can never be reaped out from under its
    client, which the lifecycle property tests assert.
    """

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        ttl_s: float = DEFAULT_SESSION_TTL_S,
        max_events: int = DEFAULT_MAX_EVENTS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl_s <= 0:
            raise ValueError("session ttl must be > 0 seconds")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self.max_events = max_events
        self._clock = clock
        self._sessions: dict[str, PredictorSession] = {}
        self._counter = itertools.count(1)
        # Lifecycle counters: every opened session ends up active,
        # closed, or evicted — /statz readers (and the property tests)
        # check that they always balance.
        self.opened = 0
        self.closed = 0
        self.evicted = 0
        self.events_observed = 0
        self.rejected_full = 0
        self.rejected_bound = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def active(self) -> int:
        return len(self._sessions)

    def reap(self) -> list[PredictorSession]:
        """Evict sessions idle past the TTL; the evicted, oldest first."""
        now = self._clock()
        reaped: list[PredictorSession] = []
        # LRU order: once we meet a session inside its TTL, all later
        # ones are fresher still.
        for session_id, session in list(self._sessions.items()):
            if now - session.last_active <= self.ttl_s:
                break
            del self._sessions[session_id]
            self.evicted += 1
            reaped.append(session)
        return reaped

    def open(
        self, predictor: str, depth: int = 1, num_procs: int = 16
    ) -> PredictorSession:
        """Admit a new session, or :class:`SessionTableFull` (429).

        The retry hint is derived from the table itself: how long until
        the least-recently-used session ages out and frees a slot.
        """
        self.reap()
        if len(self._sessions) >= self.max_sessions:
            self.rejected_full += 1
            raise SessionTableFull(
                f"session table is full ({self.max_sessions} live sessions)",
                retry_after_s=self._slot_free_in(),
            )
        session = PredictorSession(
            session_id=f"sess-{next(self._counter):05d}",
            predictor_name=predictor,
            depth=depth,
            num_procs=num_procs,
            now_monotonic=self._clock(),
        )
        self._sessions[session.id] = session
        self.opened += 1
        return session

    def _slot_free_in(self) -> float:
        """Seconds until the LRU session expires (>= 1s floor)."""
        oldest = next(iter(self._sessions.values()))
        remaining = self.ttl_s - (self._clock() - oldest.last_active)
        return max(1.0, remaining)

    def get(self, session_id: str) -> PredictorSession:
        """The live session, touched (LRU + idle clock), or 404."""
        self.reap()
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(
                f"no such session: {session_id!r} (unknown, expired, or closed)"
            )
        del self._sessions[session_id]
        self._sessions[session_id] = session  # move to LRU tail
        session.last_active = self._clock()
        return session

    def peek(self, session_id: str) -> PredictorSession:
        """The live session *without* touching its idle clock."""
        self.reap()
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(
                f"no such session: {session_id!r} (unknown, expired, or closed)"
            )
        return session

    def feed(self, session_id: str, messages: Iterable[Message]) -> list[dict[str, Any]]:
        """Apply one event batch atomically; one prediction line each.

        The whole batch is bounds-checked up front (413 before any
        event is applied, so a rejected batch leaves the session
        untouched) and applied without yielding, so concurrent feeds
        and eviction can never interleave mid-batch.
        """
        session = self.get(session_id)
        batch = list(messages)
        if session.events + len(batch) > self.max_events:
            self.rejected_bound += 1
            raise SessionBoundExceeded(
                f"batch of {len(batch)} events would exceed the per-session "
                f"bound ({self.max_events}); close the session or open a new one"
            )
        lines = [session.feed(message) for message in batch]
        self.events_observed += len(batch)
        return lines

    def close(self, session_id: str) -> dict[str, Any]:
        """Finalize and remove; the batch-identical end-of-stream summary."""
        session = self.get(session_id)
        del self._sessions[session_id]
        self.closed += 1
        return session.finalize(self._clock())

    def sessions(self) -> list[PredictorSession]:
        return list(self._sessions.values())

    def stats(self) -> dict[str, Any]:
        """The ``sessions`` section of ``/statz``."""
        self.reap()
        return {
            "max_sessions": self.max_sessions,
            "ttl_s": self.ttl_s,
            "max_events": self.max_events,
            "active": len(self._sessions),
            "opened": self.opened,
            "closed": self.closed,
            "evicted": self.evicted,
            "events_observed": self.events_observed,
            "rejected_full": self.rejected_full,
            "rejected_bound": self.rejected_bound,
        }
