"""Recording pass: instrument a live run into a :class:`TimingTrace`.

The recorder snapshots the machine's cumulative accounting — clock,
per-node stall/sync cycles, the counter set, summed speculation stats —
at the start of the run and at every global barrier firing, then once
more when the run completes.  Consecutive snapshot differences become
the macro-step columns; because a replay only ever *sums* the columns,
the deltas telescope and the reconstruction is exact however the
barrier boundaries slice the run.

The hook is :class:`RecordingBarrierManager`, a
:class:`~repro.sim.sync.BarrierManager` that fires a callback at the
instant the last processor arrives (before the releases are
scheduled).  The compiled engine installs it unconditionally; with no
recorder attached the callback is a no-op, so cached replays and
bounded (``max_events``) live runs pay nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.sync import BarrierManager
from repro.sim.timetrace.trace import SPEC_FIELDS, TimingTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.common.types import NodeId
    from repro.sim.machine import Machine, RunResult


class RecordingBarrierManager(BarrierManager):
    """A barrier that announces each firing to an attached recorder."""

    def __init__(self, *args, on_fire: Callable[[], None]) -> None:
        super().__init__(*args)
        self._on_fire = on_fire

    def arrive(self, proc: "NodeId", resume: Callable, *args) -> None:
        if len(self._waiting) + 1 == self._num_procs:
            self._on_fire()
        super().arrive(proc, resume, *args)


class RunRecorder:
    """Accumulates snapshots during one run and builds the trace."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._snaps: list[tuple] = []
        self.take()  # baseline at cycle 0

    def take(self) -> None:
        m = self._machine
        spec = [0] * len(SPEC_FIELDS)
        if m._engines is not None:
            for engine in m._engines:
                stats = engine.stats
                for i, name in enumerate(SPEC_FIELDS):
                    spec[i] += getattr(stats, name)
        self._snaps.append(
            (
                m.events.now,
                [c.processor.stall_cycles for c in m._nodes],
                [c.processor.sync_cycles for c in m._nodes],
                m.stats.as_dict(),
                spec,
            )
        )

    def build(self, result: "RunResult", events: int) -> TimingTrace:
        """Finalize against the completed run's :class:`RunResult`.

        The final macro step is diffed against ``result`` itself (not a
        live snapshot): ``result.speculation`` includes the end-of-run
        unreferenced-copy feedback applied during collection, and
        ``result.cycles`` is the last processor's finish time, so the
        column sums land exactly on the collected totals.
        """
        m = self._machine
        final_counters = m.stats.as_dict()
        final_spec = [
            getattr(result.speculation, name) for name in SPEC_FIELDS
        ]
        self._snaps.append(
            (
                result.cycles,
                [c.processor.stall_cycles for c in m._nodes],
                [c.processor.sync_cycles for c in m._nodes],
                final_counters,
                final_spec,
            )
        )

        counter_names = sorted(final_counters)
        counter_code = {name: i for i, name in enumerate(counter_names)}
        steps = len(self._snaps) - 1
        num_nodes = m.config.num_nodes
        step_cycles = np.zeros(steps, dtype=np.int64)
        stall = np.zeros((steps, num_nodes), dtype=np.int64)
        sync = np.zeros((steps, num_nodes), dtype=np.int64)
        c_steps: list[int] = []
        c_codes: list[int] = []
        c_deltas: list[int] = []
        s_steps: list[int] = []
        s_codes: list[int] = []
        s_deltas: list[int] = []
        for step in range(steps):
            now0, stall0, sync0, counters0, spec0 = self._snaps[step]
            now1, stall1, sync1, counters1, spec1 = self._snaps[step + 1]
            step_cycles[step] = now1 - now0
            for node in range(num_nodes):
                stall[step, node] = stall1[node] - stall0[node]
                sync[step, node] = sync1[node] - sync0[node]
            for name, value in counters1.items():
                delta = value - counters0.get(name, 0)
                if delta:
                    c_steps.append(step)
                    c_codes.append(counter_code[name])
                    c_deltas.append(delta)
            for code in range(len(SPEC_FIELDS)):
                delta = spec1[code] - spec0[code]
                if delta:
                    s_steps.append(step)
                    s_codes.append(code)
                    s_deltas.append(delta)

        kind_names = sorted(m._request_blocks)
        block_kinds: list[int] = []
        block_ids: list[int] = []
        for code, kind in enumerate(kind_names):
            for block in sorted(m._request_blocks[kind]):
                block_kinds.append(code)
                block_ids.append(block)

        return TimingTrace(
            mode=m.mode.value,
            num_nodes=num_nodes,
            cycles=result.cycles,
            events=events,
            counter_names=counter_names,
            kind_names=kind_names,
            step_cycles=step_cycles,
            stall=stall,
            sync=sync,
            counter_steps=np.asarray(c_steps, dtype=np.int64),
            counter_codes=np.asarray(c_codes, dtype=np.int64),
            counter_deltas=np.asarray(c_deltas, dtype=np.int64),
            spec_steps=np.asarray(s_steps, dtype=np.int64),
            spec_codes=np.asarray(s_codes, dtype=np.int64),
            spec_deltas=np.asarray(s_deltas, dtype=np.int64),
            block_kinds=np.asarray(block_kinds, dtype=np.int64),
            block_ids=np.asarray(block_ids, dtype=np.int64),
        )
