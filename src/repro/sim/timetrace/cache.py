"""Cache-first execution of the compiled timing engine.

:func:`run_compiled` is what ``Machine(engine="compiled").run()``
delegates to.  The flow mirrors the accuracy pipeline's
``compile_app_trace``:

1. address the run — its workload, configuration, mode, and
   speculation depth — as a ``timetrace``-kind sweep point;
2. on a cache hit (an in-process memo first, then the on-disk trace
   store shared with compiled accuracy traces), decode the columnar
   payload and :meth:`~repro.sim.timetrace.trace.TimingTrace.replay`
   it — no events are dispatched;
3. on a miss, run the simulation live with a
   :class:`~repro.sim.timetrace.recorder.RunRecorder` attached, build
   the trace, and memoize/store it.

Runs that end in a deadlock (or any other error) never store a trace;
bounded runs (``max_events``) bypass this module entirely inside
:meth:`Machine.run`, so ``EventBudgetExhausted`` and deadlock
semantics are exactly the live engines'.  Corrupt or stale cache
entries decode as misses and fall back to a live run.

Workloads reached through the evaluation layer carry an explicit
``trace_key`` (the app parameters that deterministically produce
them); bare workloads — tests, library users — are fingerprinted by
content instead.  Either way the address also folds in every
:class:`~repro.common.config.SystemConfig` field, the machine mode,
and the speculation depth, so any parameter change misses.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping

from repro.apps.base import (
    Compute,
    LockAcquire,
    LockRelease,
    MemRead,
    MemWrite,
    Workload,
)
from repro.common.canonical import canonical_hash
from repro.harness.spec import SweepPoint
from repro.harness.store import MISS
from repro.sim.timetrace.trace import TimingTrace
from repro.trace.cache import (
    TIMETRACE_KIND,
    note_trace_event,
    timetrace_store,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine, RunResult

#: In-process memo of decoded traces (an L1 over the disk store, and
#: the whole cache when no directory is configured).  Bounded so a
#: long-lived service cannot grow it without limit.
_MEMO_LIMIT = 128
_memo: OrderedDict[str, TimingTrace] = OrderedDict()


def reset_timetrace_memo() -> None:
    """Drop every in-process memoized trace (tests, cold benchmarks)."""
    _memo.clear()


def _memoize(key: str, trace: TimingTrace) -> None:
    _memo[key] = trace
    _memo.move_to_end(key)
    while len(_memo) > _MEMO_LIMIT:
        _memo.popitem(last=False)


# ----------------------------------------------------------------------
# addressing
# ----------------------------------------------------------------------
def workload_fingerprint(workload: Workload) -> str:
    """Content hash of a workload's program view.

    Covers everything the timing simulator consumes: the per-phase,
    per-processor operation lists (with racy flags) and the lock set.
    The block view is derived from the same builder calls, so it needs
    no separate hashing.
    """
    phases = []
    for phase in workload.phases:
        ops = {}
        for proc, op_list in phase.ops.items():
            encoded = []
            for op in op_list:
                if type(op) is Compute:
                    encoded.append(["c", op.cycles])
                elif type(op) is MemRead:
                    encoded.append(["r", op.block])
                elif type(op) is MemWrite:
                    encoded.append(["w", op.block])
                elif type(op) is LockAcquire:
                    encoded.append(["la", op.lock])
                elif type(op) is LockRelease:
                    encoded.append(["lr", op.lock])
                else:  # future op kinds must extend the fingerprint
                    raise TypeError(f"unknown op {type(op).__name__}")
            ops[str(proc)] = encoded
        phases.append(
            {
                "name": phase.name,
                "racy_reads": phase.racy_reads,
                "racy_acks": phase.racy_acks,
                "ops": ops,
            }
        )
    return canonical_hash(
        {
            "name": workload.name,
            "num_procs": workload.num_procs,
            "phases": phases,
            "locks": sorted(workload.locks),
        }
    )


def timetrace_point(machine: "Machine") -> SweepPoint:
    """The cache address of one machine run's timing trace."""
    params: dict[str, Any] = dict(
        machine.trace_key
        if machine.trace_key is not None
        else {"workload": workload_fingerprint(machine.workload)}
    )
    params["mode"] = machine.mode.value
    params["spec_depth"] = machine.spec_depth
    params["config"] = dataclasses.asdict(machine.config)
    return SweepPoint.make(TIMETRACE_KIND, params)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _lookup(point: SweepPoint, num_nodes: int) -> TimingTrace | None:
    trace = _memo.get(point.key)
    if trace is not None and trace.num_nodes == num_nodes:
        _memo.move_to_end(point.key)
        return trace
    store = timetrace_store()
    if store is None:
        return None
    entry = store.load_entry(point)
    if entry is MISS:
        return None
    try:
        trace = TimingTrace.from_payload(entry.result)
    except (KeyError, TypeError, ValueError):
        return None  # unreadable payload degrades to a miss
    if trace.num_nodes != num_nodes:
        return None
    _memoize(point.key, trace)
    return trace


def run_compiled(machine: "Machine") -> "RunResult":
    """Replay the machine's run from cache, or record it live."""
    point = timetrace_point(machine)
    trace = _lookup(point, machine.config.num_nodes)
    if trace is not None:
        note_trace_event(hit=True)
        return trace.replay()

    from repro.sim.timetrace.recorder import RunRecorder

    note_trace_event(hit=False)
    started = time.perf_counter()
    recorder = RunRecorder(machine)
    machine._recorder = recorder
    try:
        result = machine._run_live(None)
    finally:
        machine._recorder = None
    trace = recorder.build(result, events=machine.events_processed)
    _memoize(point.key, trace)
    store = timetrace_store()
    if store is not None:
        try:
            store.store(
                point,
                trace.as_payload(),
                elapsed_s=time.perf_counter() - started,
                meta={
                    "content_hash": trace.content_hash(),
                    "steps": len(trace),
                    "events": trace.events,
                },
            )
        except OSError:
            pass  # a full/readonly cache degrades to re-recording
    return result


def describe_key(params: Mapping[str, Any]) -> SweepPoint:
    """Build a ``timetrace`` point from raw params (tests, tooling)."""
    return SweepPoint.make(TIMETRACE_KIND, dict(params))
