"""Compiled timing engine: record a run once, replay it in batch.

See :mod:`repro.sim.timetrace.trace` for the macro-step trace format,
:mod:`repro.sim.timetrace.recorder` for the instrumented recording
pass, and :mod:`repro.sim.timetrace.cache` for the content-addressed
cache-first entry point ``Machine(engine="compiled")`` uses.
"""

from repro.sim.timetrace.cache import (
    reset_timetrace_memo,
    run_compiled,
    timetrace_point,
    workload_fingerprint,
)
from repro.sim.timetrace.recorder import RecordingBarrierManager, RunRecorder
from repro.sim.timetrace.trace import SPEC_FIELDS, TIMETRACE_SCHEMA, TimingTrace

__all__ = [
    "RecordingBarrierManager",
    "RunRecorder",
    "SPEC_FIELDS",
    "TIMETRACE_SCHEMA",
    "TimingTrace",
    "reset_timetrace_memo",
    "run_compiled",
    "timetrace_point",
    "workload_fingerprint",
]
