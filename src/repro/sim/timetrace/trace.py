"""The macro-step timing trace: columnar record of one Machine run.

A timing run is deterministic given the workload, configuration, mode,
and speculation depth, so the whole run can be recorded once and
replayed without dispatching a single event.  The unit of recording is
the **macro step** — the stretch of simulated time between consecutive
global barrier firings (plus one final step from the last barrier to
run completion).  Per step the trace stores, as flat numpy columns:

* the cycle delta the step advanced the clock by,
* per-node stall and sync cycle increments,
* sparse ``(step, counter, delta)`` triples for every named counter,
* sparse ``(step, field, delta)`` triples for the speculation stats,

plus the distinct ``(kind, block)`` pairs the home directories
serviced (the ``req_<kind>_blocks`` counters are set cardinalities,
not additive, so the sets themselves are what must be recorded).

:meth:`TimingTrace.replay` batch-applies the columns — numpy
reductions, no event loop — and reconstructs a
:class:`~repro.sim.machine.RunResult` bit-identical to the run that
was recorded.  The payload codec (:meth:`as_payload` /
:meth:`from_payload`) is plain JSON lists so traces travel through the
content-addressed trace cache exactly like compiled accuracy traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.canonical import canonical_hash
from repro.sim.machine import MachineMode, RunResult
from repro.speculation.engine import SpeculationStats

#: Bumped when the payload layout changes; keys every cached trace so
#: stale payloads miss instead of mis-decoding.
TIMETRACE_SCHEMA = 1

#: SpeculationStats field order used by the ``spec_*`` columns.
SPEC_FIELDS: tuple[str, ...] = tuple(SpeculationStats.__dataclass_fields__)

_COLUMNS = (
    "step_cycles",
    "stall",
    "sync",
    "counter_steps",
    "counter_codes",
    "counter_deltas",
    "spec_steps",
    "spec_codes",
    "spec_deltas",
    "block_kinds",
    "block_ids",
)


@dataclass(slots=True)
class TimingTrace:
    """One recorded run, ready to replay or to serialize."""

    mode: str
    num_nodes: int
    cycles: int
    #: Events the recorded run processed — documentation/meta only; a
    #: replay never dispatches them.
    events: int
    counter_names: list[str]
    kind_names: list[str]
    step_cycles: np.ndarray
    stall: np.ndarray  # (steps, num_nodes)
    sync: np.ndarray  # (steps, num_nodes)
    counter_steps: np.ndarray
    counter_codes: np.ndarray
    counter_deltas: np.ndarray
    spec_steps: np.ndarray
    spec_codes: np.ndarray
    spec_deltas: np.ndarray
    block_kinds: np.ndarray
    block_ids: np.ndarray

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay(self) -> RunResult:
        """Reconstruct the recorded run's :class:`RunResult` in batch."""
        cycles = int(self.cycles)
        stall = int(self.stall.sum())
        sync = int(self.sync.sum())
        total = cycles * self.num_nodes

        counters: dict[str, int] = {}
        if len(self.counter_names):
            sums = np.zeros(len(self.counter_names), dtype=np.int64)
            np.add.at(sums, self.counter_codes, self.counter_deltas)
            for code, name in enumerate(self.counter_names):
                value = int(sums[code])
                if value:
                    counters[name] = value
        if len(self.kind_names):
            per_kind = np.bincount(
                self.block_kinds, minlength=len(self.kind_names)
            )
            for code, kind in enumerate(self.kind_names):
                counters[f"req_{kind}_blocks"] = int(per_kind[code])

        spec = SpeculationStats()
        if len(self.spec_codes):
            spec_sums = np.zeros(len(SPEC_FIELDS), dtype=np.int64)
            np.add.at(spec_sums, self.spec_codes, self.spec_deltas)
            for code, field_name in enumerate(SPEC_FIELDS):
                setattr(spec, field_name, int(spec_sums[code]))

        reads = counters.get("req_read", 0)
        writes = counters.get("req_write", 0) + counters.get("req_upgrade", 0)
        return RunResult(
            mode=MachineMode(self.mode),
            cycles=cycles,
            compute_cycles=total - stall - sync,
            stall_cycles=stall,
            sync_cycles=sync,
            read_requests=reads,
            write_requests=writes,
            counters=counters,
            speculation=spec,
        )

    # ------------------------------------------------------------------
    # codec
    # ------------------------------------------------------------------
    def as_payload(self) -> dict:
        """JSON-representable columnar form (cache entry body)."""
        payload: dict = {
            "schema": TIMETRACE_SCHEMA,
            "mode": self.mode,
            "num_nodes": self.num_nodes,
            "cycles": self.cycles,
            "events": self.events,
            "counter_names": list(self.counter_names),
            "kind_names": list(self.kind_names),
        }
        for name in _COLUMNS:
            payload[name] = getattr(self, name).tolist()
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "TimingTrace":
        """Decode a cached payload; raises on any malformed entry.

        ``KeyError`` / ``TypeError`` / ``ValueError`` all mean "treat
        as a cache miss and re-record" to callers.
        """
        if not isinstance(payload, dict):
            raise TypeError("timing-trace payload must be a JSON object")
        if payload.get("schema") != TIMETRACE_SCHEMA:
            raise ValueError(
                f"timing-trace schema {payload.get('schema')!r} != "
                f"{TIMETRACE_SCHEMA}"
            )
        MachineMode(payload["mode"])  # unknown mode -> ValueError
        columns = {
            name: np.asarray(payload[name], dtype=np.int64)
            for name in _COLUMNS
        }
        steps = len(columns["step_cycles"])
        num_nodes = int(payload["num_nodes"])
        for name in ("stall", "sync"):
            if columns[name].shape != (steps, num_nodes):
                # reshape(0, n) keeps the zero-step corner decodable
                if steps == 0 and columns[name].size == 0:
                    columns[name] = columns[name].reshape(0, num_nodes)
                else:
                    raise ValueError(f"column {name!r} shape mismatch")
        trace = cls(
            mode=str(payload["mode"]),
            num_nodes=num_nodes,
            cycles=int(payload["cycles"]),
            events=int(payload["events"]),
            counter_names=[str(n) for n in payload["counter_names"]],
            kind_names=[str(n) for n in payload["kind_names"]],
            **columns,
        )
        if len(trace.counter_codes) and len(trace.counter_names) == 0:
            raise ValueError("counter codes without a name table")
        if np.any(trace.spec_codes >= len(SPEC_FIELDS)) or np.any(
            trace.spec_codes < 0
        ):
            raise ValueError("speculation field code out of range")
        if len(trace.counter_codes) and (
            np.any(trace.counter_codes >= len(trace.counter_names))
            or np.any(trace.counter_codes < 0)
        ):
            raise ValueError("counter code out of range")
        if len(trace.block_kinds) and (
            np.any(trace.block_kinds >= len(trace.kind_names))
            or np.any(trace.block_kinds < 0)
        ):
            raise ValueError("request-kind code out of range")
        return trace

    def content_hash(self) -> str:
        return canonical_hash(self.as_payload())

    def __len__(self) -> int:
        """Macro steps recorded."""
        return len(self.step_cycles)
