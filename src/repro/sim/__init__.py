"""Event-driven timing simulator of the speculative coherent DSM."""

from repro.sim.address import AddressSpace, home_of
from repro.sim.caches import CacheState, ProcessorCache, RemoteCache
from repro.sim.events import EventQueue
from repro.sim.home import HomeDirectory, MemRequest
from repro.sim.machine import Machine, MachineMode, NodeContext, RunResult
from repro.sim.processor import Processor
from repro.sim.sync import BarrierManager, LockManager

__all__ = [
    "AddressSpace",
    "BarrierManager",
    "CacheState",
    "EventQueue",
    "HomeDirectory",
    "LockManager",
    "Machine",
    "MachineMode",
    "MemRequest",
    "NodeContext",
    "Processor",
    "ProcessorCache",
    "RemoteCache",
    "RunResult",
    "home_of",
]
