"""The simulated DSM machine: Base-DSM, FR-DSM, and SWI-DSM variants.

A :class:`Machine` assembles the full system — processors, caches,
homes, interconnect, synchronization, and (for the speculative
variants) one speculation engine per home — runs a workload to
completion, and reports the execution-time breakdown and request /
speculation counters the paper's Figure 9 and Table 5 are built from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.base import Workload
from repro.common.config import SystemConfig
from repro.common.stats import StatSet
from repro.common.types import BlockId, MessageKind, NodeId
from repro.network.interconnect import Interconnect
from repro.sim.address import home_of
from repro.sim.caches import ProcessorCache, RemoteCache
from repro.sim.fastevents import make_event_queue
from repro.sim.home import FastHomeDirectory, HomeDirectory, MemRequest
from repro.sim.processor import FastProcessor, Processor
from repro.sim.sync import BarrierManager, LockManager
from repro.speculation.engine import SpeculationEngine, SpeculationStats


class EventBudgetExhausted(RuntimeError):
    """A bounded :meth:`Machine.run` ran out of its event budget.

    Distinct from the deadlock diagnosis: events were still pending
    when ``max_events`` ran out, so the simulation is merely unfinished
    — re-run with a larger budget.
    """


class MachineMode(enum.Enum):
    """The paper's three system variants plus the future-work extension.

    MIG-DSM adds speculative *write* execution to SWI-DSM: reads whose
    predicted successor is the same processor's upgrade are granted
    exclusively (Section 4.1 identifies migratory sharing as
    trigger-ready; the paper leaves its execution to future work).
    """

    BASE = "Base-DSM"
    FR = "FR-DSM"
    SWI = "SWI-DSM"
    MIG = "MIG-DSM"


@dataclass(slots=True)
class NodeContext:
    """Per-node hardware: processor plus its caching state."""

    cache: ProcessorCache
    remote_cache: RemoteCache
    processor: Processor


@dataclass(slots=True)
class RunResult:
    """Outcome of one simulated run."""

    mode: MachineMode
    cycles: int
    compute_cycles: int
    stall_cycles: int
    sync_cycles: int
    read_requests: int
    write_requests: int
    counters: dict[str, int]
    speculation: SpeculationStats

    @property
    def busy_cycles(self) -> int:
        """Total per-processor time (all buckets)."""
        return self.compute_cycles + self.stall_cycles + self.sync_cycles

    @property
    def request_fraction(self) -> float:
        """Share of processor time spent waiting on memory requests."""
        if self.busy_cycles == 0:
            return 0.0
        return self.stall_cycles / self.busy_cycles


class Machine:
    """A 16-node (configurable) CC-NUMA with optional speculation."""

    def __init__(
        self,
        workload: Workload,
        config: SystemConfig | None = None,
        mode: MachineMode = MachineMode.BASE,
        spec_depth: int = 1,
        engine: str = "fast",
        trace_key: dict | None = None,
    ) -> None:
        """``engine`` selects the timing engine (see docs/performance.md):

        * ``"fast"`` (default) — the calendar event queue plus the
          low-allocation component subclasses;
        * ``"compiled"`` — the fast engine plus timing-trace record /
          replay: a cached macro-step trace replays the run in batch
          (``repro.sim.timetrace``), a miss records one live run;
        * ``"reference"`` — the original heapq queue and closure-based
          components, kept as the trusted baseline.

        All three produce bit-identical :class:`RunResult`\\ s (the
        golden equivalence suite gates this), so the engine choice
        never needs to appear in experiment cache keys.

        ``trace_key`` (compiled engine only) names the parameters that
        deterministically produced ``workload`` — e.g. ``{"app": ...,
        "num_procs": ..., "iterations": ..., "seed": ...}`` — and
        becomes the trace-cache address together with the mode, the
        speculation depth, and every config field.  Without it the
        workload content is fingerprinted instead.
        """
        # make_event_queue validates `engine` (raising before any
        # component is built), so no separate check is needed here.
        self.config = config or SystemConfig()
        if workload.num_procs != self.config.num_nodes:
            raise ValueError(
                f"workload built for {workload.num_procs} processors but "
                f"machine has {self.config.num_nodes} nodes"
            )
        self.workload = workload
        self.mode = mode
        self.engine = engine
        self.spec_depth = spec_depth
        self.trace_key = dict(trace_key) if trace_key is not None else None
        self._fast = engine in ("fast", "compiled")
        self._recorder = None
        #: Events the last live run processed (set by :meth:`_run_live`,
        #: recorded into timing traces).
        self.events_processed = 0
        self._swi_hints = mode in (MachineMode.SWI, MachineMode.MIG)
        home_cls = FastHomeDirectory if self._fast else HomeDirectory
        proc_cls = FastProcessor if self._fast else Processor
        self.events = make_event_queue(engine)
        self.net = Interconnect(self.config, self.events)
        if engine == "compiled":
            # Imported lazily to keep repro.sim.machine importable from
            # the timetrace modules themselves.
            from repro.sim.timetrace.recorder import RecordingBarrierManager

            self.barrier = RecordingBarrierManager(
                self.config.num_nodes,
                self.config,
                self.events,
                on_fire=self._barrier_fired,
            )
        else:
            self.barrier = BarrierManager(
                self.config.num_nodes, self.config, self.events
            )
        self.locks = LockManager(self.config, self.events)
        self.stats = StatSet()
        self._request_blocks: dict[str, set[BlockId]] = {}
        #: Per-kind (stat key, distinct-block set) pairs so the
        #: per-request accounting neither formats a key string nor
        #: re-resolves the block set on every request.
        self._req_count_cache: dict[str, tuple[str, set[BlockId]]] = {}
        self._last_write: dict[NodeId, BlockId] = {}
        # Engines and nodes are built before homes so the fast home
        # directories can cache direct references to both.
        self._engines: list[SpeculationEngine] | None = None
        if mode is not MachineMode.BASE:
            self._engines = [
                SpeculationEngine(
                    n,
                    swi_enabled=mode in (MachineMode.SWI, MachineMode.MIG),
                    depth=spec_depth,
                    migratory_enabled=(mode is MachineMode.MIG),
                    fast_path=self._fast,
                )
                for n in range(self.config.num_nodes)
            ]
        self._nodes = [
            NodeContext(
                cache=ProcessorCache(),
                remote_cache=RemoteCache(),
                processor=proc_cls(n, self, workload.phases),
            )
            for n in range(self.config.num_nodes)
        ]
        self._homes = [home_cls(n, self) for n in range(self.config.num_nodes)]
        #: Prebound per-home request handlers for the fast processors
        #: (one bound method for the life of the run, not one per
        #: memory request).
        self._home_request = [h.request for h in self._homes]

    # ------------------------------------------------------------------
    # component access (used by homes and processors)
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> NodeContext:
        return self._nodes[node_id]

    def home(self, node_id: NodeId) -> HomeDirectory:
        return self._homes[node_id]

    def home_of(self, block: BlockId) -> NodeId:
        return home_of(block, self.config.num_nodes)

    def engine_for(self, node_id: NodeId) -> SpeculationEngine | None:
        if self._engines is None:
            return None
        return self._engines[node_id]

    def count_request(self, kind: MessageKind | None, block: BlockId) -> None:
        """Count one home-serviced request, per kind and per block touched.

        Distinct-block counts separate a few hot blocks ping-ponging from
        genuinely wide sharing; they surface in ``RunResult.counters`` as
        ``req_<kind>_blocks`` next to the per-kind request totals.
        """
        if kind is None:
            return
        self.stats.bump(f"req_{kind.value}")
        self._request_blocks.setdefault(kind.value, set()).add(block)

    def count_request_fast(self, kind: MessageKind | None, block: BlockId) -> None:
        """The fast engine's :meth:`count_request`: same counters, no
        per-request key formatting or block-set re-resolution."""
        if kind is None:
            return
        value = kind.value
        cached = self._req_count_cache.get(value)
        if cached is None:
            cached = self._req_count_cache[value] = (
                f"req_{value}",
                self._request_blocks.setdefault(value, set()),
            )
        self.stats.bump(cached[0])
        cached[1].add(block)

    def note_store_hit(self, pid: NodeId, block: BlockId) -> None:
        """A store hit an exclusively held copy (migratory accounting).

        In MIG-DSM a hit on a migratory-granted copy confirms that the
        speculatively executed upgrade was real; it also stands in for
        the upgrade in the early-write-invalidate chain, so SWI keeps
        recalling the writer's previous blocks.
        """
        if self.mode is not MachineMode.MIG:
            return
        engine = self.engine_for(self.home_of(block))
        if engine is None or engine.migratory_pending(block) != pid:
            return
        engine.migratory_written(block, pid)
        self.note_write_issued(pid, block)

    def note_write_issued(self, pid: NodeId, block: BlockId) -> None:
        """Requester-side early-write-invalidate tracking (Section 4.1).

        The node's DSM hardware sees every outgoing write request of its
        processor.  When the processor writes a *different* block than
        last time, SWI predicts the previous block is dead and sends a
        done-writing hint to that block's home, which may recall the
        writable copy early.
        """
        previous = self._last_write.get(pid)
        self._last_write[pid] = block
        if not self._swi_hints:
            return
        if previous is None or previous == block:
            return
        home = self.home_of(previous)
        hint = MemRequest(kind="swi-recall", block=previous, requester=pid)
        if self._fast:
            self.net.send_call(pid, home, self._home_request[home], hint)
        else:
            self.net.send(pid, home, lambda: self._homes[home].request(hint))

    def _barrier_fired(self) -> None:
        """Compiled-engine hook: one macro step ends at each barrier."""
        if self._recorder is not None:
            self._recorder.take()

    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> RunResult:
        """Execute the workload to completion and collect results.

        A bounded run that exhausts ``max_events`` with events still
        pending raises :class:`EventBudgetExhausted`; an empty queue
        with unfinished processors is a genuine deadlock and raises a
        plain ``RuntimeError``.

        The compiled engine replays a cached timing trace when one
        exists, or records this run for the next caller; bounded runs
        always execute live so the budget-exhaustion and deadlock
        semantics above hold unchanged (a replay could not know where
        a smaller budget would have stopped).
        """
        if self.engine == "compiled" and max_events is None:
            from repro.sim.timetrace.cache import run_compiled

            return run_compiled(self)
        return self._run_live(max_events)

    def _run_live(self, max_events: int | None) -> RunResult:
        for context in self._nodes:
            context.processor.start()
        processed = self.events.run(max_events=max_events)
        self.events_processed = processed
        unfinished = [
            c.processor.pid for c in self._nodes if c.processor.finish_time is None
        ]
        if unfinished:
            if len(self.events):
                # run() only stops with events pending when the budget
                # ran out — the simulation is unfinished, not stuck.
                raise EventBudgetExhausted(
                    f"event budget exhausted after {processed} events: "
                    f"processors {unfinished} still running, "
                    f"{len(self.events)} events pending "
                    f"(re-run with a larger max_events)"
                )
            raise RuntimeError(
                f"simulation ended with stuck processors: {unfinished} "
                f"(deadlock: the event queue drained with work unfinished)"
            )
        return self._collect()

    def _collect(self) -> RunResult:
        cycles = max(c.processor.finish_time or 0 for c in self._nodes)
        stall = sum(c.processor.stall_cycles for c in self._nodes)
        sync = sum(c.processor.sync_cycles for c in self._nodes)
        total = cycles * self.config.num_nodes
        speculation = SpeculationStats()
        if self._engines is not None:
            # Copies never referenced by the end of the run count as
            # misspeculations (their reference bits were never cleared).
            for context in self._nodes:
                for block, _entry in context.remote_cache.unreferenced():
                    engine = self.engine_for(self.home_of(block))
                    if engine is not None:
                        engine.spec_feedback(block, context.processor.pid, used=False)
            for engine in self._engines:
                speculation.merge(engine.stats)
        reads = self.stats["req_read"]
        writes = self.stats["req_write"] + self.stats["req_upgrade"]
        counters = self.stats.as_dict()
        for kind, blocks in self._request_blocks.items():
            counters[f"req_{kind}_blocks"] = len(blocks)
        return RunResult(
            mode=self.mode,
            cycles=cycles,
            compute_cycles=total - stall - sync,
            stall_cycles=stall,
            sync_cycles=sync,
            read_requests=reads,
            write_requests=writes,
            counters=counters,
            speculation=speculation,
        )
