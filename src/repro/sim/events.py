"""Discrete-event queue for the timing simulator."""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """A time-ordered queue of zero-argument callbacks.

    Ties are broken by insertion order, which keeps the simulation
    deterministic for a fixed workload and seed.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))
        self._sequence += 1

    def at(self, time: int, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (time, self._sequence, fn))
        self._sequence += 1

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed."""
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
        return processed

    def __len__(self) -> int:
        return len(self._heap)
