"""Discrete-event queue for the timing simulator."""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """A time-ordered queue of zero-argument callbacks.

    Ties are broken by insertion order, which keeps the simulation
    deterministic for a fixed workload and seed.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))
        self._sequence += 1

    def at(self, time: int, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (time, self._sequence, fn))
        self._sequence += 1

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        The budget is checked *before* each pop: ``run(max_events=0)``
        returns 0 with the queue — and ``now`` — untouched, so a caller
        can use a zero budget as a pure no-op probe.
        """
        if max_events is not None and max_events < 0:
            raise ValueError("max_events must be >= 0")
        processed = 0
        while self._heap and (max_events is None or processed < max_events):
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
        return processed

    def peek_time(self) -> int | None:
        """Scheduled time of the next event, or None when the queue is
        empty — lets the timing simulator look ahead (e.g. to bound a
        bounded-drain ``run``) without disturbing the heap."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)
