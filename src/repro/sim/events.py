"""Discrete-event queue for the timing simulator (reference engine).

This heapq implementation is the trusted semantic baseline the
calendar-queue engine (:mod:`repro.sim.fastevents`) is gated against:
``Machine(engine="reference")`` runs on it unchanged, and the golden
equivalence suite asserts bit-identical results between the two.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """A time-ordered queue of zero-argument callbacks.

    Ties are broken by insertion order, which keeps the simulation
    deterministic for a fixed workload and seed.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn))
        self._sequence += 1

    def at(self, time: int, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (time, self._sequence, fn))
        self._sequence += 1

    # ------------------------------------------------------------------
    # (handler, args) scheduling — the reference implementation
    # ------------------------------------------------------------------
    def call(self, delay: int, handler: Callable, *args) -> None:
        """Schedule ``handler(*args)`` after ``delay`` cycles.

        This is the reference realization of the fast engine's
        low-allocation event representation: with arguments it wraps
        the call in a fresh closure (the reference engine's historical
        per-event cost profile); without arguments it degrades to a
        plain :meth:`schedule`, exactly as the pre-switch call sites
        behaved.  Execution order is identical either way.
        """
        if args:
            self.schedule(delay, lambda: handler(*args))
        else:
            self.schedule(delay, handler)

    def call_at(self, time: int, handler: Callable, *args) -> None:
        """Schedule ``handler(*args)`` at absolute cycle ``time``."""
        if args:
            self.at(time, lambda: handler(*args))
        else:
            self.at(time, handler)

    def insert(self, time: int, handler: Callable, args: tuple) -> None:
        """Packed-arguments insert (see the calendar queue's variant)."""
        if args:
            self.at(time, lambda: handler(*args))
        else:
            self.at(time, handler)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        The budget is checked *before* each pop: ``run(max_events=0)``
        returns 0 with the queue — and ``now`` — untouched, so a caller
        can use a zero budget as a pure no-op probe.
        """
        if max_events is not None and max_events < 0:
            raise ValueError("max_events must be >= 0")
        processed = 0
        while self._heap and (max_events is None or processed < max_events):
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
        return processed

    def run_cycle(self) -> int:
        """Process every event of the next pending cycle.

        The same-cycle batch-drain primitive: drains the earliest
        scheduled cycle completely — including events scheduled *onto*
        that cycle while it drains — and returns the number processed
        (0 when the queue is empty).
        """
        if not self._heap:
            return 0
        cycle = self._heap[0][0]
        processed = 0
        while self._heap and self._heap[0][0] == cycle:
            time, _seq, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            processed += 1
        return processed

    def peek_time(self) -> int | None:
        """Scheduled time of the next event, or None when the queue is
        empty — lets the timing simulator look ahead (e.g. to bound a
        bounded-drain ``run``) without disturbing the heap."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)
