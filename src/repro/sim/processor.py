"""Processor model: executes an application program phase by phase.

Each processor runs its per-phase operation list in order, blocking on
memory requests (one outstanding request at a time), and meets the
other processors at a barrier between phases.  Time is attributed to
three buckets:

* ``stall_cycles``  — waiting on memory requests (the paper's "remote
  request waiting time", including speculative remote-cache fills);
* ``sync_cycles``   — barrier and lock waiting (the paper folds this
  into computation time in Figure 9);
* the remainder is computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.base import Compute, LockAcquire, LockRelease, MemRead, MemWrite, Phase
from repro.common.types import BlockId, NodeId
from repro.sim.caches import CacheState
from repro.sim.home import MemRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class Processor:
    """One simulated processor executing its program."""

    def __init__(self, pid: NodeId, machine: "Machine", phases: list[Phase]) -> None:
        self.pid = pid
        self._m = machine
        self._phases = phases
        self._phase_index = -1
        self._ops: list = []
        self._op_index = 0
        self._outstanding: BlockId | None = None
        self.stall_cycles = 0
        self.sync_cycles = 0
        self.finish_time: int | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._next_phase()

    def waiting_for(self, block: BlockId) -> bool:
        """True while a request for ``block`` is in flight."""
        return self._outstanding == block

    # ------------------------------------------------------------------
    def _next_phase(self) -> None:
        self._phase_index += 1
        if self._phase_index >= len(self._phases):
            self.finish_time = self._m.events.now
            return
        self._ops = self._phases[self._phase_index].ops_for(self.pid)
        self._op_index = 0
        self._step()

    def _step(self) -> None:
        if self._op_index >= len(self._ops):
            self._barrier()
            return
        op = self._ops[self._op_index]
        self._op_index += 1
        if isinstance(op, Compute):
            self._m.events.schedule(op.cycles, self._step)
        elif isinstance(op, MemRead):
            self._load(op.block)
        elif isinstance(op, MemWrite):
            self._store(op.block)
        elif isinstance(op, LockAcquire):
            self._acquire(op.lock)
        elif isinstance(op, LockRelease):
            self._m.locks.release(op.lock, self.pid)
            self._m.events.schedule(0, self._step)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def _load(self, block: BlockId) -> None:
        node = self._m.node(self.pid)
        if node.cache.can_read(block):
            self._m.stats.bump("cache_hits")
            self._m.events.schedule(self._m.config.cache_hit_cycles, self._step)
            return
        spec = node.remote_cache.consume(block)
        if spec is not None:
            # Speculative hit: a pushed read-only copy is waiting in the
            # remote cache; referencing it verifies the speculation.
            self._m.stats.bump(f"spec_hits_{spec.origin}")
            engine = self._m.engine_for(self._m.home_of(block))
            if engine is not None:
                engine.spec_feedback(block, self.pid, used=True)
            node.cache.set_state(block, CacheState.SHARED)
            started = self._m.events.now

            def filled() -> None:
                self.stall_cycles += self._m.events.now - started
                self._step()

            self._m.events.schedule(self._m.config.local_access_cycles, filled)
            return
        self._issue("read", block)

    def _store(self, block: BlockId) -> None:
        node = self._m.node(self.pid)
        if node.cache.can_write(block):
            self._m.stats.bump("cache_hits")
            self._m.note_store_hit(self.pid, block)
            self._m.events.schedule(self._m.config.cache_hit_cycles, self._step)
            return
        self._issue("write", block)

    def _issue(self, kind: str, block: BlockId) -> None:
        started = self._m.events.now
        self._outstanding = block
        if kind == "write":
            self._m.note_write_issued(self.pid, block)

        def done() -> None:
            self._outstanding = None
            # A granted copy supersedes any stale speculative copy.
            stale = self._m.node(self.pid).remote_cache.evict(block)
            if stale is not None and not stale.referenced:
                engine = self._m.engine_for(self._m.home_of(block))
                if engine is not None:
                    engine.spec_feedback(block, self.pid, used=False, raced=True)
            self.stall_cycles += self._m.events.now - started
            self._step()

        request = MemRequest(kind=kind, block=block, requester=self.pid, on_done=done)
        home = self._m.home_of(block)
        self._m.net.send(
            self.pid, home, lambda: self._m.home(home).request(request)
        )

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _barrier(self) -> None:
        started = self._m.events.now

        def released() -> None:
            self.sync_cycles += self._m.events.now - started
            self._next_phase()

        self._m.barrier.arrive(self.pid, released)

    def _acquire(self, lock: int) -> None:
        started = self._m.events.now

        def granted() -> None:
            self.sync_cycles += self._m.events.now - started
            self._step()

        self._m.locks.acquire(lock, self.pid, granted)
