"""Processor model: executes an application program phase by phase.

Each processor runs its per-phase operation list in order, blocking on
memory requests (one outstanding request at a time), and meets the
other processors at a barrier between phases.  Time is attributed to
three buckets:

* ``stall_cycles``  — waiting on memory requests (the paper's "remote
  request waiting time", including speculative remote-cache fills);
* ``sync_cycles``   — barrier and lock waiting (the paper folds this
  into computation time in Figure 9);
* the remainder is computation.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING

from repro.apps.base import Compute, LockAcquire, LockRelease, MemRead, MemWrite, Phase
from repro.common.config import HOME_SHIFT
from repro.common.types import BlockId, NodeId
from repro.sim.caches import CacheState
from repro.sim.home import MemRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine, NodeContext


class Processor:
    """One simulated processor executing its program."""

    def __init__(self, pid: NodeId, machine: "Machine", phases: list[Phase]) -> None:
        self.pid = pid
        self._m = machine
        self._phases = phases
        self._phase_index = -1
        self._ops: list = []
        self._op_index = 0
        self._outstanding: BlockId | None = None
        self.stall_cycles = 0
        self.sync_cycles = 0
        self.finish_time: int | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._next_phase()

    def waiting_for(self, block: BlockId) -> bool:
        """True while a request for ``block`` is in flight."""
        return self._outstanding == block

    # ------------------------------------------------------------------
    def _next_phase(self) -> None:
        self._phase_index += 1
        if self._phase_index >= len(self._phases):
            self.finish_time = self._m.events.now
            return
        self._ops = self._phases[self._phase_index].ops_for(self.pid)
        self._op_index = 0
        self._step()

    def _step(self) -> None:
        if self._op_index >= len(self._ops):
            self._barrier()
            return
        op = self._ops[self._op_index]
        self._op_index += 1
        if isinstance(op, Compute):
            self._m.events.schedule(op.cycles, self._step)
        elif isinstance(op, MemRead):
            self._load(op.block)
        elif isinstance(op, MemWrite):
            self._store(op.block)
        elif isinstance(op, LockAcquire):
            self._acquire(op.lock)
        elif isinstance(op, LockRelease):
            self._m.locks.release(op.lock, self.pid)
            self._m.events.schedule(0, self._step)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def _load(self, block: BlockId) -> None:
        node = self._m.node(self.pid)
        if node.cache.can_read(block):
            self._m.stats.bump("cache_hits")
            self._m.events.schedule(self._m.config.cache_hit_cycles, self._step)
            return
        spec = node.remote_cache.consume(block)
        if spec is not None:
            # Speculative hit: a pushed read-only copy is waiting in the
            # remote cache; referencing it verifies the speculation.
            self._m.stats.bump(f"spec_hits_{spec.origin}")
            engine = self._m.engine_for(self._m.home_of(block))
            if engine is not None:
                engine.spec_feedback(block, self.pid, used=True)
            node.cache.set_state(block, CacheState.SHARED)
            started = self._m.events.now

            def filled() -> None:
                self.stall_cycles += self._m.events.now - started
                self._step()

            self._m.events.schedule(self._m.config.local_access_cycles, filled)
            return
        self._issue("read", block)

    def _store(self, block: BlockId) -> None:
        node = self._m.node(self.pid)
        if node.cache.can_write(block):
            self._m.stats.bump("cache_hits")
            self._m.note_store_hit(self.pid, block)
            self._m.events.schedule(self._m.config.cache_hit_cycles, self._step)
            return
        self._issue("write", block)

    def _issue(self, kind: str, block: BlockId) -> None:
        started = self._m.events.now
        self._outstanding = block
        if kind == "write":
            self._m.note_write_issued(self.pid, block)

        def done() -> None:
            self._outstanding = None
            # A granted copy supersedes any stale speculative copy.
            stale = self._m.node(self.pid).remote_cache.evict(block)
            if stale is not None and not stale.referenced:
                engine = self._m.engine_for(self._m.home_of(block))
                if engine is not None:
                    engine.spec_feedback(block, self.pid, used=False, raced=True)
            self.stall_cycles += self._m.events.now - started
            self._step()

        request = MemRequest(kind=kind, block=block, requester=self.pid, on_done=done)
        home = self._m.home_of(block)
        self._m.net.send(
            self.pid, home, lambda: self._m.home(home).request(request)
        )

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _barrier(self) -> None:
        started = self._m.events.now

        def released() -> None:
            self.sync_cycles += self._m.events.now - started
            self._next_phase()

        self._m.barrier.arrive(self.pid, released)

    def _acquire(self, lock: int) -> None:
        started = self._m.events.now

        def granted() -> None:
            self.sync_cycles += self._m.events.now - started
            self._step()

        self._m.locks.acquire(lock, self.pid, granted)


class FastProcessor(Processor):
    """The fast engine's processor: no per-resume closures.

    Every stall-attributed wait of the reference processor (request
    retirement, speculative fill, barrier release, lock grant) builds a
    closure capturing the start cycle; this subclass passes a prebound
    resume method plus the start cycle as ``(handler, args)`` events
    instead.  Its hottest continuations additionally inline the
    calendar queue's bucket insert and reach directly into the node's
    cache dictionaries (``ProcessorCache._state`` /
    ``RemoteCache._entries``) — friend access that trades abstraction
    for the per-op call frames.  The scheduling sequence and every
    state mutation are identical to the reference processor's, so
    execution and the stall/sync accounting match bit-for-bit (gated
    by tests/sim/test_engine_equivalence.py).
    """

    def __init__(self, pid: NodeId, machine: "Machine", phases: list[Phase]) -> None:
        super().__init__(pid, machine, phases)
        # Prebound per-event handlers (an attribute fetch allocates
        # nothing; ``self._method`` builds a bound method per event)
        # plus flat copies of the per-event ``self._m...`` chases.
        self._step_fn = self._step
        self._spec_fill_done_fn = self._spec_fill_done
        self._request_done_fn = self._request_done
        self._barrier_released_fn = self._barrier_released
        self._lock_granted_fn = self._lock_granted
        self._ev = machine.events  # always the calendar queue when fast
        self._ev_call = machine.events.call
        self._send_call = machine.net.send_call
        self._stats_bump = machine.stats.bump
        self._cache_hit_cycles = machine.config.cache_hit_cycles
        self._local_access = machine.config.local_access_cycles
        self._num_nodes = machine.config.num_nodes
        self._engines = machine._engines
        # Bound in start(): machine._nodes / _home_request are built
        # after the processors themselves.
        self._node: "NodeContext | None" = None
        self._home_request: list | None = None
        self._cstate: dict | None = None
        self._rentries: dict | None = None
        # One reusable request object: the processor blocks on a single
        # outstanding request at a time, and nothing holds the object
        # past reply delivery (events capture the prebound on_done, not
        # the request), so each issue may recycle it in place.
        self._request = MemRequest(
            kind="read", block=0, requester=pid, on_done=self._request_done_fn
        )

    def start(self) -> None:
        self._node = self._m.node(self.pid)
        self._home_request = self._m._home_request
        self._cstate = self._node.cache._state
        self._rentries = self._node.remote_cache._entries
        super().start()

    def _sched_step(self, delay: int) -> None:
        """Inlined calendar insert of the prebound step continuation."""
        queue = self._ev
        time = queue.now + delay
        buckets = queue._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(self._step_fn, ())]
            heappush(queue._times, time)
        else:
            bucket.append((self._step_fn, ()))
        queue._size += 1

    def _step(self) -> None:
        if self._op_index >= len(self._ops):
            self._barrier()
            return
        op = self._ops[self._op_index]
        self._op_index += 1
        if isinstance(op, Compute):
            self._sched_step(op.cycles)
        elif isinstance(op, MemRead):
            self._load(op.block)
        elif isinstance(op, MemWrite):
            self._store(op.block)
        elif isinstance(op, LockAcquire):
            self._acquire(op.lock)
        elif isinstance(op, LockRelease):
            self._m.locks.release(op.lock, self.pid)
            self._sched_step(0)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # memory operations
    # ------------------------------------------------------------------
    def _load(self, block: BlockId) -> None:
        if self._cstate.get(block) is not None:  # can_read, inlined
            self._stats_bump("cache_hits")
            self._sched_step(self._cache_hit_cycles)
            return
        spec = self._rentries.pop(block, None)  # consume, inlined
        if spec is not None:
            spec.referenced = True
            # Speculative hit: a pushed read-only copy is waiting in the
            # remote cache; referencing it verifies the speculation.
            self._stats_bump(f"spec_hits_{spec.origin}")
            engines = self._engines
            if engines is not None:
                engines[(block >> HOME_SHIFT) % self._num_nodes].spec_feedback(
                    block, self.pid, used=True
                )
            self._cstate[block] = CacheState.SHARED
            self._ev_call(
                self._local_access, self._spec_fill_done_fn, self._ev.now
            )
            return
        self._issue("read", block)

    def _spec_fill_done(self, started: int) -> None:
        self.stall_cycles += self._ev.now - started
        self._step()

    def _store(self, block: BlockId) -> None:
        if self._cstate.get(block) is CacheState.EXCLUSIVE:  # can_write
            self._stats_bump("cache_hits")
            self._m.note_store_hit(self.pid, block)
            self._sched_step(self._cache_hit_cycles)
            return
        self._issue("write", block)

    def _issue(self, kind: str, block: BlockId) -> None:
        started = self._ev.now
        self._outstanding = block
        if kind == "write":
            self._m.note_write_issued(self.pid, block)
        request = self._request
        request.kind = kind
        request.block = block
        request.on_done_args = (block, started)
        home = (block >> HOME_SHIFT) % self._num_nodes
        self._send_call(self.pid, home, self._home_request[home], request)

    def _request_done(self, block: BlockId, started: int) -> None:
        self._outstanding = None
        # A granted copy supersedes any stale speculative copy.
        stale = self._rentries.pop(block, None)  # evict, inlined
        if stale is not None and not stale.referenced:
            engines = self._engines
            if engines is not None:
                engines[(block >> HOME_SHIFT) % self._num_nodes].spec_feedback(
                    block, self.pid, used=False, raced=True
                )
        self.stall_cycles += self._ev.now - started
        self._step()

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------
    def _barrier(self) -> None:
        self._m.barrier.arrive(self.pid, self._barrier_released_fn, self._ev.now)

    def _barrier_released(self, started: int) -> None:
        self.sync_cycles += self._ev.now - started
        self._next_phase()

    def _acquire(self, lock: int) -> None:
        self._m.locks.acquire(lock, self.pid, self._lock_granted_fn, self._ev.now)

    def _lock_granted(self, started: int) -> None:
        self.sync_cycles += self._ev.now - started
        self._step()
