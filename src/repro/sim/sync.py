"""Synchronization primitives of the simulated machine.

Barriers and locks are modeled directly (not through shared-memory
spinning) — the paper folds barrier and lock waiting into computation
time in its Figure 9 breakdown, so only the *duration* of waiting
matters, not its memory traffic.

Both managers accept resume callbacks in the timing engines' low
allocation ``(handler, *args)`` form: the fast engine's processors
pass a prebound method plus its arguments, the reference engine's
processors pass a zero-argument closure — either way the wakeup is
scheduled through :meth:`EventQueue.call`, which preserves FIFO
release order on both engines.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.common.config import SystemConfig
from repro.common.types import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.fastevents import TimingQueue


class BarrierManager:
    """A single global sense-reversing barrier."""

    def __init__(
        self, num_procs: int, config: SystemConfig, events: "TimingQueue"
    ) -> None:
        self._num_procs = num_procs
        self._config = config
        self._events = events
        self._waiting: list[tuple[Callable, tuple]] = []

    def arrive(self, proc: NodeId, resume: Callable, *args) -> None:
        """Block ``proc``; release everyone once all have arrived."""
        del proc
        self._waiting.append((resume, args))
        if len(self._waiting) < self._num_procs:
            return
        waiters, self._waiting = self._waiting, []
        for resume_fn, resume_args in waiters:
            self._events.call(
                self._config.barrier_release_cycles, resume_fn, *resume_args
            )


class LockManager:
    """FIFO spin locks, granted in request-arrival order."""

    def __init__(self, config: SystemConfig, events: "TimingQueue") -> None:
        self._config = config
        self._events = events
        self._holder: dict[int, NodeId] = {}
        self._queues: dict[int, deque[tuple[NodeId, Callable, tuple]]] = {}

    def acquire(
        self, lock: int, proc: NodeId, granted: Callable, *args
    ) -> None:
        if lock not in self._holder:
            self._holder[lock] = proc
            self._events.call(self._config.lock_acquire_cycles, granted, *args)
            return
        self._queues.setdefault(lock, deque()).append((proc, granted, args))

    def release(self, lock: int, proc: NodeId) -> None:
        holder = self._holder.get(lock)
        if holder != proc:
            raise RuntimeError(
                f"P{proc} released lock {lock} held by {holder!r}"
            )
        queue = self._queues.get(lock)
        if queue:
            next_proc, granted, args = queue.popleft()
            self._holder[lock] = next_proc
            self._events.call(self._config.lock_acquire_cycles, granted, *args)
        else:
            del self._holder[lock]

    def holder_of(self, lock: int) -> NodeId | None:
        return self._holder.get(lock)
