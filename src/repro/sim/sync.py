"""Synchronization primitives of the simulated machine.

Barriers and locks are modeled directly (not through shared-memory
spinning) — the paper folds barrier and lock waiting into computation
time in its Figure 9 breakdown, so only the *duration* of waiting
matters, not its memory traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.common.config import SystemConfig
from repro.common.types import NodeId
from repro.sim.events import EventQueue


class BarrierManager:
    """A single global sense-reversing barrier."""

    def __init__(
        self, num_procs: int, config: SystemConfig, events: EventQueue
    ) -> None:
        self._num_procs = num_procs
        self._config = config
        self._events = events
        self._waiting: list[Callable[[], None]] = []

    def arrive(self, proc: NodeId, resume: Callable[[], None]) -> None:
        """Block ``proc``; release everyone once all have arrived."""
        del proc
        self._waiting.append(resume)
        if len(self._waiting) < self._num_procs:
            return
        waiters, self._waiting = self._waiting, []
        for resume_fn in waiters:
            self._events.schedule(self._config.barrier_release_cycles, resume_fn)


class LockManager:
    """FIFO spin locks, granted in request-arrival order."""

    def __init__(self, config: SystemConfig, events: EventQueue) -> None:
        self._config = config
        self._events = events
        self._holder: dict[int, NodeId] = {}
        self._queues: dict[int, deque[tuple[NodeId, Callable[[], None]]]] = {}

    def acquire(
        self, lock: int, proc: NodeId, granted: Callable[[], None]
    ) -> None:
        if lock not in self._holder:
            self._holder[lock] = proc
            self._events.schedule(self._config.lock_acquire_cycles, granted)
            return
        self._queues.setdefault(lock, deque()).append((proc, granted))

    def release(self, lock: int, proc: NodeId) -> None:
        holder = self._holder.get(lock)
        if holder != proc:
            raise RuntimeError(
                f"P{proc} released lock {lock} held by {holder!r}"
            )
        queue = self._queues.get(lock)
        if queue:
            next_proc, granted = queue.popleft()
            self._holder[lock] = next_proc
            self._events.schedule(self._config.lock_acquire_cycles, granted)
        else:
            del self._holder[lock]

    def holder_of(self, lock: int) -> NodeId | None:
        return self._holder.get(lock)
