"""Timing-level home directory: the protocol engine of one node.

Each home node owns the directory entries for its blocks and processes
requests one-at-a-time per block (queued FIFO otherwise), running the
full-map write-invalidate protocol of Figure 1 with Table 1 latencies:

* a directory/memory access costs ``local_access_cycles``;
* invalidations, writebacks, and data replies traverse the
  :class:`~repro.network.interconnect.Interconnect` (constant network
  latency plus NI serialization at the receiver);
* a remote fill costs another memory access at the requester.

When a speculation engine is attached (FR-DSM / SWI-DSM), the home asks
it for advice at the marked points and executes ordinary protocol
operations in response — speculative sends and early recalls — exactly
as Section 4.2 prescribes (no new protocol states).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.common.types import BlockId, DirectoryState, MessageKind, NodeId
from repro.protocol.directory import BlockDirectory

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


@dataclass(slots=True)
class MemRequest:
    """A memory request travelling from a processor to a home."""

    kind: str  # 'read' | 'write' | 'swi-recall'
    block: BlockId
    requester: NodeId
    on_done: Callable[[], None] | None = None


class HomeDirectory:
    """Directory controller for all blocks homed at one node."""

    def __init__(self, node: NodeId, machine: "Machine") -> None:
        self.node = node
        self._m = machine
        self._entries: dict[BlockId, BlockDirectory] = {}
        self._busy: set[BlockId] = set()
        self._queues: dict[BlockId, deque[MemRequest]] = {}

    def entry(self, block: BlockId) -> BlockDirectory:
        if block not in self._entries:
            self._entries[block] = BlockDirectory()
        return self._entries[block]

    # ------------------------------------------------------------------
    # request intake and per-block serialization
    # ------------------------------------------------------------------
    def request(self, req: MemRequest) -> None:
        self._queues.setdefault(req.block, deque()).append(req)
        if req.block not in self._busy:
            self._begin_next(req.block)

    def _begin_next(self, block: BlockId) -> None:
        queue = self._queues.get(block)
        if not queue:
            return
        self._busy.add(block)
        req = queue.popleft()
        # Directory lookup + memory access.
        self._m.events.schedule(
            self._m.config.local_access_cycles, lambda: self._dispatch(req)
        )

    def _finish(self, block: BlockId) -> None:
        self._busy.discard(block)
        self._begin_next(block)

    # ------------------------------------------------------------------
    # transaction dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, req: MemRequest) -> None:
        if req.kind == "read":
            self._do_read(req)
        elif req.kind == "write":
            self._do_write(req)
        elif req.kind == "swi-recall":
            self._do_swi_recall(req)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown request kind {req.kind!r}")

    def _do_read(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        if entry.has_valid_copy(req.requester):
            # The requester was granted a speculative copy while this
            # request was in flight; just supply the data (the node
            # dropped the speculative message — Section 4.2).
            self._reply_data(req, exclusive=False)
            return
        transition = entry.read(req.requester)
        self._m.count_request(transition.request, req.block)
        engine = self._m.engine_for(self.node)
        fr_targets: frozenset[NodeId] = frozenset()
        migratory = False
        if engine is not None:
            fr_targets = engine.observe_read(req.block, req.requester)
            # Migratory-write extension: a read predicted to be followed
            # by the same processor's upgrade is granted exclusively.
            migratory = engine.predicts_migratory_writer(
                req.block, req.requester
            ) and entry.holders() == frozenset({req.requester})

        def complete() -> None:
            if migratory and entry.promote_sole_sharer(req.requester):
                engine.record_migratory_grant(req.block, req.requester)
                self._reply_data(req, exclusive=True)
                return
            self._forward_spec(req.block, fr_targets, origin="fr")
            self._reply_data(req, exclusive=False)

        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, complete)
        else:
            complete()

    def _do_write(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        if (
            entry.state is DirectoryState.EXCLUSIVE
            and entry.owner == req.requester
        ):
            # Stale request (the copy was granted while in flight).
            self._reply_data(req, exclusive=True)
            return
        transition = entry.write(req.requester)
        kind = transition.request
        assert kind is not None
        self._m.count_request(kind, req.block)
        engine = self._m.engine_for(self.node)
        if engine is not None:
            engine.observe_write(req.block, kind, req.requester)

        outstanding = len(transition.invalidated) + (
            1 if transition.writeback_from is not None else 0
        )

        def complete() -> None:
            self._reply_data(req, exclusive=True, data=kind is not MessageKind.UPGRADE)

        if outstanding == 0:
            complete()
            return
        remaining = [outstanding]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                complete()

        for sharer in transition.invalidated:
            self._invalidate_sharer(req.block, sharer, one_done)
        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, one_done)

    # ------------------------------------------------------------------
    # SWI: early recall of a writable copy
    # ------------------------------------------------------------------
    def _do_swi_recall(self, req: MemRequest) -> None:
        """Process a done-writing hint from the writer's node.

        The hint advises recalling the writer's previous block.  It is
        ignored when the block already moved on (not exclusive at the
        writer any more) or when the block's write pattern entry is
        suppressed after an earlier premature invalidation.
        """
        entry = self.entry(req.block)
        engine = self._m.engine_for(self.node)
        if (
            engine is None
            or entry.state is not DirectoryState.EXCLUSIVE
            or entry.owner != req.requester
            or not engine.swi_allowed(req.block)
        ):
            self._finish(req.block)
            return
        recall = entry.recall()
        assert recall.writeback_from == req.requester

        def after_writeback() -> None:
            targets = engine.swi_invalidated(req.block, req.requester)
            self._forward_spec(req.block, targets, origin="swi")
            self._finish(req.block)

        self._recall_writable(req.block, req.requester, after_writeback)

    # ------------------------------------------------------------------
    # protocol sub-operations
    # ------------------------------------------------------------------
    def _invalidate_sharer(
        self, block: BlockId, sharer: NodeId, on_ack: Callable[[], None]
    ) -> None:
        """Send a read-only invalidation; collect the ack."""

        def at_sharer() -> None:
            def after_access() -> None:
                node = self._m.node(sharer)
                node.cache.invalidate(block)
                spec_entry = node.remote_cache.evict(block)

                def at_home() -> None:
                    if spec_entry is not None and not spec_entry.referenced:
                        engine = self._m.engine_for(self.node)
                        if engine is not None:
                            engine.spec_feedback(block, sharer, used=False)
                    on_ack()

                self._m.net.send(sharer, self.node, at_home)

            self._m.events.schedule(
                self._m.config.local_access_cycles, after_access
            )

        self._m.net.send(self.node, sharer, at_sharer)

    def _recall_writable(
        self, block: BlockId, owner: NodeId, done: Callable[[], None]
    ) -> None:
        """Invalidate + writeback the writable copy, then update memory."""
        engine = self._m.engine_for(self.node)
        if engine is not None:
            # A recalled migratory grant that was never written to is a
            # demotion (the grantee would have been happy with a
            # read-only copy).
            engine.migratory_recalled(block, owner)

        def at_owner() -> None:
            def after_access() -> None:
                self._m.node(owner).cache.invalidate(block)

                def at_home() -> None:
                    # Memory update with the written-back data.
                    self._m.events.schedule(
                        self._m.config.local_access_cycles, done
                    )

                self._m.net.send(owner, self.node, at_home)

            self._m.events.schedule(
                self._m.config.local_access_cycles, after_access
            )

        self._m.net.send(self.node, owner, at_owner)

    def _reply_data(
        self, req: MemRequest, exclusive: bool, data: bool = True
    ) -> None:
        """Send the reply; the transaction retires on delivery."""
        from repro.sim.caches import CacheState

        def deliver() -> None:
            node = self._m.node(req.requester)
            node.cache.set_state(
                req.block,
                CacheState.EXCLUSIVE if exclusive else CacheState.SHARED,
            )
            fill = (
                self._m.config.local_access_cycles
                if data and req.requester != self.node
                else 0
            )
            if req.on_done is not None:
                self._m.events.schedule(fill, req.on_done)
            self._finish(req.block)

        self._m.net.send(self.node, req.requester, deliver)

    # ------------------------------------------------------------------
    # speculative forwarding
    # ------------------------------------------------------------------
    def _forward_spec(
        self, block: BlockId, targets: frozenset[NodeId], origin: str
    ) -> None:
        engine = self._m.engine_for(self.node)
        if engine is None or not targets:
            return
        entry = self.entry(block)
        for target in sorted(targets):
            if not entry.grant_speculative_copy(target):
                continue
            engine.record_spec_sent(block, target, origin)
            self._m.stats.bump(f"spec_sent_{origin}")

            def deliver(target: NodeId = target) -> None:
                node = self._m.node(target)
                if node.processor.waiting_for(block):
                    # Race with an in-flight request: drop the
                    # speculative message (Section 4.2).
                    engine.spec_feedback(block, target, used=False, raced=True)
                    return
                if node.cache.can_read(block):
                    return
                node.remote_cache.place(block, origin)

            self._m.net.send(self.node, target, deliver)
