"""Timing-level home directory: the protocol engine of one node.

Each home node owns the directory entries for its blocks and processes
requests one-at-a-time per block (queued FIFO otherwise), running the
full-map write-invalidate protocol of Figure 1 with Table 1 latencies:

* a directory/memory access costs ``local_access_cycles``;
* invalidations, writebacks, and data replies traverse the
  :class:`~repro.network.interconnect.Interconnect` (constant network
  latency plus NI serialization at the receiver);
* a remote fill costs another memory access at the requester.

When a speculation engine is attached (FR-DSM / SWI-DSM), the home asks
it for advice at the marked points and executes ordinary protocol
operations in response — speculative sends and early recalls — exactly
as Section 4.2 prescribes (no new protocol states).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from heapq import heappush

from repro.common.types import BlockId, DirectoryState, MessageKind, NodeId
from repro.protocol.directory import BlockDirectory
from repro.sim.caches import CacheState, SpeculativeEntry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


@dataclass(slots=True)
class MemRequest:
    """A memory request travelling from a processor to a home.

    ``on_done`` is invoked as ``on_done(*on_done_args)`` when the reply
    retires.  The reference engine's processors pass a zero-argument
    closure (``on_done_args`` stays empty); the fast engine's
    processors pass a prebound method plus its arguments, so retiring
    a request allocates nothing.
    """

    kind: str  # 'read' | 'write' | 'swi-recall'
    block: BlockId
    requester: NodeId
    on_done: Callable | None = None
    on_done_args: tuple = ()


class HomeDirectory:
    """Directory controller for all blocks homed at one node."""

    def __init__(self, node: NodeId, machine: "Machine") -> None:
        self.node = node
        self._m = machine
        self._entries: dict[BlockId, BlockDirectory] = {}
        self._busy: set[BlockId] = set()
        self._queues: dict[BlockId, deque[MemRequest]] = {}

    def entry(self, block: BlockId) -> BlockDirectory:
        if block not in self._entries:
            self._entries[block] = BlockDirectory()
        return self._entries[block]

    # ------------------------------------------------------------------
    # request intake and per-block serialization
    # ------------------------------------------------------------------
    def request(self, req: MemRequest) -> None:
        self._queues.setdefault(req.block, deque()).append(req)
        if req.block not in self._busy:
            self._begin_next(req.block)

    def _begin_next(self, block: BlockId) -> None:
        queue = self._queues.get(block)
        if not queue:
            return
        self._busy.add(block)
        req = queue.popleft()
        # Directory lookup + memory access.
        self._m.events.schedule(
            self._m.config.local_access_cycles, lambda: self._dispatch(req)
        )

    def _finish(self, block: BlockId) -> None:
        self._busy.discard(block)
        self._begin_next(block)

    # ------------------------------------------------------------------
    # transaction dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, req: MemRequest) -> None:
        if req.kind == "read":
            self._do_read(req)
        elif req.kind == "write":
            self._do_write(req)
        elif req.kind == "swi-recall":
            self._do_swi_recall(req)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown request kind {req.kind!r}")

    def _do_read(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        if entry.has_valid_copy(req.requester):
            # The requester was granted a speculative copy while this
            # request was in flight; just supply the data (the node
            # dropped the speculative message — Section 4.2).
            self._reply_data(req, exclusive=False)
            return
        transition = entry.read(req.requester)
        self._m.count_request(transition.request, req.block)
        engine = self._m.engine_for(self.node)
        fr_targets: frozenset[NodeId] = frozenset()
        migratory = False
        if engine is not None:
            fr_targets = engine.observe_read(req.block, req.requester)
            # Migratory-write extension: a read predicted to be followed
            # by the same processor's upgrade is granted exclusively.
            migratory = engine.predicts_migratory_writer(
                req.block, req.requester
            ) and entry.holders() == frozenset({req.requester})

        def complete() -> None:
            if migratory and entry.promote_sole_sharer(req.requester):
                engine.record_migratory_grant(req.block, req.requester)
                self._reply_data(req, exclusive=True)
                return
            self._forward_spec(req.block, fr_targets, origin="fr")
            self._reply_data(req, exclusive=False)

        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, complete)
        else:
            complete()

    def _do_write(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        if (
            entry.state is DirectoryState.EXCLUSIVE
            and entry.owner == req.requester
        ):
            # Stale request (the copy was granted while in flight).
            self._reply_data(req, exclusive=True)
            return
        transition = entry.write(req.requester)
        kind = transition.request
        assert kind is not None
        self._m.count_request(kind, req.block)
        engine = self._m.engine_for(self.node)
        if engine is not None:
            engine.observe_write(req.block, kind, req.requester)

        outstanding = len(transition.invalidated) + (
            1 if transition.writeback_from is not None else 0
        )

        def complete() -> None:
            self._reply_data(req, exclusive=True, data=kind is not MessageKind.UPGRADE)

        if outstanding == 0:
            complete()
            return
        remaining = [outstanding]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                complete()

        for sharer in transition.invalidated:
            self._invalidate_sharer(req.block, sharer, one_done)
        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, one_done)

    # ------------------------------------------------------------------
    # SWI: early recall of a writable copy
    # ------------------------------------------------------------------
    def _do_swi_recall(self, req: MemRequest) -> None:
        """Process a done-writing hint from the writer's node.

        The hint advises recalling the writer's previous block.  It is
        ignored when the block already moved on (not exclusive at the
        writer any more) or when the block's write pattern entry is
        suppressed after an earlier premature invalidation.
        """
        entry = self.entry(req.block)
        engine = self._m.engine_for(self.node)
        if (
            engine is None
            or entry.state is not DirectoryState.EXCLUSIVE
            or entry.owner != req.requester
            or not engine.swi_allowed(req.block)
        ):
            self._finish(req.block)
            return
        recall = entry.recall()
        assert recall.writeback_from == req.requester

        def after_writeback() -> None:
            targets = engine.swi_invalidated(req.block, req.requester)
            self._forward_spec(req.block, targets, origin="swi")
            self._finish(req.block)

        self._recall_writable(req.block, req.requester, after_writeback)

    # ------------------------------------------------------------------
    # protocol sub-operations
    # ------------------------------------------------------------------
    def _invalidate_sharer(
        self, block: BlockId, sharer: NodeId, on_ack: Callable[[], None]
    ) -> None:
        """Send a read-only invalidation; collect the ack."""

        def at_sharer() -> None:
            def after_access() -> None:
                node = self._m.node(sharer)
                node.cache.invalidate(block)
                spec_entry = node.remote_cache.evict(block)

                def at_home() -> None:
                    if spec_entry is not None and not spec_entry.referenced:
                        engine = self._m.engine_for(self.node)
                        if engine is not None:
                            engine.spec_feedback(block, sharer, used=False)
                    on_ack()

                self._m.net.send(sharer, self.node, at_home)

            self._m.events.schedule(
                self._m.config.local_access_cycles, after_access
            )

        self._m.net.send(self.node, sharer, at_sharer)

    def _recall_writable(
        self, block: BlockId, owner: NodeId, done: Callable[[], None]
    ) -> None:
        """Invalidate + writeback the writable copy, then update memory."""
        engine = self._m.engine_for(self.node)
        if engine is not None:
            # A recalled migratory grant that was never written to is a
            # demotion (the grantee would have been happy with a
            # read-only copy).
            engine.migratory_recalled(block, owner)

        def at_owner() -> None:
            def after_access() -> None:
                self._m.node(owner).cache.invalidate(block)

                def at_home() -> None:
                    # Memory update with the written-back data.
                    self._m.events.schedule(
                        self._m.config.local_access_cycles, done
                    )

                self._m.net.send(owner, self.node, at_home)

            self._m.events.schedule(
                self._m.config.local_access_cycles, after_access
            )

        self._m.net.send(self.node, owner, at_owner)

    def _reply_data(
        self, req: MemRequest, exclusive: bool, data: bool = True
    ) -> None:
        """Send the reply; the transaction retires on delivery."""
        from repro.sim.caches import CacheState

        def deliver() -> None:
            node = self._m.node(req.requester)
            node.cache.set_state(
                req.block,
                CacheState.EXCLUSIVE if exclusive else CacheState.SHARED,
            )
            fill = (
                self._m.config.local_access_cycles
                if data and req.requester != self.node
                else 0
            )
            if req.on_done is not None:
                self._m.events.schedule(fill, req.on_done)
            self._finish(req.block)

        self._m.net.send(self.node, req.requester, deliver)

    # ------------------------------------------------------------------
    # speculative forwarding
    # ------------------------------------------------------------------
    def _forward_spec(
        self, block: BlockId, targets: frozenset[NodeId], origin: str
    ) -> None:
        engine = self._m.engine_for(self.node)
        if engine is None or not targets:
            return
        entry = self.entry(block)
        for target in sorted(targets):
            if not entry.grant_speculative_copy(target):
                continue
            engine.record_spec_sent(block, target, origin)
            self._m.stats.bump(f"spec_sent_{origin}")

            def deliver(target: NodeId = target) -> None:
                node = self._m.node(target)
                if node.processor.waiting_for(block):
                    # Race with an in-flight request: drop the
                    # speculative message (Section 4.2).
                    engine.spec_feedback(block, target, used=False, raced=True)
                    return
                if node.cache.can_read(block):
                    return
                node.remote_cache.place(block, origin)

            self._m.net.send(self.node, target, deliver)


class FastHomeDirectory(HomeDirectory):
    """The fast engine's home: same protocol, no per-event closures.

    Every multi-hop transaction of the reference home allocates one
    closure (plus cell objects) per hop; this subclass replaces each
    hop with a prebound method scheduled as a ``(handler, args)`` event
    through :meth:`Interconnect.send_call` /
    :meth:`CalendarEventQueue.call`.  The scheduling *sequence* — which
    events are inserted, at which cycles, in which order — is identical
    to the reference home's, so the golden equivalence suite holds
    bit-for-bit.  Transaction-level continuations (a write's ack join,
    a read's post-writeback completion) are still closures: they are
    per-request, not per-event, and each request spawns several events.
    """

    def __init__(self, node: NodeId, machine: "Machine") -> None:
        super().__init__(node, machine)
        # Prebind the per-event handlers once: an attribute fetch is an
        # allocation-free lookup, while ``self._method`` in a hot path
        # builds a fresh bound method per event.  Likewise flatten the
        # ``self._m.<component>.<attr>`` chases the reference home pays
        # per event into direct references; all of them are fixed for
        # the life of the machine (Machine.__init__ builds engines and
        # nodes before homes for exactly this reason).
        self._do_read_fn = self._do_read
        self._do_write_fn = self._do_write
        self._do_swi_recall_fn = self._do_swi_recall
        self._deliver_reply_fn = self._deliver_reply
        self._inv_at_sharer_fn = self._inv_at_sharer
        self._inv_after_access_fn = self._inv_after_access
        self._inv_ack_at_home_fn = self._inv_ack_at_home
        self._recall_at_owner_fn = self._recall_at_owner
        self._recall_after_access_fn = self._recall_after_access
        self._recall_writeback_at_home_fn = self._recall_writeback_at_home
        self._deliver_spec_fn = self._deliver_spec
        self._ev_call = machine.events.call
        self._q = machine.events  # always the calendar queue when fast
        self._send_call = machine.net.send_call
        self._local_access = machine.config.local_access_cycles
        self._machine_nodes = machine._nodes
        self._engine = machine.engine_for(node)
        self._spec_sent_key = {"fr": "spec_sent_fr", "swi": "spec_sent_swi"}
        self._stats_bump = machine.stats.bump

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def entry(self, block: BlockId) -> BlockDirectory:
        entry = self._entries.get(block)
        if entry is None:
            entry = self._entries[block] = BlockDirectory()
        return entry

    def request(self, req: MemRequest) -> None:
        block = req.block
        queue = self._queues.get(block)
        if queue is None:
            queue = self._queues[block] = deque()
        queue.append(req)
        if block not in self._busy:
            self._begin_next(block)

    def _begin_next(self, block: BlockId) -> None:
        queue = self._queues.get(block)
        if not queue:
            return
        self._busy.add(block)
        req = queue.popleft()
        # Resolve the transaction handler at intake (the reference home
        # branches in _dispatch, one event later — same cycle, same
        # order, one call frame fewer here).
        kind = req.kind
        if kind == "read":
            handler = self._do_read_fn
        elif kind == "write":
            handler = self._do_write_fn
        elif kind == "swi-recall":
            handler = self._do_swi_recall_fn
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown request kind {kind!r}")
        # Directory lookup + memory access (inlined calendar insert).
        q = self._q
        time = q.now + self._local_access
        buckets = q._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [(handler, (req,))]
            heappush(q._times, time)
        else:
            bucket.append((handler, (req,)))
        q._size += 1

    # ------------------------------------------------------------------
    # transaction dispatch (fast copies: cached engine, same protocol)
    # ------------------------------------------------------------------
    def _do_read(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        requester = req.requester
        # Inlined entry.has_valid_copy(requester) — no frozenset built
        # per read request.
        if (
            requester == entry.owner
            if entry.state is DirectoryState.EXCLUSIVE
            else requester in entry.sharers
        ):
            # The requester was granted a speculative copy while this
            # request was in flight; just supply the data (the node
            # dropped the speculative message — Section 4.2).
            self._reply_data(req, exclusive=False)
            return
        transition = entry.read(req.requester)
        self._m.count_request_fast(transition.request, req.block)
        engine = self._engine
        fr_targets: frozenset[NodeId] = frozenset()
        migratory = False
        if engine is not None:
            fr_targets = engine.observe_read(req.block, req.requester)
            # Migratory-write extension: a read predicted to be followed
            # by the same processor's upgrade is granted exclusively.
            migratory = engine.predicts_migratory_writer(
                req.block, req.requester
            ) and entry.holders() == frozenset({req.requester})

        def complete() -> None:
            if migratory and entry.promote_sole_sharer(req.requester):
                engine.record_migratory_grant(req.block, req.requester)
                self._reply_data(req, exclusive=True)
                return
            self._forward_spec(req.block, fr_targets, origin="fr")
            self._reply_data(req, exclusive=False)

        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, complete)
        else:
            complete()

    def _do_write(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        if (
            entry.state is DirectoryState.EXCLUSIVE
            and entry.owner == req.requester
        ):
            # Stale request (the copy was granted while in flight).
            self._reply_data(req, exclusive=True)
            return
        transition = entry.write(req.requester)
        kind = transition.request
        assert kind is not None
        self._m.count_request_fast(kind, req.block)
        engine = self._engine
        if engine is not None:
            engine.observe_write(req.block, kind, req.requester)

        outstanding = len(transition.invalidated) + (
            1 if transition.writeback_from is not None else 0
        )

        def complete() -> None:
            self._reply_data(req, exclusive=True, data=kind is not MessageKind.UPGRADE)

        if outstanding == 0:
            complete()
            return
        remaining = [outstanding]

        def one_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                complete()

        for sharer in transition.invalidated:
            self._invalidate_sharer(req.block, sharer, one_done)
        if transition.writeback_from is not None:
            self._recall_writable(req.block, transition.writeback_from, one_done)

    def _do_swi_recall(self, req: MemRequest) -> None:
        entry = self.entry(req.block)
        engine = self._engine
        if (
            engine is None
            or entry.state is not DirectoryState.EXCLUSIVE
            or entry.owner != req.requester
            or not engine.swi_allowed(req.block)
        ):
            self._finish(req.block)
            return
        recall = entry.recall()
        assert recall.writeback_from == req.requester

        def after_writeback() -> None:
            targets = engine.swi_invalidated(req.block, req.requester)
            self._forward_spec(req.block, targets, origin="swi")
            self._finish(req.block)

        self._recall_writable(req.block, req.requester, after_writeback)

    # ------------------------------------------------------------------
    # protocol sub-operations
    # ------------------------------------------------------------------
    def _invalidate_sharer(
        self, block: BlockId, sharer: NodeId, on_ack: Callable[[], None]
    ) -> None:
        self._send_call(
            self.node, sharer, self._inv_at_sharer_fn, block, sharer, on_ack
        )

    def _inv_at_sharer(
        self, block: BlockId, sharer: NodeId, on_ack: Callable[[], None]
    ) -> None:
        self._ev_call(
            self._local_access, self._inv_after_access_fn, block, sharer, on_ack
        )

    def _inv_after_access(
        self, block: BlockId, sharer: NodeId, on_ack: Callable[[], None]
    ) -> None:
        node = self._machine_nodes[sharer]
        node.cache._state.pop(block, None)  # invalidate, inlined
        spec_entry = node.remote_cache._entries.pop(block, None)  # evict
        self._send_call(
            sharer,
            self.node,
            self._inv_ack_at_home_fn,
            block,
            sharer,
            spec_entry,
            on_ack,
        )

    def _inv_ack_at_home(
        self, block: BlockId, sharer: NodeId, spec_entry, on_ack
    ) -> None:
        if spec_entry is not None and not spec_entry.referenced:
            engine = self._engine
            if engine is not None:
                engine.spec_feedback(block, sharer, used=False)
        on_ack()

    def _recall_writable(
        self, block: BlockId, owner: NodeId, done: Callable[[], None]
    ) -> None:
        engine = self._engine
        if engine is not None:
            # A recalled migratory grant that was never written to is a
            # demotion (the grantee would have been happy with a
            # read-only copy).
            engine.migratory_recalled(block, owner)
        self._send_call(
            self.node, owner, self._recall_at_owner_fn, block, owner, done
        )

    def _recall_at_owner(
        self, block: BlockId, owner: NodeId, done: Callable[[], None]
    ) -> None:
        self._ev_call(
            self._local_access, self._recall_after_access_fn, block, owner, done
        )

    def _recall_after_access(
        self, block: BlockId, owner: NodeId, done: Callable[[], None]
    ) -> None:
        self._machine_nodes[owner].cache._state.pop(block, None)  # invalidate
        self._send_call(owner, self.node, self._recall_writeback_at_home_fn, done)

    def _recall_writeback_at_home(self, done: Callable[[], None]) -> None:
        # Memory update with the written-back data.
        self._ev_call(self._local_access, done)

    def _reply_data(
        self, req: MemRequest, exclusive: bool, data: bool = True
    ) -> None:
        self._send_call(
            self.node, req.requester, self._deliver_reply_fn, req, exclusive, data
        )

    def _deliver_reply(
        self, req: MemRequest, exclusive: bool, data: bool
    ) -> None:
        requester = req.requester
        block = req.block
        # set_state inlined: replies always grant a valid state.
        self._machine_nodes[requester].cache._state[block] = (
            CacheState.EXCLUSIVE if exclusive else CacheState.SHARED
        )
        fill = (
            self._local_access if data and requester != self.node else 0
        )
        if req.on_done is not None:
            self._ev_call(fill, req.on_done, *req.on_done_args)
        self._finish(block)

    # ------------------------------------------------------------------
    # speculative forwarding
    # ------------------------------------------------------------------
    def _forward_spec(
        self, block: BlockId, targets: frozenset[NodeId], origin: str
    ) -> None:
        engine = self._engine
        if engine is None or not targets:
            return
        entry = self.entry(block)
        stat_key = self._spec_sent_key[origin]
        for target in sorted(targets):
            if not entry.grant_speculative_copy(target):
                continue
            engine.record_spec_sent(block, target, origin)
            self._stats_bump(stat_key)
            self._send_call(
                self.node, target, self._deliver_spec_fn, block, target, origin
            )

    def _deliver_spec(self, block: BlockId, target: NodeId, origin: str) -> None:
        node = self._machine_nodes[target]
        if node.processor._outstanding == block:  # waiting_for, inlined
            # Race with an in-flight request: drop the speculative
            # message (Section 4.2).
            engine = self._engine
            if engine is not None:
                engine.spec_feedback(block, target, used=False, raced=True)
            return
        if node.cache._state.get(block) is not None:  # can_read, inlined
            return
        node.remote_cache._entries[block] = SpeculativeEntry(origin=origin)
