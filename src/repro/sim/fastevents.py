"""Calendar-queue timing engine: the fast event queue.

:class:`~repro.sim.events.EventQueue` — the reference engine — pays a
heap push, a heap pop, and (at most call sites) a fresh closure for
every simulated event.  Profiling the Figure 9 / Table 5 sweeps shows
events *cluster*: a 16-node run schedules 1.5–3 events per distinct
cycle (barrier releases, lock-step compute phases, NI-serialized
deliveries), and the hot handlers are tiny, so queue mechanics and
allocation are a large slice of wall time.

:class:`CalendarEventQueue` is a calendar (bucket) queue keyed by
cycle:

* each pending cycle owns one FIFO bucket (a plain list, appended in
  insertion order), so a schedule is an ``O(1)`` list append instead of
  an ``O(log n)`` heap push;
* a small int heap orders only the *distinct* pending cycles (one heap
  entry per bucket, not per event);
* :meth:`run` drains a whole bucket per heap pop — the same-cycle
  batch-drain mode — and events append to the live bucket when they
  schedule work for the current cycle;
* events are ``(handler, args)`` tuples, not closures: the hottest
  paths (interconnect delivery, processor resume, home request
  servicing) schedule a prebound method plus its arguments via
  :meth:`call` / :meth:`call_at` and never allocate a closure or cell
  object per event.

The contract with the reference engine is exact: ``schedule`` / ``at``
/ ``call`` / ``call_at`` / ``run(max_events)`` / ``run_cycle`` /
``peek_time`` / ``now`` / ``len`` behave bit-for-bit identically —
ties break by insertion order, ``now`` advances per event, a zero
budget is a no-op, and the error messages match.  The golden suite
(``tests/sim/test_engine_equivalence.py``) and the Hypothesis
interleaving replay (``tests/sim/test_events_property.py``) enforce
it; ``make_event_queue`` is the engine switch the
:class:`~repro.sim.machine.Machine` exposes.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Union

from repro.sim.events import EventQueue

#: The timing engines :class:`~repro.sim.machine.Machine` accepts.
#: ``"compiled"`` runs on the calendar queue too; the difference is in
#: :class:`~repro.sim.machine.Machine`, which records the run as a
#: macro-step trace and replays cached traces without simulating
#: (see ``repro.sim.timetrace``).
ENGINES = ("fast", "compiled", "reference")

#: Either timing queue; components accept both interchangeably.
TimingQueue = Union[EventQueue, "CalendarEventQueue"]


def make_event_queue(engine: str = "fast") -> TimingQueue:
    """Build the event queue for one simulated machine.

    ``"fast"`` is the calendar queue below; ``"compiled"`` shares it
    (its recording pass is a fast-engine run); ``"reference"`` is the
    original heapq :class:`~repro.sim.events.EventQueue`, kept as the
    trusted semantic baseline (mirroring the accuracy pipeline's
    ``engine="vectorized"|"reference"`` switch).
    """
    if engine in ("fast", "compiled"):
        return CalendarEventQueue()
    if engine == "reference":
        return EventQueue()
    raise ValueError(
        f"unknown timing engine {engine!r} (known: {', '.join(ENGINES)})"
    )


class CalendarEventQueue:
    """Bucket-per-cycle event queue with FIFO tie order.

    Invariant: every bucket in ``_buckets`` is non-empty, and the
    ``_times`` heap holds exactly one entry per bucket (pushed when the
    bucket is created, popped when it is deleted) — so ``_times[0]`` is
    always the next cycle with pending work and no lazy-deletion sweep
    is ever needed.
    """

    __slots__ = ("now", "_buckets", "_times", "_size")

    def __init__(self) -> None:
        self.now = 0
        self._buckets: dict[int, list[tuple[Callable, tuple]]] = {}
        self._times: list[int] = []
        self._size = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call(self, delay: int, handler: Callable, *args) -> None:
        """Schedule ``handler(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(handler, args)]
            heappush(self._times, time)
        else:
            bucket.append((handler, args))
        self._size += 1

    def call_at(self, time: int, handler: Callable, *args) -> None:
        """Schedule ``handler(*args)`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(handler, args)]
            heappush(self._times, time)
        else:
            bucket.append((handler, args))
        self._size += 1

    def insert(self, time: int, handler: Callable, args: tuple) -> None:
        """Packed-arguments insert: ``args`` is passed as a tuple.

        The forwarding-hot-path variant of :meth:`call_at`: a caller
        that already holds an argument tuple (``*args`` forwarding,
        e.g. :meth:`Interconnect.send_call`) avoids re-splatting it
        into a second tuple.
        """
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(handler, args)]
            heappush(self._times, time)
        else:
            bucket.append((handler, args))
        self._size += 1

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        self.call(delay, fn)

    def at(self, time: int, fn: Callable[[], None]) -> None:
        self.call_at(time, fn)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        Same semantics as the reference engine: the budget is checked
        before each event, so ``run(max_events=0)`` is a pure no-op,
        and a budget exhausted mid-bucket leaves the bucket's remaining
        events (and their FIFO order) intact.
        """
        if max_events is not None and max_events < 0:
            raise ValueError("max_events must be >= 0")
        processed = 0
        buckets = self._buckets
        times = self._times
        while times and (max_events is None or processed < max_events):
            time = times[0]
            bucket = buckets[time]
            self.now = time
            i = 0
            try:
                if max_events is None:
                    # Batch drain: one heap pop retires the whole
                    # cycle.  A ``for`` over the live list iterates at
                    # C speed *and* picks up same-cycle events that
                    # handlers append while the bucket drains.
                    for handler, args in bucket:
                        i += 1
                        handler(*args)
                else:
                    limit = max_events - processed
                    while i < len(bucket) and i < limit:
                        handler, args = bucket[i]
                        i += 1
                        handler(*args)
            finally:
                self._size -= i
                if i >= len(bucket):
                    del buckets[time]
                    heappop(times)
                elif i:
                    del bucket[:i]
                processed += i
        return processed

    def run_cycle(self) -> int:
        """Batch-drain every event of the next pending cycle.

        Includes events scheduled *onto* that cycle while it drains;
        returns the number processed (0 when the queue is empty).
        """
        if not self._times:
            return 0
        time = self._times[0]
        bucket = self._buckets[time]
        self.now = time
        i = 0
        try:
            for handler, args in bucket:
                i += 1
                handler(*args)
        finally:
            self._size -= i
            if i >= len(bucket):
                del self._buckets[time]
                heappop(self._times)
            elif i:
                del bucket[:i]
        return i

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def peek_time(self) -> int | None:
        """Scheduled time of the next event, or None when empty."""
        if not self._times:
            return None
        return self._times[0]

    def __len__(self) -> int:
        return self._size
