"""Block address allocation with explicit home placement.

DSMs distribute memory at page granularity (Section 2), so blocks that
are contiguous in an application's data structures share a home node.
The reproduction encodes the home directly in the block id: the bits
above ``HOME_SHIFT`` name the home node and the low bits index the
node's private heap.  Application kernels allocate their arrays with the
producer's node as home — the common first-touch layout — so a
processor's writes arrive at its own directory and consumer reads are
the remote accesses, as in the original benchmarks.
"""

from __future__ import annotations

from repro.common.config import HOME_SHIFT
from repro.common.types import BlockId, NodeId


def home_of(block: BlockId, num_nodes: int) -> NodeId:
    """Home node of a block (inverse of :class:`AddressSpace`)."""
    return (block >> HOME_SHIFT) % num_nodes


class AddressSpace:
    """A bump allocator of block ids, one heap per home node."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self.num_nodes = num_nodes
        self._next = [0] * num_nodes

    def alloc(self, home: NodeId, count: int = 1) -> list[BlockId]:
        """Allocate ``count`` contiguous blocks homed at ``home``."""
        if not 0 <= home < self.num_nodes:
            raise ValueError(f"home {home} out of range")
        if count < 1:
            raise ValueError("count must be >= 1")
        start = self._next[home]
        self._next[home] += count
        if self._next[home] >= (1 << HOME_SHIFT):  # pragma: no cover
            raise MemoryError("node heap exhausted")
        return [(home << HOME_SHIFT) | (start + i) for i in range(count)]

    def alloc_one(self, home: NodeId) -> BlockId:
        return self.alloc(home, 1)[0]

    def allocated(self, home: NodeId) -> int:
        """Number of blocks allocated so far on ``home``."""
        return self._next[home]
