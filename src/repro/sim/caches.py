"""Node-side caching state: processor cache and speculative remote cache.

The paper's methodology assumes caches large enough to hold all remote
data ("we assume a remote cache large enough to hold the remote data",
Section 6), so both structures here are capacity-unbounded; the remote
cache's distinguishing job is holding *speculatively pushed* read-only
copies and their reference bits (Section 4.2) until the processor either
touches them (verifying the speculation) or an invalidation recalls them
(exposing a misspeculation via the piggy-backed bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.types import BlockId


class CacheState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"


class ProcessorCache:
    """Per-processor infinite cache with I/S/E block states."""

    def __init__(self) -> None:
        self._state: dict[BlockId, CacheState] = {}

    def state_of(self, block: BlockId) -> CacheState:
        return self._state.get(block, CacheState.INVALID)

    def set_state(self, block: BlockId, state: CacheState) -> None:
        if state is CacheState.INVALID:
            self._state.pop(block, None)
        else:
            self._state[block] = state

    def invalidate(self, block: BlockId) -> bool:
        """Drop the block; returns True if a copy was present."""
        return self._state.pop(block, None) is not None

    def can_read(self, block: BlockId) -> bool:
        return self.state_of(block) is not CacheState.INVALID

    def can_write(self, block: BlockId) -> bool:
        return self.state_of(block) is CacheState.EXCLUSIVE


@dataclass(slots=True)
class SpeculativeEntry:
    """A speculatively delivered read-only copy with its reference bit."""

    referenced: bool = False
    #: Which trigger pushed the copy ("fr" or "swi") — for Table 5.
    origin: str = "fr"


class RemoteCache:
    """Holds speculative deliveries until referenced or invalidated."""

    def __init__(self) -> None:
        self._entries: dict[BlockId, SpeculativeEntry] = {}

    def place(self, block: BlockId, origin: str) -> None:
        self._entries[block] = SpeculativeEntry(origin=origin)

    def lookup(self, block: BlockId) -> SpeculativeEntry | None:
        return self._entries.get(block)

    def consume(self, block: BlockId) -> SpeculativeEntry | None:
        """Reference the block: clear the entry, report what it was."""
        entry = self._entries.pop(block, None)
        if entry is not None:
            entry.referenced = True
        return entry

    def evict(self, block: BlockId) -> SpeculativeEntry | None:
        """Invalidation recall: remove and return the entry, if any."""
        return self._entries.pop(block, None)

    def unreferenced(self) -> list[tuple[BlockId, SpeculativeEntry]]:
        """Entries never touched (counted as misspeculations at exit)."""
        return [
            (block, entry)
            for block, entry in sorted(self._entries.items())
            if not entry.referenced
        ]

    def __len__(self) -> int:
        return len(self._entries)
