"""One driver per paper table / figure, returning structured rows."""

from __future__ import annotations

from typing import Callable

from repro.analytic.model import figure6_panels
from repro.apps.registry import APP_NAMES, table2_rows
from repro.common.config import SystemConfig, table1_rows
from repro.eval.accuracy import run_predictors
from repro.eval.performance import PAPER_MODES, run_speculation
from repro.sim.machine import MachineMode

PREDICTORS = ("Cosmos", "MSP", "VMSP")

#: Iteration counts for the accuracy experiments.  Larger than each
#: app's default so pattern-table reuse (coverage) approaches the
#: paper's long runs while staying fast in Python.
ACCURACY_ITERATIONS = {
    "appbt": 30,
    "barnes": 40,
    "em3d": 40,
    "moldyn": 40,
    "ocean": 24,
    "tomcatv": 40,
    "unstructured": 32,
}

#: Iteration counts for the (slower) timing-simulator experiments.
PERFORMANCE_ITERATIONS = {
    "appbt": 12,
    "barnes": 15,
    "em3d": 16,
    "moldyn": 14,
    "ocean": 12,
    "tomcatv": 16,
    "unstructured": 12,
}


def _scale(iterations: dict[str, int], fast: bool) -> dict[str, int]:
    if not fast:
        return iterations
    return {name: max(4, count // 4) for name, count in iterations.items()}


# ----------------------------------------------------------------------
# configuration tables
# ----------------------------------------------------------------------
def table1(fast: bool = False) -> list[tuple[str, str]]:
    """Table 1: system configuration parameters."""
    del fast
    return table1_rows(SystemConfig())


def table2(fast: bool = False) -> list[tuple[str, str, int]]:
    """Table 2: applications and input data sets."""
    del fast
    return table2_rows()


# ----------------------------------------------------------------------
# analytic model
# ----------------------------------------------------------------------
def figure6(fast: bool = False, points: int = 21) -> dict[str, dict]:
    """Figure 6: speedup of a speculative coherent DSM (4 panels)."""
    del fast
    return figure6_panels(points=points)


# ----------------------------------------------------------------------
# predictor accuracy / cost
# ----------------------------------------------------------------------
def figure7(fast: bool = False) -> dict[str, dict[str, float]]:
    """Figure 7: prediction accuracy per app, depth 1 (percent)."""
    iterations = _scale(ACCURACY_ITERATIONS, fast)
    rows: dict[str, dict[str, float]] = {}
    for app in APP_NAMES:
        runs = run_predictors(app, depth=1, iterations=iterations[app])
        rows[app] = {
            name: 100.0 * run.accuracy for name, run in runs.items()
        }
    return rows


def figure8(fast: bool = False, depths: tuple[int, ...] = (1, 2, 4)) -> dict:
    """Figure 8: prediction accuracy at history depths 1, 2, 4."""
    iterations = _scale(ACCURACY_ITERATIONS, fast)
    rows: dict[str, dict[int, dict[str, float]]] = {}
    for app in APP_NAMES:
        rows[app] = {}
        for depth in depths:
            runs = run_predictors(app, depth=depth, iterations=iterations[app])
            rows[app][depth] = {
                name: 100.0 * run.accuracy for name, run in runs.items()
            }
    return rows


def table3(fast: bool = False) -> dict[str, dict[str, tuple[float, float]]]:
    """Table 3: % messages predicted (and correctly predicted), d=1."""
    iterations = _scale(ACCURACY_ITERATIONS, fast)
    rows: dict[str, dict[str, tuple[float, float]]] = {}
    for app in APP_NAMES:
        runs = run_predictors(app, depth=1, iterations=iterations[app])
        rows[app] = {
            name: (100.0 * run.coverage, 100.0 * run.correct_fraction)
            for name, run in runs.items()
        }
    return rows


def table4(fast: bool = False) -> dict[str, dict[str, dict[str, float]]]:
    """Table 4: pattern-table entries per block (d=1, d=4), bytes (d=1)."""
    iterations = _scale(ACCURACY_ITERATIONS, fast)
    rows: dict[str, dict[str, dict[str, float]]] = {}
    for app in APP_NAMES:
        shallow = run_predictors(app, depth=1, iterations=iterations[app])
        deep = run_predictors(app, depth=4, iterations=iterations[app])
        rows[app] = {
            name: {
                "pte_d1": shallow[name].average_pte,
                "pte_d4": deep[name].average_pte,
                "ovh_d1": shallow[name].overhead_bytes,
            }
            for name in PREDICTORS
        }
    return rows


# ----------------------------------------------------------------------
# speculative DSM performance
# ----------------------------------------------------------------------
def figure9(fast: bool = False) -> dict[str, dict[str, tuple[float, float]]]:
    """Figure 9: normalized execution time (comp, request) per system."""
    iterations = _scale(PERFORMANCE_ITERATIONS, fast)
    rows: dict[str, dict[str, tuple[float, float]]] = {}
    for app in APP_NAMES:
        run = run_speculation(app, iterations=iterations[app])
        rows[app] = {
            mode.value: run.breakdown(mode) for mode in PAPER_MODES
        }
    return rows


def table5(fast: bool = False) -> dict[str, dict[str, float]]:
    """Table 5: request counts and speculation/misspeculation rates."""
    iterations = _scale(PERFORMANCE_ITERATIONS, fast)
    return {
        app: run_speculation(app, iterations=iterations[app]).table5_row()
        for app in APP_NAMES
    }


EXPERIMENTS: dict[str, Callable] = {
    "table1": table1,
    "table2": table2,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "table3": table3,
    "table4": table4,
    "figure9": figure9,
    "table5": table5,
}


def run_experiment(name: str, fast: bool = False):
    """Run one experiment by its paper id (e.g. 'figure7')."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    return fn(fast=fast)
