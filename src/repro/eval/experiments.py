"""One driver per paper table / figure, returning structured rows.

Every grid-shaped experiment (Figures 6-9, Tables 3-5) is declared as a
:class:`~repro.harness.spec.SweepSpec` and executed through the
experiment harness, so passing a :class:`~repro.harness.ParallelRunner`
fans the grid out over worker processes and/or reuses cached points.
With no runner the experiments run serially in-process, exactly as the
hand-written loops they replaced; results are bit-identical either way
because every sweep point is deterministic.
"""

from __future__ import annotations

from typing import Callable

from repro.analytic.model import FIGURE6_SWEEPS
from repro.apps.registry import APP_NAMES, table2_rows
from repro.common.config import SystemConfig, table1_rows
from repro.harness import ParallelRunner, SweepResult, SweepSpec

PREDICTORS = ("Cosmos", "MSP", "VMSP")

#: Iteration counts for the accuracy experiments.  Larger than each
#: app's default so pattern-table reuse (coverage) approaches the
#: paper's long runs while staying fast in Python.
ACCURACY_ITERATIONS = {
    "appbt": 30,
    "barnes": 40,
    "em3d": 40,
    "moldyn": 40,
    "ocean": 24,
    "tomcatv": 40,
    "unstructured": 32,
}

#: Iteration counts for the (slower) timing-simulator experiments.
PERFORMANCE_ITERATIONS = {
    "appbt": 12,
    "barnes": 15,
    "em3d": 16,
    "moldyn": 14,
    "ocean": 12,
    "tomcatv": 16,
    "unstructured": 12,
}

#: The panels of Figure 6, in the analytic model's declaration order.
FIGURE6_PANELS = tuple(FIGURE6_SWEEPS)


def _scale(iterations: dict[str, int], fast: bool) -> dict[str, int]:
    if not fast:
        return iterations
    return {name: max(4, count // 4) for name, count in iterations.items()}


def _run(spec: SweepSpec, runner: ParallelRunner | None) -> SweepResult:
    return (runner or ParallelRunner()).run(spec)


def accuracy_spec(fast: bool = False, depths: tuple[int, ...] = (1,)) -> SweepSpec:
    """The app x depth accuracy grid behind Figures 7-8 / Tables 3-4."""
    iterations = _scale(ACCURACY_ITERATIONS, fast)
    return SweepSpec(
        kind="accuracy",
        axes={"app": APP_NAMES, "depth": list(depths)},
        base={"predictors": PREDICTORS},
        derive=lambda p: {"iterations": iterations[p["app"]]},
    )


def speculation_spec(fast: bool = False) -> SweepSpec:
    """The per-app timing-simulator grid behind Figure 9 / Table 5.

    ``num_procs`` is spelled out (rather than left to the runner's
    default of 16) so these points are literally the 16-node slice of
    the ``scaling32`` grid and the two studies share cache entries.
    """
    iterations = _scale(PERFORMANCE_ITERATIONS, fast)
    return SweepSpec(
        kind="speculation",
        axes={"app": APP_NAMES},
        base={"num_procs": 16},
        derive=lambda p: {"iterations": iterations[p["app"]]},
    )


#: Node counts of the paper-beyond scaling study (16 is the paper's
#: configuration and the comparison anchor).
SCALING_NODES = (16, 32, 64)


def scaling_spec(
    fast: bool = False, nodes: tuple[int, ...] = SCALING_NODES
) -> SweepSpec:
    """The app x node-count grid behind the ``scaling32`` study.

    Each cell goes through the ordinary ``speculation`` runner with a
    ``num_procs`` override — exactly what ``sweep --kind speculation
    --axis num_procs=16,32,64`` produces, so service, CLI sweep, and
    this named experiment all share cache entries.
    """
    iterations = _scale(PERFORMANCE_ITERATIONS, fast)
    return SweepSpec(
        kind="speculation",
        axes={"app": APP_NAMES, "num_procs": list(nodes)},
        derive=lambda p: {"iterations": iterations[p["app"]]},
    )


# ----------------------------------------------------------------------
# configuration tables
# ----------------------------------------------------------------------
def table1(fast: bool = False, runner: ParallelRunner | None = None):
    """Table 1: system configuration parameters."""
    del fast, runner
    return table1_rows(SystemConfig())


def table2(fast: bool = False, runner: ParallelRunner | None = None):
    """Table 2: applications and input data sets."""
    del fast, runner
    return table2_rows()


# ----------------------------------------------------------------------
# analytic model
# ----------------------------------------------------------------------
def figure6(
    fast: bool = False,
    points: int = 21,
    runner: ParallelRunner | None = None,
) -> dict[str, dict]:
    """Figure 6: speedup of a speculative coherent DSM (4 panels)."""
    del fast
    spec = SweepSpec(
        kind="analytic",
        axes={"panel": FIGURE6_PANELS},
        base={"points": points},
    )
    result = _run(spec, runner)
    panels: dict[str, dict] = {}
    for point, value in result.items():
        panels[point["panel"]] = {
            entry["value"]: [(c, s) for c, s in entry["points"]]
            for entry in value["series"]
        }
    return panels


# ----------------------------------------------------------------------
# predictor accuracy / cost
# ----------------------------------------------------------------------
def figure7(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[str, float]]:
    """Figure 7: prediction accuracy per app, depth 1 (percent)."""
    result = _run(accuracy_spec(fast), runner)
    return {
        point["app"]: {
            name: 100.0 * run["accuracy"] for name, run in value["runs"].items()
        }
        for point, value in result.items()
    }


def figure8(
    fast: bool = False,
    depths: tuple[int, ...] = (1, 2, 4),
    runner: ParallelRunner | None = None,
) -> dict:
    """Figure 8: prediction accuracy at history depths 1, 2, 4."""
    result = _run(accuracy_spec(fast, depths=depths), runner)
    rows: dict[str, dict[int, dict[str, float]]] = {}
    for point, value in result.items():
        rows.setdefault(point["app"], {})[point["depth"]] = {
            name: 100.0 * run["accuracy"] for name, run in value["runs"].items()
        }
    return rows


def table3(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[str, tuple[float, float]]]:
    """Table 3: % messages predicted (and correctly predicted), d=1."""
    result = _run(accuracy_spec(fast), runner)
    return {
        point["app"]: {
            name: (100.0 * run["coverage"], 100.0 * run["correct_fraction"])
            for name, run in value["runs"].items()
        }
        for point, value in result.items()
    }


def table4(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[str, dict[str, float]]]:
    """Table 4: pattern-table entries per block (d=1, d=4), bytes (d=1)."""
    result = _run(accuracy_spec(fast, depths=(1, 4)), runner)
    rows: dict[str, dict[str, dict[str, float]]] = {}
    for app in APP_NAMES:
        shallow = result.value(app=app, depth=1)["runs"]
        deep = result.value(app=app, depth=4)["runs"]
        rows[app] = {
            name: {
                "pte_d1": shallow[name]["average_pte"],
                "pte_d4": deep[name]["average_pte"],
                "ovh_d1": shallow[name]["overhead_bytes"],
            }
            for name in PREDICTORS
        }
    return rows


# ----------------------------------------------------------------------
# speculative DSM performance
# ----------------------------------------------------------------------
def figure9(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[str, tuple[float, float]]]:
    """Figure 9: normalized execution time (comp, request) per system."""
    result = _run(speculation_spec(fast), runner)
    return {
        point["app"]: {
            mode: (entry["comp"], entry["request"])
            for mode, entry in value["modes"].items()
        }
        for point, value in result.items()
    }


def table5(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[str, float]]:
    """Table 5: request counts and speculation/misspeculation rates."""
    result = _run(speculation_spec(fast), runner)
    return {point["app"]: value["table5"] for point, value in result.items()}


# ----------------------------------------------------------------------
# paper-beyond studies
# ----------------------------------------------------------------------
def scaling32(
    fast: bool = False, runner: ParallelRunner | None = None
) -> dict[str, dict[int, dict[str, float]]]:
    """Scaling study: normalized execution time at 16/32/64 nodes.

    Paper-beyond (ROADMAP "wider scenario grids"): reruns the Figure 9
    systems with the node count — and with it the workload
    decomposition — scaled to 32 and 64 nodes.  Rows are
    ``app -> nodes -> {mode: normalized time}``, each node count
    normalized to its own Base-DSM run.
    """
    result = _run(scaling_spec(fast), runner)
    rows: dict[str, dict[int, dict[str, float]]] = {}
    for point, value in result.items():
        rows.setdefault(point["app"], {})[point["num_procs"]] = {
            mode: entry["normalized"] for mode, entry in value["modes"].items()
        }
    return rows


EXPERIMENTS: dict[str, Callable] = {
    "table1": table1,
    "table2": table2,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "table3": table3,
    "table4": table4,
    "figure9": figure9,
    "table5": table5,
    "scaling32": scaling32,
}

#: Experiments with no sweep grid: plain configuration tables, rendered
#: inline wherever they are requested.
STATIC_EXPERIMENTS = frozenset({"table1", "table2"})

#: The grid each grid-shaped experiment expands to.  This is what lets
#: the service run a whole named experiment as one background sweep job
#: (``GET /v1/experiments/<name>``) — the job's points are exactly the
#: points the drivers above run, so the two paths share cache entries.
_EXPERIMENT_SPECS: dict[str, Callable[[bool], SweepSpec]] = {
    "figure6": lambda fast: SweepSpec(
        kind="analytic",
        axes={"panel": list(FIGURE6_PANELS)},
        base={"points": 21},
    ),
    "figure7": lambda fast: accuracy_spec(fast),
    "figure8": lambda fast: accuracy_spec(fast, depths=(1, 2, 4)),
    "table3": lambda fast: accuracy_spec(fast),
    "table4": lambda fast: accuracy_spec(fast, depths=(1, 4)),
    "figure9": lambda fast: speculation_spec(fast),
    "table5": lambda fast: speculation_spec(fast),
    "scaling32": lambda fast: scaling_spec(fast),
}


def experiment_spec(name: str, fast: bool = False) -> SweepSpec | None:
    """The sweep grid behind a named experiment, or None for static tables."""
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown experiment {name!r} (known: {known})")
    builder = _EXPERIMENT_SPECS.get(name)
    return None if builder is None else builder(fast)

#: Paper-beyond studies: registered and servable like any experiment but
#: excluded from a bare ``repro-paper`` run (which reproduces the paper).
EXTRA_EXPERIMENTS = frozenset({"scaling32"})

#: Experiments a bare ``repro-paper`` invocation regenerates.
PAPER_EXPERIMENTS = tuple(
    name for name in EXPERIMENTS if name not in EXTRA_EXPERIMENTS
)


def experiment_catalog() -> list[dict[str, str | bool]]:
    """Name, one-line description, and provenance of every experiment.

    This is what ``GET /v1/experiments`` serves.
    """
    catalog = []
    for name, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        catalog.append(
            {
                "name": name,
                "description": doc[0] if doc else "",
                "paper": name not in EXTRA_EXPERIMENTS,
            }
        )
    return catalog


def run_experiment(name: str, fast: bool = False, runner: ParallelRunner | None = None):
    """Run one experiment by its paper id (e.g. 'figure7')."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    return fn(fast=fast, runner=runner)
