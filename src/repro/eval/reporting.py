"""ASCII renderers that print each experiment like the paper shows it."""

from __future__ import annotations

from repro.apps.registry import APP_NAMES
from repro.eval import experiments as exp
from repro.eval.performance import PAPER_MODES

PREDICTORS = exp.PREDICTORS


def _rule(width: int = 78) -> str:
    return "-" * width


def render_table1(fast: bool = False, runner=None) -> str:
    lines = ["Table 1: System configuration parameters.", _rule(58)]
    for name, value in exp.table1(fast=fast, runner=runner):
        lines.append(f"{name:<44s} {value:>12s}")
    return "\n".join(lines)


def render_table2(fast: bool = False, runner=None) -> str:
    lines = [
        "Table 2: Applications and input data sets (paper-scale).",
        _rule(58),
        f"{'Application':<14s} {'Input Data Sets':<28s} {'Iterations':>10s}",
    ]
    for name, inputs, iterations in exp.table2(fast=fast, runner=runner):
        lines.append(f"{name:<14s} {inputs:<28s} {iterations:>10d}")
    return "\n".join(lines)


def render_figure6(fast: bool = False, points: int = 11, runner=None) -> str:
    panels = exp.figure6(fast=fast, points=points, runner=runner)
    lines = ["Figure 6: Potential speedup in a speculative coherent DSM."]
    for panel_name, series in panels.items():
        lines.append("")
        lines.append(f"[panel: {panel_name} sweep]  speedup vs communication ratio c")
        ratios = [c for c, _s in next(iter(series.values()))]
        header = "value".ljust(8) + "".join(f"c={c:<5.2f}" for c in ratios)
        lines.append(header)
        for value, points_list in series.items():
            row = f"{value:<8g}" + "".join(f"{s:<7.2f}" for _c, s in points_list)
            lines.append(row)
    return "\n".join(lines)


def render_figure7(fast: bool = False, runner=None) -> str:
    rows = exp.figure7(fast=fast, runner=runner)
    lines = [
        "Figure 7: Base predictor accuracy comparison (history depth 1, %).",
        _rule(58),
        f"{'Application':<14s}" + "".join(f"{p:>10s}" for p in PREDICTORS),
    ]
    for app in APP_NAMES:
        lines.append(
            f"{app:<14s}"
            + "".join(f"{rows[app][p]:>10.1f}" for p in PREDICTORS)
        )
    means = [
        sum(rows[app][p] for app in APP_NAMES) / len(APP_NAMES)
        for p in PREDICTORS
    ]
    lines.append(_rule(58))
    lines.append(f"{'mean':<14s}" + "".join(f"{m:>10.1f}" for m in means))
    return "\n".join(lines)


def render_figure8(fast: bool = False, runner=None) -> str:
    rows = exp.figure8(fast=fast, runner=runner)
    lines = [
        "Figure 8: Predictor accuracy with varying history depth (%).",
        _rule(78),
        f"{'Application':<14s}"
        + "".join(f"{p + ' d=' + str(d):>12s}" for p in PREDICTORS for d in (1, 2, 4)),
    ]
    for app in APP_NAMES:
        cells = []
        for predictor in PREDICTORS:
            for depth in (1, 2, 4):
                cells.append(f"{rows[app][depth][predictor]:>12.1f}")
        lines.append(f"{app:<14s}" + "".join(cells))
    return "\n".join(lines)


def render_table3(fast: bool = False, runner=None) -> str:
    rows = exp.table3(fast=fast, runner=runner)
    lines = [
        "Table 3: Messages predicted (and correctly predicted), depth 1 (%).",
        _rule(62),
        f"{'Application':<14s}" + "".join(f"{p:>16s}" for p in PREDICTORS),
    ]
    for app in APP_NAMES:
        cells = []
        for predictor in PREDICTORS:
            coverage, correct = rows[app][predictor]
            cells.append(f"{coverage:>8.0f} ({correct:>4.0f})")
        lines.append(f"{app:<14s}" + "".join(f"{c:>16s}" for c in cells))
    return "\n".join(lines)


def render_table4(fast: bool = False, runner=None) -> str:
    rows = exp.table4(fast=fast, runner=runner)
    lines = [
        "Table 4: Predictor storage overhead "
        "(pattern-table entries per block; bytes at depth 1).",
        _rule(78),
        f"{'Application':<14s}"
        + "".join(
            f"{p + ' ' + col:>12s}"
            for p in PREDICTORS
            for col in ("pte d1", "pte d4", "ovh B")
        ),
    ]
    for app in APP_NAMES:
        cells = []
        for predictor in PREDICTORS:
            data = rows[app][predictor]
            cells.append(f"{data['pte_d1']:>12.1f}")
            cells.append(f"{data['pte_d4']:>12.1f}")
            cells.append(f"{data['ovh_d1']:>12.1f}")
        lines.append(f"{app:<14s}" + "".join(cells))
    return "\n".join(lines)


def render_figure9(fast: bool = False, runner=None) -> str:
    rows = exp.figure9(fast=fast, runner=runner)
    lines = [
        "Figure 9: Execution time normalized to Base-DSM "
        "(comp incl. sync / request wait, %).",
        _rule(78),
        f"{'Application':<14s}"
        + "".join(f"{mode.value:>20s}" for mode in PAPER_MODES),
    ]
    for app in APP_NAMES:
        cells = []
        for mode in PAPER_MODES:
            comp, request = rows[app][mode.value]
            total = comp + request
            cells.append(
                f"{100 * total:>7.0f} ({100 * comp:>3.0f}+{100 * request:>3.0f})"
            )
        lines.append(f"{app:<14s}" + "".join(f"{c:>20s}" for c in cells))
    return "\n".join(lines)


def render_table5(fast: bool = False, runner=None) -> str:
    rows = exp.table5(fast=fast, runner=runner)
    lines = [
        "Table 5: Frequency of requests, speculations, and misspeculations.",
        "(reads/writes: Base-DSM counts; other columns: % of Base-DSM requests)",
        _rule(100),
        f"{'Application':<14s}{'reads':>8s}{'writes':>8s}"
        f"{'FR sent':>9s}{'FR miss':>9s}"
        f"{'swiFR sent':>11s}{'swiFR miss':>11s}"
        f"{'SWI sent':>9s}{'SWI miss':>9s}"
        f"{'WI sent':>9s}{'WI miss':>9s}",
    ]
    for app in APP_NAMES:
        row = rows[app]
        lines.append(
            f"{app:<14s}{row['reads']:>8.0f}{row['writes']:>8.0f}"
            f"{row['fr_read_sent']:>9.0f}{row['fr_read_miss']:>9.0f}"
            f"{row['swi_fr_read_sent']:>11.0f}{row['swi_fr_read_miss']:>11.0f}"
            f"{row['swi_read_sent']:>9.0f}{row['swi_read_miss']:>9.0f}"
            f"{row['wi_sent']:>9.0f}{row['wi_miss']:>9.0f}"
        )
    return "\n".join(lines)


def render_scaling32(fast: bool = False, runner=None) -> str:
    rows = exp.scaling32(fast=fast, runner=runner)
    from repro.eval.experiments import SCALING_NODES

    lines = [
        "Scaling study (paper-beyond): normalized execution time "
        "at 16/32/64 nodes (%).",
        "(each node count normalized to its own Base-DSM run)",
        _rule(78),
        f"{'Application':<14s}{'nodes':>7s}"
        + "".join(f"{mode.value:>16s}" for mode in PAPER_MODES),
    ]
    for app in APP_NAMES:
        for nodes in SCALING_NODES:
            cells = "".join(
                f"{100 * rows[app][nodes][mode.value]:>16.0f}"
                for mode in PAPER_MODES
            )
            lines.append(f"{app:<14s}{nodes:>7d}{cells}")
    return "\n".join(lines)


RENDERERS = {
    "table1": render_table1,
    "table2": render_table2,
    "figure6": render_figure6,
    "figure7": render_figure7,
    "figure8": render_figure8,
    "table3": render_table3,
    "table4": render_table4,
    "figure9": render_figure9,
    "table5": render_table5,
    "scaling32": render_scaling32,
}


def render(name: str, fast: bool = False, runner=None) -> str:
    """Render one experiment as the paper presents it."""
    try:
        renderer = RENDERERS[name]
    except KeyError:
        known = ", ".join(RENDERERS)
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    return renderer(fast=fast, runner=runner)
