"""Experiment drivers and renderers for every table and figure.

Each experiment function regenerates one table or figure of the paper's
evaluation (Section 7) from the reproduction's own simulators:

================  ===============================================
``figure6``       analytic-model speedup sweeps (4 panels)
``figure7``       base predictor accuracy, history depth 1
``figure8``       predictor accuracy at depths 1 / 2 / 4
``figure9``       Base-DSM vs FR-DSM vs SWI-DSM execution time
``table1``        simulated system configuration
``table2``        applications and input sets
``table3``        messages predicted (and correctly predicted)
``table4``        predictor storage overhead
``table5``        request / speculation / misspeculation rates
================  ===============================================
"""

from repro.eval.accuracy import PredictorRun, run_predictors
from repro.eval.experiments import (
    EXPERIMENTS,
    figure6,
    figure7,
    figure8,
    figure9,
    run_experiment,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.eval.performance import SpeculationRun, run_speculation

__all__ = [
    "EXPERIMENTS",
    "PredictorRun",
    "SpeculationRun",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "run_experiment",
    "run_predictors",
    "run_speculation",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
]
