"""Timing-simulator evaluation (Figure 9 and Table 5)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import make_app
from repro.common.config import SystemConfig
from repro.sim.machine import Machine, MachineMode, RunResult


#: The three system variants the paper evaluates (Figure 9 / Table 5);
#: MIG-DSM is this reproduction's extension and is benchmarked separately.
PAPER_MODES = (MachineMode.BASE, MachineMode.FR, MachineMode.SWI)


@dataclass(slots=True)
class SpeculationRun:
    """Base / FR / SWI results for one application."""

    app: str
    base: RunResult
    fr: RunResult
    swi: RunResult

    def result(self, mode: MachineMode) -> RunResult:
        return {
            MachineMode.BASE: self.base,
            MachineMode.FR: self.fr,
            MachineMode.SWI: self.swi,
        }[mode]

    # ------------------------------------------------------------------
    # Figure 9 quantities (normalized to Base-DSM)
    # ------------------------------------------------------------------
    def normalized_time(self, mode: MachineMode) -> float:
        return self.result(mode).cycles / self.base.cycles

    def breakdown(self, mode: MachineMode) -> tuple[float, float]:
        """(computation, request-wait) shares of normalized time.

        The paper folds synchronization into computation (Figure 9's
        "comp" includes barrier and lock time).
        """
        run = self.result(mode)
        total = self.normalized_time(mode)
        request = total * run.request_fraction
        return (total - request, request)

    # ------------------------------------------------------------------
    # Table 5 quantities (percentages of Base-DSM request counts)
    # ------------------------------------------------------------------
    def table5_row(self) -> dict[str, float]:
        reads = self.base.read_requests or 1
        writes = self.base.write_requests or 1
        fr_spec = self.fr.speculation
        swi_spec = self.swi.speculation
        return {
            "reads": self.base.read_requests,
            "writes": self.base.write_requests,
            "fr_read_sent": 100.0 * fr_spec.fr_sent / reads,
            "fr_read_miss": 100.0 * fr_spec.fr_missed / reads,
            "swi_fr_read_sent": 100.0 * swi_spec.fr_sent / reads,
            "swi_fr_read_miss": 100.0 * swi_spec.fr_missed / reads,
            "swi_read_sent": 100.0 * swi_spec.swi_sent / reads,
            "swi_read_miss": 100.0 * swi_spec.swi_missed / reads,
            "wi_sent": 100.0 * swi_spec.wi_sent / writes,
            "wi_miss": 100.0 * swi_spec.wi_premature / writes,
        }


def run_speculation(
    app_name: str,
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    config: SystemConfig | None = None,
    engine: str = "fast",
) -> SpeculationRun:
    """Run one application on all three machine variants.

    ``engine`` selects the timing engine (``"fast"`` calendar queue,
    ``"compiled"`` timing-trace record/replay, ``"reference"`` heapq
    baseline).  All are bit-identical per the golden equivalence
    suite, so results — and cached sweep entries — are valid whichever
    engine computed them.  The compiled engine addresses its traces by
    the app parameters passed here, so repeat calls (and any process
    sharing the trace-cache directory) replay instead of simulating.
    """
    from repro.sim.fastevents import ENGINES

    if engine not in ENGINES:
        # Fail before the workload is built, with the full menu — the
        # CLI/service surfaces relay this message verbatim.
        raise ValueError(
            f"unknown timing engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    app = make_app(app_name, num_procs=num_procs, iterations=iterations, seed=seed)
    workload = app.build()
    cfg = config or SystemConfig(num_nodes=num_procs)
    trace_key = {
        "app": app_name,
        "num_procs": num_procs,
        "iterations": app.iterations,
        "seed": seed,
    }
    results = {}
    for mode in PAPER_MODES:
        machine = Machine(
            workload, config=cfg, mode=mode, engine=engine, trace_key=trace_key
        )
        results[mode] = machine.run()
    return SpeculationRun(
        app=app_name,
        base=results[MachineMode.BASE],
        fr=results[MachineMode.FR],
        swi=results[MachineMode.SWI],
    )
