"""Trace-driven predictor evaluation (Figures 7-8, Tables 3-4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import make_app
from repro.common.rng import DeterministicRng
from repro.predictors import PREDICTOR_CLASSES, DirectoryPredictor
from repro.predictors.base import PredictionStats
from repro.protocol.emulator import ProtocolEmulator


@dataclass(slots=True)
class PredictorRun:
    """Outcome of training one predictor on one application's trace."""

    app: str
    predictor: str
    depth: int
    stats: PredictionStats
    average_pte: float
    overhead_bytes: float

    @property
    def accuracy(self) -> float:
        return self.stats.accuracy

    @property
    def coverage(self) -> float:
        return self.stats.coverage

    @property
    def correct_fraction(self) -> float:
        return self.stats.correct_fraction


def run_predictors(
    app_name: str,
    depth: int = 1,
    predictors: tuple[str, ...] = ("Cosmos", "MSP", "VMSP"),
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    race_seed: int | str = 7,
) -> dict[str, PredictorRun]:
    """Train the named predictors on one application's directory trace.

    All predictors observe the *same* message stream (including the
    same race outcomes), exactly as the paper compares them.
    """
    app = make_app(app_name, num_procs=num_procs, iterations=iterations, seed=seed)
    workload = app.build()
    emulator = ProtocolEmulator(DeterministicRng(race_seed))
    instances: dict[str, DirectoryPredictor] = {
        name: PREDICTOR_CLASSES[name](depth=depth) for name in predictors
    }
    for _block, messages in emulator.run(workload.block_scripts()):
        for message in messages:
            for predictor in instances.values():
                predictor.observe(message)
    results: dict[str, PredictorRun] = {}
    for name, predictor in instances.items():
        flush = getattr(predictor, "flush", None)
        if flush is not None:
            flush()
        average_pte = predictor.average_pattern_entries()
        profile = predictor.storage_profile(num_procs, depth)
        results[name] = PredictorRun(
            app=app_name,
            predictor=name,
            depth=depth,
            stats=predictor.stats,
            average_pte=average_pte,
            overhead_bytes=profile.bytes_per_block(average_pte),
        )
    return results
