"""Trace-driven predictor evaluation (Figures 7-8, Tables 3-4).

Two engines produce the same numbers:

* ``"vectorized"`` (default) — the columnar trace pipeline: the
  workload's message stream is compiled once
  (:func:`repro.trace.compile_app_trace`, cache-first) and every
  predictor is scored with batched numpy passes
  (:func:`repro.trace.evaluate_trace`).  One emulation feeds all
  predictors and depths.
* ``"reference"`` — the original per-message path: each predictor
  object observes every message in Python.  This is the semantic
  definition the vectorized engine is tested against
  (``tests/trace/test_vectorized.py``), kept as the executable contract.

Both engines are bit-identical, so cached sweep results are valid
whichever engine computed them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import make_app
from repro.common.rng import DeterministicRng
from repro.predictors import PREDICTOR_CLASSES, DirectoryPredictor
from repro.predictors.base import PredictionStats
from repro.protocol.emulator import ProtocolEmulator

#: The evaluation engines ``run_predictors`` accepts.
ENGINES = ("vectorized", "reference")


@dataclass(slots=True)
class PredictorRun:
    """Outcome of training one predictor on one application's trace."""

    app: str
    predictor: str
    depth: int
    stats: PredictionStats
    average_pte: float
    overhead_bytes: float

    @property
    def accuracy(self) -> float:
        return self.stats.accuracy

    @property
    def coverage(self) -> float:
        return self.stats.coverage

    @property
    def correct_fraction(self) -> float:
        return self.stats.correct_fraction


def run_predictors(
    app_name: str,
    depth: int = 1,
    predictors: tuple[str, ...] = ("Cosmos", "MSP", "VMSP"),
    num_procs: int = 16,
    iterations: int | None = None,
    seed: int | str = 1999,
    race_seed: int | str = 7,
    engine: str = "vectorized",
) -> dict[str, PredictorRun]:
    """Train the named predictors on one application's directory trace.

    All predictors observe the *same* message stream (including the
    same race outcomes), exactly as the paper compares them.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    if engine == "vectorized":
        return _run_vectorized(
            app_name,
            depth=depth,
            predictors=predictors,
            num_procs=num_procs,
            iterations=iterations,
            seed=seed,
            race_seed=race_seed,
        )
    return _run_reference(
        app_name,
        depth=depth,
        predictors=predictors,
        num_procs=num_procs,
        iterations=iterations,
        seed=seed,
        race_seed=race_seed,
    )


def _run_vectorized(
    app_name: str,
    depth: int,
    predictors: tuple[str, ...],
    num_procs: int,
    iterations: int | None,
    seed: int | str,
    race_seed: int | str,
) -> dict[str, PredictorRun]:
    from repro.trace import compile_app_trace, evaluate_trace

    trace = compile_app_trace(
        app_name,
        num_procs=num_procs,
        iterations=iterations,
        seed=seed,
        race_seed=race_seed,
    )
    results: dict[str, PredictorRun] = {}
    for name in predictors:
        evaluation = evaluate_trace(trace, name, depth=depth)
        profile = PREDICTOR_CLASSES[name].storage_profile(num_procs, depth)
        results[name] = PredictorRun(
            app=app_name,
            predictor=name,
            depth=depth,
            stats=evaluation.stats,
            average_pte=evaluation.average_pte,
            overhead_bytes=profile.bytes_per_block(evaluation.average_pte),
        )
    return results


def _run_reference(
    app_name: str,
    depth: int,
    predictors: tuple[str, ...],
    num_procs: int,
    iterations: int | None,
    seed: int | str,
    race_seed: int | str,
) -> dict[str, PredictorRun]:
    app = make_app(app_name, num_procs=num_procs, iterations=iterations, seed=seed)
    workload = app.build()
    emulator = ProtocolEmulator(DeterministicRng(race_seed))
    instances: dict[str, DirectoryPredictor] = {
        name: PREDICTOR_CLASSES[name](depth=depth) for name in predictors
    }
    for _block, messages in emulator.run(workload.block_scripts()):
        for message in messages:
            for predictor in instances.values():
                predictor.observe(message)
    results: dict[str, PredictorRun] = {}
    for name, predictor in instances.items():
        flush = getattr(predictor, "flush", None)
        if flush is not None:
            flush()
        average_pte = predictor.average_pattern_entries()
        profile = predictor.storage_profile(num_procs, depth)
        results[name] = PredictorRun(
            app=app_name,
            predictor=name,
            depth=depth,
            stats=predictor.stats,
            average_pte=average_pte,
            overhead_bytes=profile.bytes_per_block(average_pte),
        )
    return results
