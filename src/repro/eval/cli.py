"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-paper                  # run everything
    repro-paper figure7 table5   # run specific experiments
    repro-paper --fast           # quarter-size runs for a quick look
    repro-paper --list           # list experiment ids
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.reporting import RENDERERS, render


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduce the tables and figures of Lai & Falsafi, 'Memory "
            "Sharing Predictor: The Key to a Speculative Coherent DSM' "
            "(ISCA 1999)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="quarter-size workloads for a quick smoke run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in RENDERERS:
            print(name)
        return 0

    names = args.experiments or list(RENDERERS)
    unknown = [n for n in names if n not in RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(known: {', '.join(RENDERERS)})"
        )

    for name in names:
        started = time.perf_counter()
        output = render(name, fast=args.fast)
        elapsed = time.perf_counter() - started
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
