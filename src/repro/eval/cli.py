"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-paper                    # reproduce the paper (all its figures/tables)
    repro-paper figure7 table5     # run specific experiments
    repro-paper --fast --jobs 4    # quarter-size runs, 4 worker processes
    repro-paper --refresh figure9  # recompute, ignoring cached points
    repro-paper --list             # list experiment ids
    repro-paper scaling32          # paper-beyond studies run when named

Grid-shaped experiments execute through the parallel harness: ``--jobs``
fans sweep points out over worker processes and every computed point is
cached under ``--cache-dir`` (default ``.repro-cache``, override with
``REPRO_CACHE_DIR``), so re-running a figure only recomputes what
changed.  ``--no-cache`` disables the store, ``--refresh`` overwrites it.

The ``sweep`` subcommand runs arbitrary user-defined grids beyond the
paper's own, printing one JSON object per point::

    repro-paper sweep --kind accuracy --axis app=em3d,moldyn \\
        --axis depth=1,2,4 --set iterations=8 --jobs 4

Accuracy points run on the vectorized trace pipeline and speculation
points on the calendar-queue timing engine by default; ``--set
engine=compiled`` selects timing-trace record/replay and ``--set
engine=reference`` the frozen baselines.  All engines are
bit-identical, so the setting is excluded from cache keys
(docs/performance.md).

Several workers — processes or hosts — can divide one grid between
them: point each at the same ``--cache-dir`` plus a shared
``--claim-dir`` (canonically ``<cache-dir>/claims``) and every point
is claimed before it is computed, so the grid is computed exactly once
across the fleet (``--worker-id`` names each worker; stale claims of
crashed workers are stolen after ``--claim-ttl``).  ``sweep --follow``
tails a grid other workers are computing without computing anything
itself.  See docs/harness.md.

The ``serve`` subcommand exposes the same sweep points over HTTP —
cached results answer instantly, misses are computed in a worker pool
with request coalescing (see ``docs/service.md``)::

    repro-paper serve --port 8599 --jobs 2
    curl 'http://127.0.0.1:8599/v1/point?kind=accuracy&app=em3d&depth=2'

The ``session`` subcommand streams an application's coherence-message
trace through a live prediction session on such a server and prints
the final summary — whose ``run`` object is byte-identical to the
matching batch sweep point::

    repro-paper session --url http://127.0.0.1:8599 \\
        --app em3d --predictor MSP --depth 2 --num-procs 4

The ``fleet`` subcommand renders a claims directory's ``events.log``
into a who-computed-what status table — per-worker counters, currently
held claims with heartbeat ages, and an exactly-once audit — without
joining the fleet or taking any claims itself::

    repro-paper fleet --cache-dir /shared/cache        # <cache-dir>/claims
    repro-paper fleet --claim-dir /shared/claims --json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any

from repro.common.literals import parse_literal
from repro.eval.reporting import RENDERERS, render
from repro.harness import (
    DEFAULT_CLAIM_TTL_S,
    MISS,
    ClaimBoard,
    ClaimedRunner,
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepSpec,
    runner_kinds,
    validate_point_params,
)

def _default_cache_dir() -> str:
    """Resolved per invocation so REPRO_CACHE_DIR set after import works."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all cores)")
    return value


def _add_harness_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="worker processes for sweep execution (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep-point result cache (default: .repro-cache, "
        "or the REPRO_CACHE_DIR environment variable)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every point without reading or writing the cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every point and overwrite cached results",
    )
    parser.add_argument(
        "--claim-dir",
        default=None,
        metavar="DIR",
        help="coordinate with other workers through claim files in DIR "
        "(canonically <cache-dir>/claims): N processes or hosts pointed "
        "at one shared --cache-dir divide a grid between them, each "
        "point computed exactly once (see docs/harness.md)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="claim owner id for this worker (default: host:pid)",
    )
    parser.add_argument(
        "--claim-ttl",
        type=float,
        default=DEFAULT_CLAIM_TTL_S,
        metavar="SECONDS",
        help="heartbeat silence before a crashed worker's claims are "
        f"stolen (default {DEFAULT_CLAIM_TTL_S:.0f}s)",
    )


def _validate_claim_options(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    """Reject claim-flag combinations that contradict the protocol."""
    if args.claim_dir is None:
        return
    if args.no_cache:
        parser.error("--claim-dir requires the result cache (drop --no-cache)")
    if args.refresh:
        parser.error(
            "--claim-dir cannot be combined with --refresh "
            "(every worker would recompute every point)"
        )
    if args.claim_ttl <= 0:
        parser.error("--claim-ttl must be > 0 seconds")


def _make_runner(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> ParallelRunner | ClaimedRunner:
    from repro.trace import configure_trace_cache

    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    store = None if args.no_cache else ResultStore(cache_dir)
    # Compiled traces share the point cache's directory (under trace/);
    # forked sweep workers inherit the configuration.
    configure_trace_cache(None if args.no_cache else cache_dir)
    runner = ParallelRunner(jobs=args.jobs, store=store, refresh=args.refresh)
    if args.claim_dir is None:
        return runner
    _validate_claim_options(args, parser)
    return ClaimedRunner(
        runner,
        ClaimBoard(args.claim_dir, owner=args.worker_id, ttl_s=args.claim_ttl),
    )


def _parse_axis(text: str) -> tuple[str, list[Any]]:
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"expected NAME=V1,V2,... got {text!r}"
        )
    return name, [parse_literal(v) for v in values.split(",")]


def _parse_setting(text: str) -> tuple[str, Any]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    return name, parse_literal(value)


def _sweep_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-paper sweep",
        description=(
            "Run a user-defined parameter grid through the experiment "
            "harness and print one JSON object per sweep point."
        ),
        epilog=(
            "Engine switches: accuracy points accept --set "
            "engine=vectorized|reference (the columnar trace pipeline "
            "or the per-message predictors) and speculation points "
            "accept --set engine=fast|compiled|reference (the calendar "
            "queue, timing-trace record/replay, or the heapq "
            "baseline).  All are bit-identical, so engine is excluded "
            "from cache keys; see docs/performance.md."
        ),
    )
    parser.add_argument(
        "--kind",
        required=True,
        choices=runner_kinds(),
        help="which point runner executes each grid cell",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="a swept parameter (repeatable); the grid is the product",
    )
    parser.add_argument(
        "--set",
        dest="settings",
        action="append",
        default=[],
        type=_parse_setting,
        metavar="NAME=VALUE",
        help="a fixed parameter shared by every point (repeatable)",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="compute nothing: tail the cache until every grid point "
        "has been computed (e.g. by claimed workers on other hosts), "
        "printing each point as it lands",
    )
    parser.add_argument(
        "--follow-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up following after this long with points still missing",
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)
    if not args.axis:
        parser.error("at least one --axis is required")

    spec = SweepSpec(kind=args.kind, axes=dict(args.axis), base=dict(args.settings))
    # Fail fast on parameters that can never run (e.g. an unknown
    # --set engine=...), before any point is claimed or computed.  Grid
    # *expansion* errors (non-canonicalizable values like nested NaN)
    # keep their "invalid sweep parameters" reporting further down.
    try:
        points = spec.points()
    except (TypeError, ValueError):
        points = []
    try:
        for point in points:
            validate_point_params(point.kind, point.as_dict())
    except ValueError as exc:
        print(f"repro-paper sweep: error: {exc}", file=sys.stderr)
        return 2
    if args.follow:
        if args.no_cache:
            parser.error("--follow requires the result cache (drop --no-cache)")
        if args.refresh:
            parser.error("--follow computes nothing; it cannot --refresh")
        if args.claim_dir is not None:
            parser.error(
                "--follow computes nothing and takes no claims; drop --claim-dir"
            )
        cache_dir = (
            args.cache_dir if args.cache_dir is not None else _default_cache_dir()
        )
        return _follow_sweep(spec, ResultStore(cache_dir), args.follow_timeout)
    started = time.perf_counter()
    runner = _make_runner(args, parser)
    try:
        result = runner.run(spec)
    except SweepError as exc:
        print(f"repro-paper sweep: error: {exc}", file=sys.stderr)
        return 1
    except (TypeError, ValueError) as exc:
        print(
            f"repro-paper sweep: error: invalid sweep parameters: {exc}",
            file=sys.stderr,
        )
        return 1
    finally:
        runner.close()
    elapsed = time.perf_counter() - started
    # sort_keys: a freshly computed result and one loaded back from the
    # store must print identical bytes (the store writes sorted JSON),
    # so serial, cached, claimed, and --follow output all compare equal.
    for point, value in result.items():
        print(json.dumps({"params": point.as_dict(), "result": value}, sort_keys=True))
    report = result.report
    timing = report.timing_summary()
    claims = getattr(runner, "claims", None)
    claimed = ""
    if claims is not None:
        stats = claims.stats()
        claimed = (
            f"; claims: {stats['computed']} computed, "
            f"{stats['stolen']} stolen as {stats['owner']}"
        )
    print(
        f"[{len(result)} points in {elapsed:.1f}s: {report.executed} executed, "
        f"{report.cached} cached, jobs={report.jobs}"
        + (f"; {timing}" if timing else "")
        + claimed
        + "]",
        file=sys.stderr,
    )
    return 0


def _follow_sweep(
    spec: SweepSpec,
    store: ResultStore,
    timeout_s: float | None,
    poll_s: float = 0.25,
) -> int:
    """Tail a grid another worker is computing: print points as they land.

    Output is byte-identical to a normal ``sweep`` over the same grid —
    every grid point in grid order, one JSON object per line — so a
    follower on one host can pipe the results of workers on others.
    """
    points = spec.points()
    started = time.perf_counter()
    deadline = None if timeout_s is None else started + timeout_s
    for point in points:
        while True:
            entry = store.load_entry(point)
            if entry is not MISS:
                print(
                    json.dumps(
                        {"params": point.as_dict(), "result": entry.result},
                        sort_keys=True,
                    ),
                    flush=True,
                )
                break
            if deadline is not None and time.perf_counter() > deadline:
                print(
                    f"repro-paper sweep: error: --follow timed out after "
                    f"{timeout_s}s with points still missing from "
                    f"{store.root}",
                    file=sys.stderr,
                )
                return 1
            time.sleep(poll_s)
    elapsed = time.perf_counter() - started
    print(
        f"[{len(points)} points followed in {elapsed:.1f}s from {store.root}]",
        file=sys.stderr,
    )
    return 0


def _serve_main(argv: list[str]) -> int:
    from repro.service import ServiceConfig
    from repro.service.server import run_service

    parser = argparse.ArgumentParser(
        prog="repro-paper serve",
        description=(
            "Serve sweep points over HTTP: cached results answer "
            "instantly, misses are computed in a worker pool with "
            "request coalescing.  Endpoints: GET /v1/point, "
            "POST /v1/sweep, GET /v1/jobs/<id>, GET /v1/experiments, "
            "POST /v1/sessions (streaming prediction sessions), "
            "GET /healthz, GET /statz, GET /metrics (Prometheus text "
            "format).  See docs/service.md."
        ),
        epilog=(
            "Operability: --api-key (or REPRO_API_KEY) requires every "
            "request except /healthz to present the key via "
            "'Authorization: Bearer' or 'X-API-Key'; /metrics exposes "
            "the /statz counters in Prometheus text format; the hot "
            "tier (--hot-entries/--hot-bytes) serves repeat cache hits "
            "from memory.  'repro-paper fleet' summarizes a claims "
            "directory shared by several replicas."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8599,
        help="listening port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=16,
        metavar="N",
        help="in-flight computation bound before requests get 429",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request compute timeout (responses 504 past it; "
        "the computation finishes and is cached anyway)",
    )
    from repro.service.sessions import (
        DEFAULT_MAX_EVENTS,
        DEFAULT_MAX_SESSIONS,
        DEFAULT_SESSION_TTL_S,
    )

    parser.add_argument(
        "--max-sessions",
        type=int,
        default=DEFAULT_MAX_SESSIONS,
        metavar="N",
        help="live streaming-session bound before POST /v1/sessions "
        f"gets 429 (default {DEFAULT_MAX_SESSIONS})",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=DEFAULT_SESSION_TTL_S,
        metavar="SECONDS",
        help="idle time before a session is reaped "
        f"(default {DEFAULT_SESSION_TTL_S:.0f}s)",
    )
    parser.add_argument(
        "--session-max-events",
        type=int,
        default=DEFAULT_MAX_EVENTS,
        metavar="N",
        help="per-session event bound before batches get 413 "
        f"(default {DEFAULT_MAX_EVENTS})",
    )
    from repro.harness import DEFAULT_HOT_BYTES, DEFAULT_HOT_ENTRIES

    parser.add_argument(
        "--api-key",
        default=os.environ.get("REPRO_API_KEY"),
        metavar="KEY",
        help="require this API key on every endpoint except /healthz "
        "(default: the REPRO_API_KEY environment variable; unset = "
        "no auth)",
    )
    parser.add_argument(
        "--hot-entries",
        type=int,
        default=DEFAULT_HOT_ENTRIES,
        metavar="N",
        help="in-memory hot-tier entry bound in front of the cache "
        f"(0 disables the tier; default {DEFAULT_HOT_ENTRIES})",
    )
    parser.add_argument(
        "--hot-bytes",
        type=int,
        default=DEFAULT_HOT_BYTES,
        metavar="BYTES",
        help="in-memory hot-tier byte bound "
        f"(0 disables the tier; default {DEFAULT_HOT_BYTES})",
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)
    if args.max_pending < 1:
        parser.error("--max-pending must be >= 1")
    if args.max_sessions < 1:
        parser.error("--max-sessions must be >= 1")
    if args.session_ttl <= 0:
        parser.error("--session-ttl must be > 0 seconds")
    if args.session_max_events < 1:
        parser.error("--session-max-events must be >= 1")
    if args.hot_entries < 0 or args.hot_bytes < 0:
        parser.error("--hot-entries/--hot-bytes must be >= 0 (0 disables)")
    _validate_claim_options(args, parser)

    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir,
        refresh=args.refresh,
        max_pending=args.max_pending,
        timeout_s=args.timeout,
        claim_dir=args.claim_dir,
        worker_id=args.worker_id,
        claim_ttl_s=args.claim_ttl,
        max_sessions=args.max_sessions,
        session_ttl_s=args.session_ttl,
        session_max_events=args.session_max_events,
        api_key=args.api_key,
        hot_entries=args.hot_entries,
        hot_bytes=args.hot_bytes,
    )

    def announce(service) -> None:
        auth = " (API key required)" if config.api_key else ""
        print(f"repro-paper serve: listening on {service.url}{auth}", flush=True)

    return run_service(config, announce)


def _fleet_main(argv: list[str]) -> int:
    """``repro-paper fleet``: render a claims directory into a status table.

    Read-only by design — it parses ``events.log`` and stats the live
    ``*.claim`` files, but never takes, refreshes, or steals a claim,
    so it is safe to run against a fleet mid-computation.
    """
    parser = argparse.ArgumentParser(
        prog="repro-paper fleet",
        description=(
            "Summarize the claim coordination of workers sharing one "
            "cache: per-worker claimed/computed/stolen counters from "
            "events.log, currently held claims with heartbeat ages, "
            "and an exactly-once audit flagging any point computed "
            "more than once."
        ),
    )
    parser.add_argument(
        "--claim-dir",
        default=None,
        metavar="DIR",
        help="claims directory to inspect "
        "(default: <cache-dir>/claims)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache dir whose claims/ subdirectory to inspect "
        "(default: .repro-cache, or REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--claim-ttl",
        type=float,
        default=DEFAULT_CLAIM_TTL_S,
        metavar="SECONDS",
        help="heartbeat age past which a held claim is flagged stale "
        f"(default {DEFAULT_CLAIM_TTL_S:.0f}s)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of the table",
    )
    args = parser.parse_args(argv)
    if args.claim_ttl <= 0:
        parser.error("--claim-ttl must be > 0 seconds")

    from pathlib import Path

    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    claim_dir = Path(
        args.claim_dir if args.claim_dir is not None else Path(cache_dir) / "claims"
    )
    if not claim_dir.is_dir():
        print(
            f"repro-paper fleet: error: no claims directory at {claim_dir} "
            "(point --claim-dir or --cache-dir at a fleet's shared cache)",
            file=sys.stderr,
        )
        return 1
    # ClaimBoard only to reuse its event/claim parsing: constructing it
    # registers no claims and writes nothing (the dir already exists).
    board = ClaimBoard(claim_dir, owner="fleet-status", ttl_s=args.claim_ttl)
    events = board.events()

    counted_events = ("claimed", "computed", "released", "stolen", "lost")
    owners: dict[str, dict[str, int]] = {}
    computed_keys: dict[str, int] = {}
    for record in events:
        event = record.get("event")
        owner = record.get("owner")
        if event not in counted_events or not isinstance(owner, str):
            continue
        row = owners.setdefault(owner, {name: 0 for name in counted_events})
        row[event] += 1
        if event == "computed" and isinstance(record.get("key"), str):
            computed_keys[record["key"]] = computed_keys.get(record["key"], 0) + 1
    duplicates = sorted(
        key for key, count in computed_keys.items() if count > 1
    )

    active = []
    for path in sorted(claim_dir.glob("*.claim")):
        key = path.stem
        info = board.read(key)
        if info is None:
            continue  # released between glob and stat
        active.append(
            {
                "key": key,
                "owner": info.owner,
                "host": info.host,
                "pid": info.pid,
                "age_s": round(info.age_s, 1),
                "stale": info.age_s > args.claim_ttl,
            }
        )

    if args.json:
        print(
            json.dumps(
                {
                    "claim_dir": str(claim_dir),
                    "ttl_s": args.claim_ttl,
                    "events": len(events),
                    "workers": owners,
                    "points_computed": len(computed_keys),
                    "duplicates": duplicates,
                    "active": active,
                },
                sort_keys=True,
            )
        )
        return 0

    print(f"fleet status: {claim_dir} (ttl {args.claim_ttl:.0f}s)")
    if not owners:
        print("  no claim events recorded yet")
    else:
        width = max(len("worker"), max(len(owner) for owner in owners))
        header = "  ".join(f"{name:>8}" for name in counted_events)
        print(f"{'worker':<{width}}  {header}")
        for owner in sorted(owners):
            row = owners[owner]
            cells = "  ".join(f"{row[name]:>8}" for name in counted_events)
            print(f"{owner:<{width}}  {cells}")
    print(
        f"{len(computed_keys)} distinct points computed across "
        f"{len(owners)} worker(s); {len(events)} events"
    )
    if duplicates:
        print(f"WARNING: {len(duplicates)} point(s) computed more than once:")
        for key in duplicates:
            print(f"  {key} x{computed_keys[key]}")
    else:
        print("exactly-once audit: clean (no point computed twice)")
    if active:
        print(f"active claims ({len(active)}):")
        for claim in active:
            stale = "  STALE" if claim["stale"] else ""
            print(
                f"  {claim['key']}  owner={claim['owner']}  "
                f"age={claim['age_s']}s{stale}"
            )
    else:
        print("active claims: none")
    return 0


def _session_main(argv: list[str]) -> int:
    from repro.service.client import (
        SessionClientError,
        load_trace,
        record_app_trace,
        replay_session,
        save_trace,
    )

    parser = argparse.ArgumentParser(
        prog="repro-paper session",
        description=(
            "Stream a coherence-event trace through a live prediction "
            "session on a repro-paper server (POST /v1/sessions) and "
            "print the final summary.  The summary's 'run' object is "
            "byte-identical to the matching batch accuracy point over "
            "the same trace.  See docs/service.md."
        ),
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8599", help="server base URL"
    )
    parser.add_argument(
        "--predictor",
        default="MSP",
        help="predictor kind for the session (default MSP)",
    )
    parser.add_argument(
        "--depth", type=int, default=1, help="history depth (default 1)"
    )
    parser.add_argument(
        "--num-procs",
        type=int,
        default=16,
        metavar="N",
        help="node count the session validates events against (default 16)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--app",
        default=None,
        help="record the trace from this application kernel "
        "(the same emulation a batch accuracy point runs)",
    )
    source.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="replay a previously recorded NDJSON trace file instead",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="app iterations when recording (default: the app's paper size)",
    )
    parser.add_argument(
        "--seed", default=1999, help="app workload seed when recording"
    )
    parser.add_argument(
        "--race-seed", default=7, help="protocol race seed when recording"
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=256,
        metavar="N",
        help="events per streamed NDJSON batch (default 256)",
    )
    parser.add_argument(
        "--save-trace",
        default=None,
        metavar="FILE",
        help="also write the recorded trace as NDJSON to FILE",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print each prediction line as it streams back",
    )
    args = parser.parse_args(argv)
    if args.batch < 1:
        parser.error("--batch must be >= 1")
    if args.trace is not None and args.save_trace is not None:
        parser.error("--save-trace only applies when recording with --app")
    if args.app is None and args.trace is None:
        parser.error("one of --app or --trace is required")

    if args.trace is not None:
        try:
            events = load_trace(args.trace)
        except (OSError, ValueError) as exc:
            print(f"repro-paper session: error: {exc}", file=sys.stderr)
            return 1
    else:
        try:
            events = record_app_trace(
                args.app,
                num_procs=args.num_procs,
                iterations=args.iterations,
                seed=parse_literal(str(args.seed)),
                race_seed=parse_literal(str(args.race_seed)),
            )
        except ValueError as exc:
            print(f"repro-paper session: error: {exc}", file=sys.stderr)
            return 1
        if args.save_trace is not None:
            save_trace(args.save_trace, events)

    on_line = None
    if args.progress:
        on_line = lambda line: print(json.dumps(line, sort_keys=True))  # noqa: E731
    started = time.perf_counter()
    try:
        summary = replay_session(
            args.url,
            events,
            predictor=args.predictor,
            depth=args.depth,
            num_procs=args.num_procs,
            batch_size=args.batch,
            on_line=on_line,
        )
    except SessionClientError as exc:
        print(f"repro-paper session: error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"repro-paper session: error: cannot reach {args.url}: {exc}",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    print(json.dumps(summary, sort_keys=True))
    print(
        f"[{len(events)} events streamed in {elapsed:.1f}s "
        f"({args.predictor} depth={args.depth})]",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "session":
        return _session_main(argv[1:])
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduce the tables and figures of Lai & Falsafi, 'Memory "
            "Sharing Predictor: The Key to a Speculative Coherent DSM' "
            "(ISCA 1999).  See also the 'sweep' subcommand for arbitrary "
            "parameter grids."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="quarter-size workloads for a quick smoke run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)

    from repro.eval.experiments import EXTRA_EXPERIMENTS, PAPER_EXPERIMENTS

    if args.list:
        for name in RENDERERS:
            extra = "  (paper-beyond; run explicitly)" if name in EXTRA_EXPERIMENTS else ""
            print(f"{name}{extra}")
        return 0

    # A bare invocation reproduces the paper; paper-beyond studies
    # (e.g. scaling32) run only when named explicitly.
    names = args.experiments or list(PAPER_EXPERIMENTS)
    unknown = [n for n in names if n not in RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(known: {', '.join(RENDERERS)})"
        )

    runner = _make_runner(args, parser)
    try:
        for name in names:
            started = time.perf_counter()
            runner.last_report = None  # so table1/table2 don't echo stale timing
            try:
                output = render(name, fast=args.fast, runner=runner)
            except SweepError as exc:
                print(f"repro-paper: error: {exc}", file=sys.stderr)
                return 1
            elapsed = time.perf_counter() - started
            print(output)
            report = runner.last_report
            timing = report.timing_summary() if report is not None else ""
            print(
                f"[{name} regenerated in {elapsed:.1f}s"
                + (f"; {timing}" if timing else "")
                + "]"
            )
            print()
    finally:
        runner.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
