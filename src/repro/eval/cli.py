"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-paper                    # reproduce the paper (all its figures/tables)
    repro-paper figure7 table5     # run specific experiments
    repro-paper --fast --jobs 4    # quarter-size runs, 4 worker processes
    repro-paper --refresh figure9  # recompute, ignoring cached points
    repro-paper --list             # list experiment ids
    repro-paper scaling32          # paper-beyond studies run when named

Grid-shaped experiments execute through the parallel harness: ``--jobs``
fans sweep points out over worker processes and every computed point is
cached under ``--cache-dir`` (default ``.repro-cache``, override with
``REPRO_CACHE_DIR``), so re-running a figure only recomputes what
changed.  ``--no-cache`` disables the store, ``--refresh`` overwrites it.

The ``sweep`` subcommand runs arbitrary user-defined grids beyond the
paper's own, printing one JSON object per point::

    repro-paper sweep --kind accuracy --axis app=em3d,moldyn \\
        --axis depth=1,2,4 --set iterations=8 --jobs 4

Accuracy points run on the vectorized trace pipeline and speculation
points on the calendar-queue timing engine by default; pass ``--set
engine=reference`` to select the bit-identical reference engines
(docs/performance.md).

The ``serve`` subcommand exposes the same sweep points over HTTP —
cached results answer instantly, misses are computed in a worker pool
with request coalescing (see ``docs/service.md``)::

    repro-paper serve --port 8599 --jobs 2
    curl 'http://127.0.0.1:8599/v1/point?kind=accuracy&app=em3d&depth=2'
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any

from repro.common.literals import parse_literal
from repro.eval.reporting import RENDERERS, render
from repro.harness import (
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepSpec,
    runner_kinds,
)

def _default_cache_dir() -> str:
    """Resolved per invocation so REPRO_CACHE_DIR set after import works."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all cores)")
    return value


def _add_harness_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="worker processes for sweep execution (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep-point result cache (default: .repro-cache, "
        "or the REPRO_CACHE_DIR environment variable)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every point without reading or writing the cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every point and overwrite cached results",
    )


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    from repro.trace import configure_trace_cache

    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    store = None if args.no_cache else ResultStore(cache_dir)
    # Compiled traces share the point cache's directory (under trace/);
    # forked sweep workers inherit the configuration.
    configure_trace_cache(None if args.no_cache else cache_dir)
    return ParallelRunner(jobs=args.jobs, store=store, refresh=args.refresh)


def _parse_axis(text: str) -> tuple[str, list[Any]]:
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"expected NAME=V1,V2,... got {text!r}"
        )
    return name, [parse_literal(v) for v in values.split(",")]


def _parse_setting(text: str) -> tuple[str, Any]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    return name, parse_literal(value)


def _sweep_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-paper sweep",
        description=(
            "Run a user-defined parameter grid through the experiment "
            "harness and print one JSON object per sweep point."
        ),
        epilog=(
            "Engine switches: accuracy points accept --set "
            "engine=reference (per-message predictors instead of the "
            "vectorized trace pipeline) and speculation points accept "
            "--set engine=reference (heapq timing engine instead of "
            "the calendar queue).  Both pairs are bit-identical; see "
            "docs/performance.md."
        ),
    )
    parser.add_argument(
        "--kind",
        required=True,
        choices=runner_kinds(),
        help="which point runner executes each grid cell",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="a swept parameter (repeatable); the grid is the product",
    )
    parser.add_argument(
        "--set",
        dest="settings",
        action="append",
        default=[],
        type=_parse_setting,
        metavar="NAME=VALUE",
        help="a fixed parameter shared by every point (repeatable)",
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)
    if not args.axis:
        parser.error("at least one --axis is required")

    spec = SweepSpec(kind=args.kind, axes=dict(args.axis), base=dict(args.settings))
    started = time.perf_counter()
    try:
        result = _make_runner(args).run(spec)
    except SweepError as exc:
        print(f"repro-paper sweep: error: {exc}", file=sys.stderr)
        return 1
    except (TypeError, ValueError) as exc:
        print(
            f"repro-paper sweep: error: invalid sweep parameters: {exc}",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    for point, value in result.items():
        print(json.dumps({"params": point.as_dict(), "result": value}))
    report = result.report
    timing = report.timing_summary()
    print(
        f"[{len(result)} points in {elapsed:.1f}s: {report.executed} executed, "
        f"{report.cached} cached, jobs={report.jobs}"
        + (f"; {timing}" if timing else "")
        + "]",
        file=sys.stderr,
    )
    return 0


def _serve_main(argv: list[str]) -> int:
    from repro.service import ServiceConfig
    from repro.service.server import run_service

    parser = argparse.ArgumentParser(
        prog="repro-paper serve",
        description=(
            "Serve sweep points over HTTP: cached results answer "
            "instantly, misses are computed in a worker pool with "
            "request coalescing.  Endpoints: GET /v1/point, "
            "POST /v1/sweep, GET /v1/jobs/<id>, GET /v1/experiments, "
            "GET /healthz, GET /statz.  See docs/service.md."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8599,
        help="listening port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=16,
        metavar="N",
        help="in-flight computation bound before requests get 429",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-request compute timeout (responses 504 past it; "
        "the computation finishes and is cached anyway)",
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)
    if args.max_pending < 1:
        parser.error("--max-pending must be >= 1")

    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else cache_dir,
        refresh=args.refresh,
        max_pending=args.max_pending,
        timeout_s=args.timeout,
    )

    def announce(service) -> None:
        print(f"repro-paper serve: listening on {service.url}", flush=True)

    return run_service(config, announce)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduce the tables and figures of Lai & Falsafi, 'Memory "
            "Sharing Predictor: The Key to a Speculative Coherent DSM' "
            "(ISCA 1999).  See also the 'sweep' subcommand for arbitrary "
            "parameter grids."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="quarter-size workloads for a quick smoke run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)

    from repro.eval.experiments import EXTRA_EXPERIMENTS, PAPER_EXPERIMENTS

    if args.list:
        for name in RENDERERS:
            extra = "  (paper-beyond; run explicitly)" if name in EXTRA_EXPERIMENTS else ""
            print(f"{name}{extra}")
        return 0

    # A bare invocation reproduces the paper; paper-beyond studies
    # (e.g. scaling32) run only when named explicitly.
    names = args.experiments or list(PAPER_EXPERIMENTS)
    unknown = [n for n in names if n not in RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(known: {', '.join(RENDERERS)})"
        )

    runner = _make_runner(args)
    for name in names:
        started = time.perf_counter()
        runner.last_report = None  # so table1/table2 don't echo stale timing
        try:
            output = render(name, fast=args.fast, runner=runner)
        except SweepError as exc:
            print(f"repro-paper: error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(output)
        report = runner.last_report
        timing = report.timing_summary() if report is not None else ""
        print(
            f"[{name} regenerated in {elapsed:.1f}s"
            + (f"; {timing}" if timing else "")
            + "]"
        )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
