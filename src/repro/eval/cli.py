"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-paper                    # run everything
    repro-paper figure7 table5     # run specific experiments
    repro-paper --fast --jobs 4    # quarter-size runs, 4 worker processes
    repro-paper --refresh figure9  # recompute, ignoring cached points
    repro-paper --list             # list experiment ids

Grid-shaped experiments execute through the parallel harness: ``--jobs``
fans sweep points out over worker processes and every computed point is
cached under ``--cache-dir`` (default ``.repro-cache``, override with
``REPRO_CACHE_DIR``), so re-running a figure only recomputes what
changed.  ``--no-cache`` disables the store, ``--refresh`` overwrites it.

The ``sweep`` subcommand runs arbitrary user-defined grids beyond the
paper's own, printing one JSON object per point::

    repro-paper sweep --kind accuracy --axis app=em3d,moldyn \\
        --axis depth=1,2,4 --set iterations=8 --jobs 4
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any

from repro.eval.reporting import RENDERERS, render
from repro.harness import (
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepSpec,
    runner_kinds,
)

def _default_cache_dir() -> str:
    """Resolved per invocation so REPRO_CACHE_DIR set after import works."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError("jobs must be >= 0 (0 = all cores)")
    return value


def _add_harness_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="worker processes for sweep execution (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep-point result cache (default: .repro-cache, "
        "or the REPRO_CACHE_DIR environment variable)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compute every point without reading or writing the cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every point and overwrite cached results",
    )


def _make_runner(args: argparse.Namespace) -> ParallelRunner:
    cache_dir = args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    store = None if args.no_cache else ResultStore(cache_dir)
    return ParallelRunner(jobs=args.jobs, store=store, refresh=args.refresh)


def _parse_value(text: str) -> Any:
    """Best-effort literal: int, float, bool, null, else bare string.

    Non-finite floats (NaN/Infinity) stay bare strings: sweep
    parameters must be canonical-JSON-hashable.
    """
    try:
        value = json.loads(text)
    except json.JSONDecodeError:
        return text
    if isinstance(value, float) and not math.isfinite(value):
        return text
    return value


def _parse_axis(text: str) -> tuple[str, list[Any]]:
    name, sep, values = text.partition("=")
    if not sep or not name or not values:
        raise argparse.ArgumentTypeError(
            f"expected NAME=V1,V2,... got {text!r}"
        )
    return name, [_parse_value(v) for v in values.split(",")]


def _parse_setting(text: str) -> tuple[str, Any]:
    name, sep, value = text.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    return name, _parse_value(value)


def _sweep_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-paper sweep",
        description=(
            "Run a user-defined parameter grid through the experiment "
            "harness and print one JSON object per sweep point."
        ),
    )
    parser.add_argument(
        "--kind",
        required=True,
        choices=runner_kinds(),
        help="which point runner executes each grid cell",
    )
    parser.add_argument(
        "--axis",
        action="append",
        default=[],
        type=_parse_axis,
        metavar="NAME=V1,V2,...",
        help="a swept parameter (repeatable); the grid is the product",
    )
    parser.add_argument(
        "--set",
        dest="settings",
        action="append",
        default=[],
        type=_parse_setting,
        metavar="NAME=VALUE",
        help="a fixed parameter shared by every point (repeatable)",
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)
    if not args.axis:
        parser.error("at least one --axis is required")

    spec = SweepSpec(kind=args.kind, axes=dict(args.axis), base=dict(args.settings))
    started = time.perf_counter()
    try:
        result = _make_runner(args).run(spec)
    except SweepError as exc:
        print(f"repro-paper sweep: error: {exc}", file=sys.stderr)
        return 1
    except (TypeError, ValueError) as exc:
        print(
            f"repro-paper sweep: error: invalid sweep parameters: {exc}",
            file=sys.stderr,
        )
        return 1
    elapsed = time.perf_counter() - started
    for point, value in result.items():
        print(json.dumps({"params": point.as_dict(), "result": value}))
    report = result.report
    print(
        f"[{len(result)} points in {elapsed:.1f}s: {report.executed} executed, "
        f"{report.cached} cached, jobs={report.jobs}]",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-paper",
        description=(
            "Reproduce the tables and figures of Lai & Falsafi, 'Memory "
            "Sharing Predictor: The Key to a Speculative Coherent DSM' "
            "(ISCA 1999).  See also the 'sweep' subcommand for arbitrary "
            "parameter grids."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (default: all); see --list",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="quarter-size workloads for a quick smoke run",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    _add_harness_options(parser)
    args = parser.parse_args(argv)

    if args.list:
        for name in RENDERERS:
            print(name)
        return 0

    names = args.experiments or list(RENDERERS)
    unknown = [n for n in names if n not in RENDERERS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(known: {', '.join(RENDERERS)})"
        )

    runner = _make_runner(args)
    for name in names:
        started = time.perf_counter()
        try:
            output = render(name, fast=args.fast, runner=runner)
        except SweepError as exc:
            print(f"repro-paper: error: {exc}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - started
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
