"""Point-to-point network with per-node network-interface contention.

The paper assumes "a point-to-point network with a constant latency of
80 cycles but model[s] contention at the network interfaces"
(Section 6).  This model does the same: every message takes the
constant network latency, and each receiving node's NI serializes
message processing at ``ni_cycles`` per message.  Node-local messages
(a processor talking to its own directory) bypass the network entirely.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable

from repro.common.config import SystemConfig
from repro.common.types import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.fastevents import TimingQueue


class Interconnect:
    """Delivers callbacks across nodes with Table 1 latencies."""

    def __init__(self, config: SystemConfig, events: "TimingQueue") -> None:
        self._config = config
        self._events = events
        self._recv_free = [0] * config.num_nodes
        self.messages_sent = 0
        # Flat copies for the per-message fast path (send_call): one
        # attribute fetch instead of a config chase per message.
        self._network_cycles = config.network_cycles
        self._ni_cycles = config.ni_cycles
        # send_call inlines the calendar queue's bucket insert (the NI
        # is the single hottest event producer); on any other queue it
        # falls back to the generic packed-insert API.
        from repro.sim.fastevents import CalendarEventQueue

        self._calendar = events if isinstance(events, CalendarEventQueue) else None

    def send(
        self, src: NodeId, dst: NodeId, fn: Callable[[], None]
    ) -> None:
        """Deliver ``fn`` at ``dst`` after network + NI processing.

        ``src == dst`` models a processor operating on its own node
        (no network traversal, no NI occupancy).
        """
        if src == dst:
            self._events.schedule(0, fn)
            return
        self.messages_sent += 1
        arrival = self._events.now + self._config.network_cycles
        start = max(arrival, self._recv_free[dst])
        done = start + self._config.ni_cycles
        self._recv_free[dst] = done
        self._events.at(done, fn)

    def send_call(
        self, src: NodeId, dst: NodeId, handler: Callable, *args
    ) -> None:
        """Deliver ``handler(*args)`` at ``dst`` — the fast engine's path.

        Identical latency and NI-contention model as :meth:`send`, but
        the event is a ``(handler, args)`` pair, so the caller does not
        allocate a closure per message.  Delivery order relative to
        :meth:`send` is preserved (both insert through the same queue).
        """
        queue = self._calendar
        if queue is None:
            events = self._events
            if src == dst:
                events.insert(events.now, handler, args)
                return
            self.messages_sent += 1
            arrival = events.now + self._network_cycles
            recv_free = self._recv_free
            start = recv_free[dst]
            if arrival > start:
                start = arrival
            done = start + self._ni_cycles
            recv_free[dst] = done
            events.insert(done, handler, args)
            return
        # Calendar queue: inline the bucket insert.  Delivery times are
        # never in the past (latencies are non-negative), so the
        # schedule-into-the-past guard is statically satisfied here.
        if src == dst:
            done = queue.now
        else:
            self.messages_sent += 1
            arrival = queue.now + self._network_cycles
            recv_free = self._recv_free
            start = recv_free[dst]
            if arrival > start:
                start = arrival
            done = start + self._ni_cycles
            recv_free[dst] = done
        buckets = queue._buckets
        bucket = buckets.get(done)
        if bucket is None:
            buckets[done] = [(handler, args)]
            heappush(queue._times, done)
        else:
            bucket.append((handler, args))
        queue._size += 1
