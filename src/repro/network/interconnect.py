"""Point-to-point network with per-node network-interface contention.

The paper assumes "a point-to-point network with a constant latency of
80 cycles but model[s] contention at the network interfaces"
(Section 6).  This model does the same: every message takes the
constant network latency, and each receiving node's NI serializes
message processing at ``ni_cycles`` per message.  Node-local messages
(a processor talking to its own directory) bypass the network entirely.
"""

from __future__ import annotations

from typing import Callable

from repro.common.config import SystemConfig
from repro.common.types import NodeId
from repro.sim.events import EventQueue


class Interconnect:
    """Delivers callbacks across nodes with Table 1 latencies."""

    def __init__(self, config: SystemConfig, events: EventQueue) -> None:
        self._config = config
        self._events = events
        self._recv_free = [0] * config.num_nodes
        self.messages_sent = 0

    def send(
        self, src: NodeId, dst: NodeId, fn: Callable[[], None]
    ) -> None:
        """Deliver ``fn`` at ``dst`` after network + NI processing.

        ``src == dst`` models a processor operating on its own node
        (no network traversal, no NI occupancy).
        """
        if src == dst:
            self._events.schedule(0, fn)
            return
        self.messages_sent += 1
        arrival = self._events.now + self._config.network_cycles
        start = max(arrival, self._recv_free[dst])
        done = start + self._config.ni_cycles
        self._recv_free[dst] = done
        self._events.at(done, fn)
