"""Interconnect model: constant-latency network with NI contention."""

from repro.network.interconnect import Interconnect

__all__ = ["Interconnect"]
