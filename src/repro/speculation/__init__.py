"""Speculative coherence machinery (paper Section 4).

The :class:`~repro.speculation.engine.SpeculationEngine` attaches a
VMSP to each home directory and *advises* the stock protocol:

* **First-Read (FR)** — the first read of a predicted read sequence
  triggers forwarding of read-only copies to the remaining predicted
  readers;
* **Speculative Write-Invalidation (SWI)** — a processor's write to a
  new block predicts it is done writing the previous one; the engine
  recalls that writable copy early and forwards it to the predicted
  readers, falling back to FR when SWI is suppressed or fails.

Verification uses the remote-cache reference bits: an invalidation that
finds the bit still set reports a misspeculation, which removes the
offending pattern entry (and, for SWI, sets the premature-invalidation
suppression bit).
"""

from repro.speculation.engine import SpeculationEngine, SpeculationStats

__all__ = ["SpeculationEngine", "SpeculationStats"]
