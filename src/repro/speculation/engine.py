"""FR / SWI speculation controller for one home directory.

One engine instance runs per home node.  It owns that home's VMSP
(history depth one, as in the paper's speculative DSM evaluation) and
the early-write-invalidate table, observes every request the directory
processes, and tells the home which speculative actions to take.  It
never mutates protocol state itself — the home executes ordinary
protocol operations on its advice (Section 4.2: no protocol changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import BlockId, Message, MessageKind, NodeId
from repro.predictors.base import HistoryKey, ReadVector
from repro.predictors.swi import EarlyWriteInvalidateTable
from repro.predictors.vmsp import Vmsp


@dataclass(slots=True)
class SpeculationStats:
    """Per-home speculation counters (aggregated for Table 5)."""

    fr_sent: int = 0
    fr_used: int = 0
    fr_missed: int = 0
    swi_sent: int = 0
    swi_used: int = 0
    swi_missed: int = 0
    wi_sent: int = 0
    wi_premature: int = 0
    race_dropped: int = 0
    migratory_grants: int = 0
    migratory_upgrades_saved: int = 0
    migratory_demotions: int = 0

    def merge(self, other: "SpeculationStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(slots=True)
class _PendingSwi:
    """An SWI invalidation awaiting its verdict (next request to block)."""

    writer: NodeId
    history: HistoryKey


class SpeculationEngine:
    """Per-home-node FR/SWI decision logic."""

    def __init__(
        self,
        home: NodeId,
        swi_enabled: bool,
        depth: int = 1,
        migratory_enabled: bool = False,
        fast_path: bool = True,
    ) -> None:
        self.home = home
        self.swi_enabled = swi_enabled
        #: Which predictor entry points the request observers use.  The
        #: fast timing engine presents requests through the predictor's
        #: allocation-free API; the reference engine keeps the original
        #: Message-boxed path so it stays the frozen baseline the
        #: golden equivalence suite compares against.  Both are
        #: bit-identical in outcome.
        self.fast_path = fast_path
        #: Extension beyond the paper (its stated future work): detect
        #: migratory read+upgrade pairs and grant the read exclusively,
        #: executing the predicted upgrade speculatively.
        self.migratory_enabled = migratory_enabled
        self.predictor = Vmsp(depth=depth)
        self.ewi = EarlyWriteInvalidateTable()
        self.stats = SpeculationStats()
        #: (origin, history, predicted token) per outstanding copy.
        self._spec_context: dict[
            tuple[BlockId, NodeId], tuple[str, HistoryKey, object]
        ] = {}
        #: SWI invalidations awaiting confirmation.
        self._pending_swi: dict[BlockId, _PendingSwi] = {}
        #: Migratory exclusive grants awaiting a store from the grantee.
        self._pending_migratory: dict[BlockId, NodeId] = {}

    # ------------------------------------------------------------------
    # request observation
    # ------------------------------------------------------------------
    def observe_read(self, block: BlockId, reader: NodeId) -> frozenset[NodeId]:
        """Observe a read request; return FR forwarding targets.

        The first read of a sequence (empty open run) triggers
        speculation for the rest of the predicted read vector
        (Section 4.1).  Later reads of the same run trigger nothing.
        """
        self._resolve_swi(block, reader)
        if self.fast_path:
            first_of_run = not self.predictor.has_open_run(block)
            self.predictor.observe_request(MessageKind.READ, reader, block)
        else:
            first_of_run = not self.predictor.open_run(block)
            self.predictor.observe(
                Message(kind=MessageKind.READ, node=reader, block=block)
            )
        if not first_of_run:
            return frozenset()
        predicted = self.predictor.predicted_read_vector(block)
        if predicted is None:
            return frozenset()
        return frozenset(predicted - {reader})

    def observe_write(
        self, block: BlockId, kind: MessageKind, writer: NodeId
    ) -> None:
        """Observe a write/upgrade request arriving at this home."""
        self._resolve_swi(block, writer)
        if self.fast_path:
            self.predictor.observe_request(kind, writer, block)
        else:
            self.predictor.observe(Message(kind=kind, node=writer, block=block))

    # ------------------------------------------------------------------
    # migratory write speculation (extension; the paper's future work)
    # ------------------------------------------------------------------
    def predicts_migratory_writer(self, block: BlockId, reader: NodeId) -> bool:
        """Whether the reader is predicted to upgrade the block next.

        Migratory sharing appears to a VMSP as a singleton read vector
        followed by a write/upgrade from the *same* processor
        (Section 4.1: "the arrival of the read by the processor may
        readily trigger speculation for the upgrade").  When the open
        run is exactly this reader and the entry after the predicted
        vector names the reader as the next writer, granting the read
        exclusively executes the upgrade speculatively.
        """
        if not self.migratory_enabled:
            return False
        history = self.predictor.current_history(block)
        predicted = self.predictor.predicted_next(block)
        if not isinstance(predicted, ReadVector):
            return False
        if predicted.readers != frozenset({reader}):
            return False
        if self.predictor.confidence(block, history) < 1:
            return False
        follow_key = (history + (predicted,))[-self.predictor.depth :]
        follow = self.predictor._patterns.get(block, {}).get(follow_key)
        return follow is not None and not isinstance(follow, ReadVector) and follow[1] == reader

    def record_migratory_grant(self, block: BlockId, reader: NodeId) -> None:
        self.stats.migratory_grants += 1
        self._pending_migratory[block] = reader

    def migratory_written(self, block: BlockId, writer: NodeId) -> None:
        """The grantee stored to its exclusively granted copy: a win.

        The store never reaches the directory (that is the point), so
        the engine observes the speculatively executed upgrade itself —
        otherwise the block's read runs would never close and the
        pattern tables would decay while speculation hides requests.
        """
        if self._pending_migratory.get(block) != writer:
            return
        del self._pending_migratory[block]
        self.stats.migratory_upgrades_saved += 1
        self.observe_write(block, MessageKind.UPGRADE, writer)

    def migratory_recalled(self, block: BlockId, owner: NodeId) -> None:
        """The grant was recalled before any store: a demotion."""
        if self._pending_migratory.get(block) == owner:
            del self._pending_migratory[block]
            self.stats.migratory_demotions += 1

    def migratory_pending(self, block: BlockId) -> NodeId | None:
        return self._pending_migratory.get(block)

    def swi_allowed(self, block: BlockId) -> bool:
        """Whether an SWI recall of ``block`` may proceed.

        False when SWI is disabled or the block's current write pattern
        entry carries the premature-invalidation suppression bit
        (Section 4.2).
        """
        if not self.swi_enabled:
            return False
        history = self.predictor.current_history(block)
        return not self.ewi.is_suppressed(block, history)

    # ------------------------------------------------------------------
    # SWI lifecycle
    # ------------------------------------------------------------------
    def swi_invalidated(self, block: BlockId, writer: NodeId) -> frozenset[NodeId]:
        """The SWI recall of ``block`` completed; return read targets.

        The writer itself stays a valid target: a producer that re-reads
        its own data later (tomcatv's stencil) appears in the predicted
        read vector and receives a read-only copy back, which is how the
        paper's SWI-DSM speculatively covers the producer's reads too
        (Section 7.4).
        """
        self.stats.wi_sent += 1
        history = self.predictor.current_history(block)
        self._pending_swi[block] = _PendingSwi(writer=writer, history=history)
        predicted = self.predictor.predicted_read_vector(block)
        if predicted is None:
            return frozenset()
        return frozenset(predicted)

    def _resolve_swi(self, block: BlockId, requester: NodeId) -> None:
        """The next request for an SWI-recalled block is its verdict."""
        pending = self._pending_swi.pop(block, None)
        if pending is None:
            return
        if requester == pending.writer:
            # The producer came back: the invalidation was premature.
            self.stats.wi_premature += 1
            self.ewi.suppress(block, pending.history)

    # ------------------------------------------------------------------
    # speculative-copy bookkeeping and verification
    # ------------------------------------------------------------------
    def record_spec_sent(
        self, block: BlockId, target: NodeId, origin: str
    ) -> None:
        history = self.predictor.current_history(block)
        predicted = self.predictor.predicted_next(block)
        self._spec_context[(block, target)] = (origin, history, predicted)
        if origin == "swi":
            self.stats.swi_sent += 1
        else:
            self.stats.fr_sent += 1

    def spec_feedback(
        self, block: BlockId, target: NodeId, used: bool, raced: bool = False
    ) -> None:
        """Reference-bit verdict for a speculative copy (Section 4.2)."""
        context = self._spec_context.pop((block, target), None)
        if context is None:
            return
        origin, history, predicted = context
        if raced:
            self.stats.race_dropped += 1
            return
        if used:
            # A consumed copy confirms any pending SWI recall of this
            # block: the producer really was done writing.
            self._pending_swi.pop(block, None)
            # Only now does the pushed reader count as a performed read:
            # learning it at push time would let a mispredicted reader
            # re-enter the learned vector and re-push itself forever.
            self.predictor.observe_speculative_read(block, target)
            if origin == "swi":
                self.stats.swi_used += 1
            else:
                self.stats.fr_used += 1
            return
        if origin == "swi":
            self.stats.swi_missed += 1
        else:
            self.stats.fr_missed += 1
        # Remove the mispredicted sequence from the pattern tables —
        # but only if ordinary learning has not already replaced it.
        self.predictor.remove_entry(block, history, expected=predicted)
