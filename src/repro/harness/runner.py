"""Sweep execution: serial, fanned out over workers, or incremental.

Every sweep point is bit-deterministic — all randomness flows from
:class:`~repro.common.rng.DeterministicRng` seeds carried in the point's
parameters — so points can run in any process, in any order, and the
assembled results are identical to a serial run.  The
:class:`ParallelRunner` exploits that: it dedupes the expanded grid,
satisfies what it can from an optional :class:`ResultStore`, executes
the remainder serially or over a ``ProcessPoolExecutor`` in chunks, and
returns results in the original grid order.

Beyond batch :meth:`ParallelRunner.run`, the runner can be driven
incrementally — :meth:`~ParallelRunner.submit_point` returns a
:class:`concurrent.futures.Future` per point, which is what the HTTP
service front-end (:mod:`repro.service`) builds on: an event loop
submits points as requests arrive and awaits their futures instead of
blocking on a whole grid.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.harness.runners import execute_point_timed
from repro.harness.spec import SweepPoint, SweepSpec
from repro.harness.store import MISS, ResultStore


class SweepError(RuntimeError):
    """A sweep point failed or its worker process died."""


def _run_chunk(payload: list[tuple[str, dict[str, Any]]]) -> list[tuple[Any, float]]:
    """Worker entry point: execute a chunk of points in one task."""
    out: list[tuple[Any, float]] = []
    for kind, params in payload:
        try:
            out.append(execute_point_timed(kind, params))
        except Exception as exc:
            raise SweepError(
                f"sweep point failed: kind={kind!r} params={params!r} ({exc})"
            ) from exc
    return out


@dataclass(slots=True)
class SweepReport:
    """How a sweep was satisfied: fresh executions vs cache hits."""

    executed: int = 0
    cached: int = 0
    jobs: int = 1
    #: Total wall-clock seconds spent inside freshly executed points
    #: (summed across workers, so it can exceed elapsed wall time).
    executed_seconds: float = 0.0
    #: The slowest freshly executed point, in seconds (straggler bound).
    max_point_seconds: float = 0.0
    #: Compute seconds the cache saved — the sum of recorded ``elapsed_s``
    #: over cache hits (hits on pre-timing entries contribute nothing).
    saved_seconds: float = 0.0

    @property
    def total(self) -> int:
        return self.executed + self.cached

    def note_executed(self, elapsed_s: float) -> None:
        self.executed += 1
        self.executed_seconds += elapsed_s
        self.max_point_seconds = max(self.max_point_seconds, elapsed_s)

    def note_cached(self, elapsed_s: float | None) -> None:
        self.cached += 1
        if elapsed_s:
            self.saved_seconds += elapsed_s

    def timing_summary(self) -> str:
        """Human-readable per-point timing, e.g. for the CLI status line."""
        parts = []
        if self.executed:
            avg = self.executed_seconds / self.executed
            parts.append(
                f"avg {avg:.2f}s/pt, max {self.max_point_seconds:.2f}s"
            )
        if self.saved_seconds:
            parts.append(f"cache saved ~{self.saved_seconds:.1f}s")
        return "; ".join(parts)


@dataclass(slots=True)
class SweepResult:
    """Ordered (point, value) pairs plus an execution report."""

    points: list[SweepPoint]
    values: list[Any]
    report: SweepReport = field(default_factory=SweepReport)

    def __len__(self) -> int:
        return len(self.points)

    def items(self) -> Iterable[tuple[SweepPoint, Any]]:
        return zip(self.points, self.values)

    def value(self, **filters: Any) -> Any:
        """The value of the first point matching all given parameters."""
        for point, value in self.items():
            if all(point.get(name) == want for name, want in filters.items()):
                return value
        raise KeyError(f"no sweep point matches {filters!r}")


@dataclass(frozen=True, slots=True)
class PointOutcome:
    """One incrementally executed point: its value and how it was had."""

    value: Any
    #: Compute wall seconds — of this execution for fresh points, of the
    #: original execution for cache hits (None on pre-timing entries).
    elapsed_s: float | None
    #: True when the value came from the :class:`ResultStore`.
    cached: bool


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value (0 means all cores)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _fork_context() -> multiprocessing.context.BaseContext | None:
    if "fork" in multiprocessing.get_all_start_methods():
        # fork keeps runner kinds registered by the calling process
        # (e.g. in tests) visible to the workers.
        return multiprocessing.get_context("fork")
    return None


class ParallelRunner:
    """Executes sweeps with caching, worker fan-out, and serial fallback.

    * ``jobs``    — worker processes; 0 = all cores, 1 = serial (default),
    * ``store``   — optional :class:`ResultStore` consulted before and
      written after execution,
    * ``refresh`` — recompute every point and overwrite the cache,
    * ``chunk_size`` — points per worker task (default: grid split into
      ~4 waves per worker, so stragglers don't serialize the tail).

    Batch mode (:meth:`run`) executes a whole grid and blocks.
    Incremental mode (:meth:`submit_point`) executes one point at a time
    on a persistent pool and returns a future — with ``jobs > 1`` the
    pool is worker processes, with ``jobs == 1`` a single background
    thread (identical results; keeps a driving event loop responsive).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        store: ResultStore | None = None,
        refresh: bool = False,
        chunk_size: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.refresh = refresh
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        #: Report of the most recent :meth:`run` (None before any run).
        self.last_report: SweepReport | None = None
        self._incremental: Executor | None = None
        self._incremental_lock = threading.Lock()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def run(self, sweep: SweepSpec | Sequence[SweepPoint]) -> SweepResult:
        """Execute a spec (or explicit point list); order is preserved."""
        points = list(sweep.points() if isinstance(sweep, SweepSpec) else sweep)
        report = SweepReport(jobs=self.jobs)
        unique: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        results: dict[SweepPoint, Any] = {}
        pending: list[SweepPoint] = []
        if self.store is not None and not self.refresh:
            for point in unique:
                entry = self.store.load_entry(point)
                if entry is MISS:
                    pending.append(point)
                else:
                    results[point] = entry.result
                    report.note_cached(entry.elapsed_s)
        else:
            pending = unique

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                fresh = self._run_parallel(pending)
            else:
                fresh = [self._execute(point) for point in pending]
            for point, (value, elapsed) in zip(pending, fresh):
                results[point] = value
                if self.store is not None:
                    self.store.store(point, value, elapsed_s=elapsed)
                report.note_executed(elapsed)

        self.last_report = report
        return SweepResult(
            points=points, values=[results[p] for p in points], report=report
        )

    # ------------------------------------------------------------------
    def _execute(self, point: SweepPoint) -> tuple[Any, float]:
        try:
            return execute_point_timed(point.kind, point.as_dict())
        except Exception as exc:
            raise SweepError(f"sweep point failed: {point!r} ({exc})") from exc

    def _run_parallel(self, pending: list[SweepPoint]) -> list[tuple[Any, float]]:
        workers = min(self.jobs, len(pending))
        chunk_size = self.chunk_size or max(1, -(-len(pending) // (workers * 4)))
        chunks = [
            pending[i : i + chunk_size] for i in range(0, len(pending), chunk_size)
        ]
        context = self.mp_context or _fork_context()
        results: dict[int, list[tuple[Any, float]]] = {}
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [(p.kind, p.as_dict()) for p in chunk]
                ): index
                for index, chunk in enumerate(chunks)
            }
            wait(futures, return_when=FIRST_EXCEPTION)
            for future, index in futures.items():
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"a sweep worker process died while running "
                        f"{len(chunks[index])} point(s), e.g. {chunks[index][0]!r}; "
                        f"rerun with jobs=1 to see the failure inline"
                    ) from exc
        return [value for index in range(len(chunks)) for value in results[index]]

    # ------------------------------------------------------------------
    # incremental execution (submit/poll, used by the service layer)
    # ------------------------------------------------------------------
    def cached_outcome(self, point: SweepPoint) -> PointOutcome | None:
        """The stored outcome for ``point``, or None (miss / no store)."""
        if self.store is None or self.refresh:
            return None
        entry = self.store.load_entry(point)
        if entry is MISS:
            return None
        return PointOutcome(value=entry.result, elapsed_s=entry.elapsed_s, cached=True)

    def submit_point(self, point: SweepPoint) -> "Future[PointOutcome]":
        """Submit one point for execution; returns a future of its outcome.

        Cache hits resolve immediately without touching the pool.  On a
        miss the point runs on the persistent incremental pool and the
        result (with its wall time) is written back to the store before
        the future resolves, so a concurrent batch run or another
        service replica sharing the cache dir sees it.
        """
        cached = self.cached_outcome(point)
        if cached is not None:
            done: Future[PointOutcome] = Future()
            done.set_result(cached)
            return done

        pool = self._ensure_incremental()
        try:
            inner = pool.submit(execute_point_timed, point.kind, point.as_dict())
        except BrokenProcessPool:
            # an earlier point killed a worker; rebuild the pool once so
            # one crash doesn't poison every later submission.
            self._discard_incremental(pool)
            pool = self._ensure_incremental()
            inner = pool.submit(execute_point_timed, point.kind, point.as_dict())

        outer: Future[PointOutcome] = Future()

        def _finish(fut: "Future[tuple[Any, float]]") -> None:
            if fut.cancelled():
                # close()/_discard_incremental cancel queued work; the
                # outer future must still resolve or waiters hang.
                outer.set_exception(
                    SweepError(f"sweep point cancelled before running: {point!r}")
                )
                return
            exc = fut.exception()
            if exc is not None:
                if isinstance(exc, BrokenProcessPool):
                    self._discard_incremental(pool)
                outer.set_exception(
                    SweepError(f"sweep point failed: {point!r} ({exc})")
                )
                return
            value, elapsed = fut.result()
            if self.store is not None:
                try:
                    self.store.store(point, value, elapsed_s=elapsed)
                except OSError:
                    pass  # a full/readonly cache degrades to recomputes
            outer.set_result(
                PointOutcome(value=value, elapsed_s=elapsed, cached=False)
            )

        inner.add_done_callback(_finish)
        return outer

    def _ensure_incremental(self) -> Executor:
        with self._incremental_lock:
            if self._incremental is None:
                if self.jobs > 1:
                    self._incremental = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        mp_context=self.mp_context or _fork_context(),
                    )
                else:
                    self._incremental = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="repro-point"
                    )
            return self._incremental

    def _discard_incremental(self, pool: Executor) -> None:
        """Drop a broken pool so the next submission builds a fresh one.

        Identity-guarded: a straggler failure callback from an already
        replaced pool must not tear down its healthy successor.
        """
        with self._incremental_lock:
            if self._incremental is pool:
                self._incremental = None
        pool.shutdown(wait=False, cancel_futures=True)

    @property
    def incremental_started(self) -> bool:
        """True once a cache miss has forced the pool into existence."""
        return self._incremental is not None

    def close(self) -> None:
        """Shut down the incremental pool (no-op if never started)."""
        with self._incremental_lock:
            pool, self._incremental = self._incremental, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
