"""Sweep execution: serial or fanned out over worker processes.

Every sweep point is bit-deterministic — all randomness flows from
:class:`~repro.common.rng.DeterministicRng` seeds carried in the point's
parameters — so points can run in any process, in any order, and the
assembled results are identical to a serial run.  The
:class:`ParallelRunner` exploits that: it dedupes the expanded grid,
satisfies what it can from an optional :class:`ResultStore`, executes
the remainder serially or over a ``ProcessPoolExecutor`` in chunks, and
returns results in the original grid order.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.harness.runners import execute_point
from repro.harness.spec import SweepPoint, SweepSpec
from repro.harness.store import MISS, ResultStore


class SweepError(RuntimeError):
    """A sweep point failed or its worker process died."""


def _run_chunk(payload: list[tuple[str, dict[str, Any]]]) -> list[Any]:
    """Worker entry point: execute a chunk of points in one task."""
    out: list[Any] = []
    for kind, params in payload:
        try:
            out.append(execute_point(kind, params))
        except Exception as exc:
            raise SweepError(
                f"sweep point failed: kind={kind!r} params={params!r} ({exc})"
            ) from exc
    return out


@dataclass(slots=True)
class SweepReport:
    """How a sweep was satisfied: fresh executions vs cache hits."""

    executed: int = 0
    cached: int = 0
    jobs: int = 1

    @property
    def total(self) -> int:
        return self.executed + self.cached


@dataclass(slots=True)
class SweepResult:
    """Ordered (point, value) pairs plus an execution report."""

    points: list[SweepPoint]
    values: list[Any]
    report: SweepReport = field(default_factory=SweepReport)

    def __len__(self) -> int:
        return len(self.points)

    def items(self) -> Iterable[tuple[SweepPoint, Any]]:
        return zip(self.points, self.values)

    def value(self, **filters: Any) -> Any:
        """The value of the first point matching all given parameters."""
        for point, value in self.items():
            if all(point.get(name) == want for name, want in filters.items()):
                return value
        raise KeyError(f"no sweep point matches {filters!r}")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value (0 means all cores)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


class ParallelRunner:
    """Executes sweeps with caching, worker fan-out, and serial fallback.

    * ``jobs``    — worker processes; 0 = all cores, 1 = serial (default),
    * ``store``   — optional :class:`ResultStore` consulted before and
      written after execution,
    * ``refresh`` — recompute every point and overwrite the cache,
    * ``chunk_size`` — points per worker task (default: grid split into
      ~4 waves per worker, so stragglers don't serialize the tail).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        store: ResultStore | None = None,
        refresh: bool = False,
        chunk_size: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.refresh = refresh
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        #: Report of the most recent :meth:`run` (None before any run).
        self.last_report: SweepReport | None = None

    # ------------------------------------------------------------------
    def run(self, sweep: SweepSpec | Sequence[SweepPoint]) -> SweepResult:
        """Execute a spec (or explicit point list); order is preserved."""
        points = list(sweep.points() if isinstance(sweep, SweepSpec) else sweep)
        report = SweepReport(jobs=self.jobs)
        unique: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        results: dict[SweepPoint, Any] = {}
        pending: list[SweepPoint] = []
        if self.store is not None and not self.refresh:
            for point in unique:
                cached = self.store.load(point)
                if cached is MISS:
                    pending.append(point)
                else:
                    results[point] = cached
                    report.cached += 1
        else:
            pending = unique

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                fresh = self._run_parallel(pending)
            else:
                fresh = [self._execute(point) for point in pending]
            for point, value in zip(pending, fresh):
                results[point] = value
                if self.store is not None:
                    self.store.store(point, value)
            report.executed += len(pending)

        self.last_report = report
        return SweepResult(
            points=points, values=[results[p] for p in points], report=report
        )

    # ------------------------------------------------------------------
    def _execute(self, point: SweepPoint) -> Any:
        try:
            return execute_point(point.kind, point.as_dict())
        except Exception as exc:
            raise SweepError(f"sweep point failed: {point!r} ({exc})") from exc

    def _run_parallel(self, pending: list[SweepPoint]) -> list[Any]:
        workers = min(self.jobs, len(pending))
        chunk_size = self.chunk_size or max(1, -(-len(pending) // (workers * 4)))
        chunks = [
            pending[i : i + chunk_size] for i in range(0, len(pending), chunk_size)
        ]
        context = self.mp_context
        if context is None and "fork" in multiprocessing.get_all_start_methods():
            # fork keeps runner kinds registered by the calling process
            # (e.g. in tests) visible to the workers.
            context = multiprocessing.get_context("fork")
        results: dict[int, list[Any]] = {}
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [(p.kind, p.as_dict()) for p in chunk]
                ): index
                for index, chunk in enumerate(chunks)
            }
            wait(futures, return_when=FIRST_EXCEPTION)
            for future, index in futures.items():
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"a sweep worker process died while running "
                        f"{len(chunks[index])} point(s), e.g. {chunks[index][0]!r}; "
                        f"rerun with jobs=1 to see the failure inline"
                    ) from exc
        return [value for index in range(len(chunks)) for value in results[index]]
