"""Sweep execution: serial, fanned out over workers, or incremental.

Every sweep point is bit-deterministic — all randomness flows from
:class:`~repro.common.rng.DeterministicRng` seeds carried in the point's
parameters — so points can run in any process, in any order, and the
assembled results are identical to a serial run.  The
:class:`ParallelRunner` exploits that: it dedupes the expanded grid,
satisfies what it can from an optional :class:`ResultStore`, executes
the remainder serially or over a ``ProcessPoolExecutor`` in chunks, and
returns results in the original grid order.

Beyond batch :meth:`ParallelRunner.run`, the runner can be driven
incrementally — :meth:`~ParallelRunner.submit_point` returns a
:class:`concurrent.futures.Future` per point, which is what the HTTP
service front-end (:mod:`repro.service`) builds on: an event loop
submits points as requests arrive and awaits their futures instead of
blocking on a whole grid.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import threading
from collections.abc import Iterable, Sequence
from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.harness.runners import PointMetrics, execute_point_instrumented
from repro.harness.spec import SweepPoint, SweepSpec
from repro.harness.store import MISS, ResultStore


class SweepError(RuntimeError):
    """A sweep point failed or its worker process died."""


def _run_chunk(
    payload: list[tuple[str, dict[str, Any]]]
) -> list[tuple[Any, PointMetrics]]:
    """Worker entry point: execute a chunk of points in one task."""
    out: list[tuple[Any, PointMetrics]] = []
    for kind, params in payload:
        try:
            out.append(execute_point_instrumented(kind, params))
        except Exception as exc:
            raise SweepError(
                f"sweep point failed: kind={kind!r} params={params!r} ({exc})"
            ) from exc
    return out


@dataclass(slots=True)
class SweepReport:
    """How a sweep was satisfied: fresh executions vs cache hits."""

    executed: int = 0
    cached: int = 0
    jobs: int = 1
    #: Total wall-clock seconds spent inside freshly executed points
    #: (summed across workers, so it can exceed elapsed wall time).
    executed_seconds: float = 0.0
    #: The slowest freshly executed point, in seconds (straggler bound).
    max_point_seconds: float = 0.0
    #: Compute seconds the cache saved — the sum of recorded ``elapsed_s``
    #: over cache hits (hits on pre-timing entries contribute nothing).
    saved_seconds: float = 0.0
    #: Compiled-trace cache events observed by freshly executed points.
    trace_hits: int = 0
    trace_misses: int = 0
    #: Cache hits served from the in-memory hot tier (a subset of
    #: ``cached``; zero when the store has no tier attached).
    hot_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cached

    def note_executed(self, metrics: PointMetrics) -> None:
        self.executed += 1
        self.executed_seconds += metrics.elapsed_s
        self.max_point_seconds = max(self.max_point_seconds, metrics.elapsed_s)
        self.trace_hits += metrics.trace_hits
        self.trace_misses += metrics.trace_misses

    def note_cached(self, elapsed_s: float | None, hot: bool = False) -> None:
        self.cached += 1
        if elapsed_s:
            self.saved_seconds += elapsed_s
        if hot:
            self.hot_hits += 1

    def timing_summary(self) -> str:
        """Human-readable per-point timing, e.g. for the CLI status line."""
        parts = []
        if self.executed:
            avg = self.executed_seconds / self.executed
            parts.append(
                f"avg {avg:.2f}s/pt, max {self.max_point_seconds:.2f}s"
            )
        if self.saved_seconds:
            parts.append(f"cache saved ~{self.saved_seconds:.1f}s")
        if self.trace_hits or self.trace_misses:
            parts.append(
                f"trace cache {self.trace_hits}h/{self.trace_misses}m"
            )
        if self.hot_hits:
            parts.append(f"hot tier {self.hot_hits}h")
        return "; ".join(parts)


@dataclass(slots=True)
class SweepResult:
    """Ordered (point, value) pairs plus an execution report."""

    points: list[SweepPoint]
    values: list[Any]
    report: SweepReport = field(default_factory=SweepReport)

    def __len__(self) -> int:
        return len(self.points)

    def items(self) -> Iterable[tuple[SweepPoint, Any]]:
        return zip(self.points, self.values)

    def value(self, **filters: Any) -> Any:
        """The value of the first point matching all given parameters."""
        for point, value in self.items():
            if all(point.get(name) == want for name, want in filters.items()):
                return value
        raise KeyError(f"no sweep point matches {filters!r}")


@dataclass(frozen=True, slots=True)
class PointOutcome:
    """One incrementally executed point: its value and how it was had."""

    value: Any
    #: Compute wall seconds — of this execution for fresh points, of the
    #: original execution for cache hits (None on pre-timing entries).
    elapsed_s: float | None
    #: True when the value came from the :class:`ResultStore`.
    cached: bool
    #: Compiled-trace cache events this execution observed (always 0
    #: for cache hits — a cached point never compiles anything).
    trace_hits: int = 0
    trace_misses: int = 0
    #: True when a cached value was served from the in-memory hot tier
    #: (no filesystem I/O beyond at most one validating ``stat``).
    hot: bool = False


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value (0 means all cores)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _fork_context() -> multiprocessing.context.BaseContext | None:
    if "fork" in multiprocessing.get_all_start_methods():
        # fork keeps runner kinds registered by the calling process
        # (e.g. in tests) visible to the workers.
        return multiprocessing.get_context("fork")
    return None


class ParallelRunner:
    """Executes sweeps with caching, worker fan-out, and serial fallback.

    * ``jobs``    — worker processes; 0 = all cores, 1 = serial (default),
    * ``store``   — optional :class:`ResultStore` consulted before and
      written after execution,
    * ``refresh`` — recompute every point and overwrite the cache,
    * ``chunk_size`` — explicit points per worker task; by default the
      grid is packed into ~4 waves per worker with straggler-aware
      greedy packing: each chunk gets an (approximately) equal
      *predicted duration*, using wall times the store recorded for
      the same point, the same app, or the same kind (ocean points run
      ~2x em3d's, so fixed-size chunks serialize the tail).

    Batch mode (:meth:`run`) executes a whole grid and blocks.
    Incremental mode (:meth:`submit_point`) executes one point at a time
    on a persistent pool and returns a future — with ``jobs > 1`` the
    pool is worker processes, with ``jobs == 1`` a single background
    thread (identical results; keeps a driving event loop responsive).
    """

    def __init__(
        self,
        jobs: int | None = 1,
        store: ResultStore | None = None,
        refresh: bool = False,
        chunk_size: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.store = store
        self.refresh = refresh
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        #: Report of the most recent :meth:`run` (None before any run).
        self.last_report: SweepReport | None = None
        self._incremental: Executor | None = None
        self._incremental_lock = threading.Lock()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def run(self, sweep: SweepSpec | Sequence[SweepPoint]) -> SweepResult:
        """Execute a spec (or explicit point list); order is preserved."""
        points = list(sweep.points() if isinstance(sweep, SweepSpec) else sweep)
        report = SweepReport(jobs=self.jobs)
        unique: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        results: dict[SweepPoint, Any] = {}
        pending: list[SweepPoint] = []
        if self.store is not None and not self.refresh:
            for point in unique:
                entry = self.store.load_entry(point)
                if entry is MISS:
                    pending.append(point)
                else:
                    results[point] = entry.result
                    report.note_cached(entry.elapsed_s, hot=entry.hot)
        else:
            pending = unique

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                fresh = self._run_parallel(pending)
            else:
                fresh = [self._execute(point) for point in pending]
            for point, (value, metrics) in zip(pending, fresh):
                results[point] = value
                if self.store is not None:
                    self.store.store(
                        point,
                        value,
                        elapsed_s=metrics.elapsed_s,
                        meta=metrics.trace_meta,
                    )
                report.note_executed(metrics)

        self.last_report = report
        return SweepResult(
            points=points, values=[results[p] for p in points], report=report
        )

    # ------------------------------------------------------------------
    def _execute(self, point: SweepPoint) -> tuple[Any, PointMetrics]:
        try:
            return execute_point_instrumented(point.kind, point.as_dict())
        except Exception as exc:
            raise SweepError(f"sweep point failed: {point!r} ({exc})") from exc

    def _run_parallel(
        self, pending: list[SweepPoint]
    ) -> list[tuple[Any, PointMetrics]]:
        workers = min(self.jobs, len(pending))
        chunks = self._pack_chunks(pending, workers)
        context = self.mp_context or _fork_context()
        results: dict[int, tuple[Any, PointMetrics]] = {}
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(
                    _run_chunk,
                    [(pending[i].kind, pending[i].as_dict()) for i in chunk],
                ): chunk
                for chunk in chunks
            }
            wait(futures, return_when=FIRST_EXCEPTION)
            for future, chunk in futures.items():
                try:
                    values = future.result()
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"a sweep worker process died while running "
                        f"{len(chunk)} point(s), e.g. {pending[chunk[0]]!r}; "
                        f"rerun with jobs=1 to see the failure inline"
                    ) from exc
                for index, value in zip(chunk, values):
                    results[index] = value
        return [results[index] for index in range(len(pending))]

    # ------------------------------------------------------------------
    # straggler-aware chunk packing
    # ------------------------------------------------------------------
    def _pack_chunks(
        self, pending: list[SweepPoint], workers: int
    ) -> list[list[int]]:
        """Split ``pending`` into chunks of ~equal predicted duration.

        Returns lists of indices into ``pending``.  With an explicit
        ``chunk_size`` the legacy fixed-size slicing is kept; otherwise
        the grid is greedy-packed (longest-predicted-first into the
        least-loaded chunk) across ~4 waves per worker.  Packing only
        changes which worker task runs a point — results are reassembled
        in grid order either way, so output is deterministic.
        """
        count = len(pending)
        if self.chunk_size:
            return [
                list(range(start, min(start + self.chunk_size, count)))
                for start in range(0, count, self.chunk_size)
            ]
        bins = min(count, workers * 4)
        durations = self.predicted_durations(pending)
        order = sorted(range(count), key=lambda i: (-durations[i], i))
        heap: list[tuple[float, int]] = [(0.0, b) for b in range(bins)]
        packed: list[list[int]] = [[] for _ in range(bins)]
        for index in order:
            load, which = heapq.heappop(heap)
            packed[which].append(index)
            heapq.heappush(heap, (load + durations[index], which))
        return [sorted(chunk) for chunk in packed if chunk]

    def predicted_durations(self, pending: list[SweepPoint]) -> list[float]:
        """Predicted compute seconds per point, from recorded wall times.

        Precedence: the point's own stored time (available under
        ``refresh``, where entries exist but are being recomputed), then
        the mean over recorded entries of the same kind with the same
        ``app``, then the kind-level mean, then the overall mean (1.0
        when the store has no timing signal at all — equal weights make
        greedy packing degrade to balanced counts).  Shared by batch
        chunk packing and the service's background-job submission order
        (stragglers first).
        """
        if self.store is None:
            return [1.0] * len(pending)
        by_kind: dict[str, list[tuple[dict[str, Any], float]]] = {}
        for point in pending:
            if point.kind not in by_kind:
                by_kind[point.kind] = self.store.recorded_times(point.kind)
        app_means: dict[tuple[str, Any], float] = {}
        kind_means: dict[str, float] = {}
        everything: list[float] = []
        for kind, records in by_kind.items():
            sums: dict[Any, list[float]] = {}
            for params, elapsed in records:
                everything.append(elapsed)
                sums.setdefault(params.get("app"), []).append(elapsed)
            if records:
                kind_means[kind] = sum(e for _p, e in records) / len(records)
            for app, values in sums.items():
                if app is not None:
                    app_means[(kind, app)] = sum(values) / len(values)
        fallback = sum(everything) / len(everything) if everything else 1.0

        durations: list[float] = []
        for point in pending:
            entry = self.store.load_entry(point)
            if entry is not MISS and entry.elapsed_s:
                durations.append(entry.elapsed_s)
                continue
            key = (point.kind, point.get("app"))
            durations.append(
                app_means.get(key, kind_means.get(point.kind, fallback))
            )
        return durations

    # ------------------------------------------------------------------
    # incremental execution (submit/poll, used by the service layer)
    # ------------------------------------------------------------------
    def cached_outcome(self, point: SweepPoint) -> PointOutcome | None:
        """The stored outcome for ``point``, or None (miss / no store)."""
        if self.store is None or self.refresh:
            return None
        entry = self.store.load_entry(point)
        if entry is MISS:
            return None
        return PointOutcome(
            value=entry.result,
            elapsed_s=entry.elapsed_s,
            cached=True,
            hot=entry.hot,
        )

    def submit_point(self, point: SweepPoint) -> "Future[PointOutcome]":
        """Submit one point for execution; returns a future of its outcome.

        Cache hits resolve immediately without touching the pool.  On a
        miss the point runs on the persistent incremental pool and the
        result (with its wall time) is written back to the store before
        the future resolves, so a concurrent batch run or another
        service replica sharing the cache dir sees it.
        """
        cached = self.cached_outcome(point)
        if cached is not None:
            done: Future[PointOutcome] = Future()
            done.set_result(cached)
            return done

        pool = self._ensure_incremental()
        try:
            inner = pool.submit(
                execute_point_instrumented, point.kind, point.as_dict()
            )
        except BrokenProcessPool:
            # an earlier point killed a worker; rebuild the pool once so
            # one crash doesn't poison every later submission.
            self._discard_incremental(pool)
            pool = self._ensure_incremental()
            inner = pool.submit(
                execute_point_instrumented, point.kind, point.as_dict()
            )

        outer: Future[PointOutcome] = Future()

        def _finish(fut: "Future[tuple[Any, PointMetrics]]") -> None:
            if fut.cancelled():
                # close()/_discard_incremental cancel queued work; the
                # outer future must still resolve or waiters hang.
                outer.set_exception(
                    SweepError(f"sweep point cancelled before running: {point!r}")
                )
                return
            exc = fut.exception()
            if exc is not None:
                if isinstance(exc, BrokenProcessPool):
                    self._discard_incremental(pool)
                outer.set_exception(
                    SweepError(f"sweep point failed: {point!r} ({exc})")
                )
                return
            value, metrics = fut.result()
            if self.store is not None:
                try:
                    self.store.store(
                        point,
                        value,
                        elapsed_s=metrics.elapsed_s,
                        meta=metrics.trace_meta,
                    )
                except OSError:
                    pass  # a full/readonly cache degrades to recomputes
            outer.set_result(
                PointOutcome(
                    value=value,
                    elapsed_s=metrics.elapsed_s,
                    cached=False,
                    trace_hits=metrics.trace_hits,
                    trace_misses=metrics.trace_misses,
                )
            )

        inner.add_done_callback(_finish)
        return outer

    def _ensure_incremental(self) -> Executor:
        with self._incremental_lock:
            if self._incremental is None:
                if self.jobs > 1:
                    self._incremental = ProcessPoolExecutor(
                        max_workers=self.jobs,
                        mp_context=self.mp_context or _fork_context(),
                    )
                else:
                    self._incremental = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix="repro-point"
                    )
            return self._incremental

    def _discard_incremental(self, pool: Executor) -> None:
        """Drop a broken pool so the next submission builds a fresh one.

        Identity-guarded: a straggler failure callback from an already
        replaced pool must not tear down its healthy successor.
        """
        with self._incremental_lock:
            if self._incremental is pool:
                self._incremental = None
        pool.shutdown(wait=False, cancel_futures=True)

    @property
    def incremental_started(self) -> bool:
        """True once a cache miss has forced the pool into existence."""
        return self._incremental is not None

    def close(self) -> None:
        """Shut down the incremental pool (no-op if never started)."""
        with self._incremental_lock:
            pool, self._incremental = self._incremental, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
