"""In-process LRU hot tier in front of the on-disk :class:`ResultStore`.

The store's entries are content-addressed and immutable — the same key
always names the same result bits — so a served point pays filesystem
I/O (open + read + JSON parse) on *every* hit purely for data that
cannot have changed.  The hot tier keeps recently touched
:class:`~repro.harness.store.StoredEntry` objects in memory: the first
load of a key reads the disk (the shared cold tier), every later load
is a dictionary lookup, and writes populate the tier directly so a
point computed by this process never touches the disk again to be
served.

Bounds and coherence:

* the tier is bounded in **both** entry count and (approximate) bytes —
  the size charged per entry is the length of its on-disk JSON, so the
  byte bound tracks what a cache admin actually reasons about;
* eviction is strict LRU (loads and stores refresh recency), counted in
  ``evictions``;
* entries larger than the byte bound are never admitted (they would
  evict everything else for one oversized result);
* correctness never depends on invalidation, because the cold tier is
  content-addressed: a stale hot entry can only differ in *metadata*
  (e.g. a ``--refresh`` writer re-recording ``elapsed_s``), never in the
  result bits.  Deployments that care anyway can construct the tier
  with ``validate=True``: each hit then re-stats the backing file and
  drops the entry when its ``(mtime_ns, size)`` stamp changed — one
  ``stat`` per hit instead of a full read + parse, and writer
  *processes* (peer replicas, CLI ``--refresh`` runs) are observed
  within one request.

Thread safety: the tier is touched from an event loop, the incremental
pool's completion callbacks, and batch sweep threads concurrently; all
state is guarded by one lock (every operation is a dict touch, so the
lock is never held across I/O except the optional validate ``stat``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import cycle: store.py constructs tiers
    from repro.harness.store import StoredEntry

#: Default bounds: plenty for every grid the paper ships (a few hundred
#: points at a few KB each) while capping a pathological deployment.
DEFAULT_HOT_ENTRIES = 1024
DEFAULT_HOT_BYTES = 64 * 1024 * 1024


@dataclass(slots=True)
class _Slot:
    """One resident entry: the value, its charge, and its disk stamp."""

    entry: "StoredEntry"
    nbytes: int
    #: ``(st_mtime_ns, st_size)`` of the backing file at admission time,
    #: or None when the tier does not validate.
    stamp: tuple[int, int] | None


class HotTier:
    """A bounded, counted, thread-safe LRU of :class:`StoredEntry`."""

    def __init__(
        self,
        max_entries: int = DEFAULT_HOT_ENTRIES,
        max_bytes: int = DEFAULT_HOT_BYTES,
        validate: bool = False,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.validate = validate
        self._lock = threading.Lock()
        self._slots: OrderedDict[str, _Slot] = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries dropped because their backing file changed (validate
        #: mode) or because the store discarded/overwrote them.
        self.invalidations = 0

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @staticmethod
    def _stat_stamp(path: Path) -> tuple[int, int] | None:
        try:
            status = os.stat(path)
        except OSError:
            return None
        return (status.st_mtime_ns, status.st_size)

    def get(self, key: str, path: Path) -> "StoredEntry | None":
        """The resident entry for ``key``, or None (a tier miss).

        A hit refreshes LRU recency and is returned with ``hot=True`` so
        callers (``/statz``, sweep reports) can attribute it.  In
        validate mode a hit whose backing file stamp changed — or whose
        file vanished — is dropped and reported as a miss, so the next
        load re-reads the cold tier.
        """
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                self.misses += 1
                return None
            if slot.stamp is not None:
                # stat outside the lock would race a concurrent put;
                # a local stat is ~1µs, far cheaper than read + parse.
                if self._stat_stamp(path) != slot.stamp:
                    self._drop(key)
                    self.invalidations += 1
                    self.misses += 1
                    return None
            self._slots.move_to_end(key)
            self.hits += 1
            return replace(slot.entry, hot=True)

    def put(self, key: str, entry: "StoredEntry", nbytes: int, path: Path) -> None:
        """Admit (or refresh) ``key``; evicts LRU entries past the bounds."""
        if nbytes > self.max_bytes:
            return
        stamp = self._stat_stamp(path) if self.validate else None
        with self._lock:
            if key in self._slots:
                self._drop(key)
            self._slots[key] = _Slot(
                entry=replace(entry, hot=False), nbytes=nbytes, stamp=stamp
            )
            self._bytes += nbytes
            while len(self._slots) > self.max_entries or self._bytes > self.max_bytes:
                evicted, slot = self._slots.popitem(last=False)
                self._bytes -= slot.nbytes
                self.evictions += 1

    def invalidate(self, key: str) -> None:
        """Drop ``key`` if resident (a discarded or overwritten entry)."""
        with self._lock:
            if key in self._slots:
                self._drop(key)
                self.invalidations += 1

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._slots)
            self._slots.clear()
            self._bytes = 0
            self.invalidations += dropped

    def _drop(self, key: str) -> None:
        """Remove ``key`` unconditionally; caller holds the lock."""
        slot = self._slots.pop(key)
        self._bytes -= slot.nbytes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._bytes

    def keys(self) -> list[str]:
        """Resident keys, least- to most-recently used (for tests)."""
        with self._lock:
            return list(self._slots)

    def stats(self) -> dict[str, Any]:
        """The ``hot_tier`` section of ``/statz`` (and ``/metrics``)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._slots),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "validate": self.validate,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hits / total, 4) if total else None,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotTier(entries={len(self)}/{self.max_entries}, "
            f"bytes={self.bytes}/{self.max_bytes})"
        )
