"""Declarative experiment grids: sweep specs and sweep points.

A :class:`SweepSpec` declares an experiment as a parameter grid — the
Cartesian product of named axes on top of a set of base parameters —
instead of hand-written nested loops.  Expanding the spec yields
:class:`SweepPoint` instances: frozen, hashable, JSON-representable
parameter assignments that a point runner (see
:mod:`repro.harness.runners`) can execute in any process, in any order,
with bit-identical results.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.common.canonical import canonical_hash


#: Tags a frozen mapping so it cannot be confused with a frozen list of
#: two-element lists when thawing back to JSON form.
_MAP_TAG = "\x00map\x00"


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to hashable tuple forms."""
    if isinstance(value, Mapping):
        return (
            _MAP_TAG,
            tuple(sorted((str(k), _freeze(v)) for k, v in value.items())),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"sweep parameters must be JSON-representable, got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON output (tuples become lists)."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _MAP_TAG and isinstance(value[1], tuple):
            return {key: _thaw(val) for key, val in value[1]}
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One cell of an experiment grid: a runner kind plus its parameters.

    ``params`` is a sorted tuple of (name, frozen-value) pairs;
    ``key`` is the content hash of the canonical JSON form.  Identity
    (``==``/``hash``) is by kind and key, *not* by Python equality of
    the parameter values — ``1``, ``1.0``, and ``True`` compare equal
    in Python but serialize differently, and the cache is addressed by
    the serialized form, so the two notions must agree.  Build points
    with :meth:`make` rather than the raw constructor.
    """

    kind: str
    params: tuple[tuple[str, Any], ...] = field(compare=False)
    key: str = field(default="", repr=False)

    @classmethod
    def make(cls, kind: str, params: Mapping[str, Any]) -> "SweepPoint":
        frozen = tuple(sorted((str(k), _freeze(v)) for k, v in params.items()))
        thawed = {key: _thaw(value) for key, value in frozen}
        content = canonical_hash({"kind": kind, "params": thawed})
        return cls(kind=kind, params=frozen, key=content)

    def as_dict(self) -> dict[str, Any]:
        """The parameters as a plain JSON-ready dict (tuples -> lists)."""
        return {key: _thaw(value) for key, value in self.params}

    def __getitem__(self, key: str) -> Any:
        for name, value in self.params:
            if name == key:
                return _thaw(value)
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"SweepPoint({self.kind}: {inner})"


@dataclass(slots=True)
class SweepSpec:
    """An experiment declared as a parameter grid.

    * ``kind``   — which registered point runner executes each cell,
    * ``axes``   — name -> values; the grid is their Cartesian product,
      iterated in declaration order (first axis varies slowest),
    * ``base``   — parameters shared by every point,
    * ``derive`` — optional per-point hook returning extra parameters
      computed from the cell (e.g. per-app iteration counts); applied at
      expansion time, so workers only ever see concrete parameters,
    * ``where``  — optional predicate to drop cells from a ragged grid.
    """

    kind: str
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    derive: Callable[[dict[str, Any]], Mapping[str, Any]] | None = None
    where: Callable[[dict[str, Any]], bool] | None = None

    def points(self) -> list[SweepPoint]:
        """Expand the grid into concrete sweep points."""
        names = list(self.axes)
        for name in names:
            if not list(self.axes[name]):
                raise ValueError(f"axis {name!r} has no values")
        out: list[SweepPoint] = []
        for combo in itertools.product(*(self.axes[name] for name in names)):
            params: dict[str, Any] = dict(self.base)
            params.update(zip(names, combo))
            if self.where is not None and not self.where(dict(params)):
                continue
            if self.derive is not None:
                params.update(self.derive(dict(params)))
            out.append(SweepPoint.make(self.kind, params))
        return out

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.points())
