"""Point runners: the functions that execute one sweep cell.

A runner takes the concrete parameter dict of a :class:`SweepPoint` and
returns a JSON-representable result — plain dicts with string keys,
lists, numbers — so the same value survives a trip through a worker
process *and* through the on-disk :class:`~repro.harness.store.ResultStore`
bit-for-bit.  Experiment drivers reassemble their paper-shaped rows from
these raw results in the parent process.

Runners are registered by kind in a module-level registry so worker
processes can resolve them by name after importing this module.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

PointRunner = Callable[[dict[str, Any]], Any]


@dataclass(frozen=True, slots=True)
class PointMetrics:
    """Measurements that ride alongside one point's result.

    ``elapsed_s`` is the compute wall time; ``trace_hits`` /
    ``trace_misses`` count the compiled-trace cache events the
    computation observed (0/0 for kinds that never compile a trace, or
    when no trace cache is configured).  Metrics travel back from worker
    processes with the result and feed :class:`ResultStore` entry
    metadata, sweep reports, and the service's ``/statz``.
    """

    elapsed_s: float
    trace_hits: int = 0
    trace_misses: int = 0

    @property
    def trace_meta(self) -> dict[str, Any] | None:
        """Entry-v3 ``meta`` payload recording trace-cache provenance."""
        if not (self.trace_hits or self.trace_misses):
            return None
        return {
            "trace_cache": {
                "hits": self.trace_hits,
                "misses": self.trace_misses,
            }
        }

_RUNNERS: dict[str, PointRunner] = {}


def register_runner(kind: str) -> Callable[[PointRunner], PointRunner]:
    """Class of decorator: ``@register_runner("accuracy")``."""

    def decorate(fn: PointRunner) -> PointRunner:
        if kind in _RUNNERS:
            raise ValueError(f"runner kind {kind!r} already registered")
        _RUNNERS[kind] = fn
        return fn

    return decorate


def get_runner(kind: str) -> PointRunner:
    try:
        return _RUNNERS[kind]
    except KeyError:
        known = ", ".join(sorted(_RUNNERS))
        raise ValueError(f"unknown runner kind {kind!r} (known: {known})") from None


#: Per-kind parameter validators, run *before* any point is claimed,
#: queued, or computed.  A validator raises :class:`ValueError` with a
#: message fit to show a user (the CLI relays it on stderr, the
#: service as HTTP 400) — e.g. an unknown ``engine`` fails fast with
#: the menu of valid engines instead of surfacing as a mid-sweep
#: worker error.
ParamValidator = Callable[[Mapping[str, Any]], None]
_VALIDATORS: dict[str, ParamValidator] = {}


def register_validator(kind: str) -> Callable[[ParamValidator], ParamValidator]:
    def decorate(fn: ParamValidator) -> ParamValidator:
        _VALIDATORS[kind] = fn
        return fn

    return decorate


def validate_point_params(kind: str, params: Mapping[str, Any]) -> None:
    """Raise :class:`ValueError` when ``params`` can never run."""
    validator = _VALIDATORS.get(kind)
    if validator is not None:
        validator(params)


@register_validator("accuracy")
def _validate_accuracy(params: Mapping[str, Any]) -> None:
    from repro.eval.accuracy import ENGINES

    engine = params.get("engine", "vectorized")
    if engine not in ENGINES:
        raise ValueError(
            f"unknown accuracy engine {engine!r} "
            f"(known: {', '.join(ENGINES)})"
        )


@register_validator("speculation")
def _validate_speculation(params: Mapping[str, Any]) -> None:
    from repro.sim.fastevents import ENGINES

    engine = params.get("engine", "fast")
    if engine not in ENGINES:
        raise ValueError(
            f"unknown timing engine {engine!r} "
            f"(known: {', '.join(ENGINES)})"
        )


def runner_kinds() -> tuple[str, ...]:
    return tuple(sorted(_RUNNERS))


def execute_point(kind: str, params: Mapping[str, Any]) -> Any:
    """Execute one sweep cell in the current process."""
    return get_runner(kind)(dict(params))


def execute_point_timed(kind: str, params: Mapping[str, Any]) -> tuple[Any, float]:
    """Execute one sweep cell, returning ``(result, wall_seconds)``."""
    result, metrics = execute_point_instrumented(kind, params)
    return result, metrics.elapsed_s


def execute_point_instrumented(
    kind: str, params: Mapping[str, Any]
) -> tuple[Any, PointMetrics]:
    """Execute one sweep cell, returning ``(result, metrics)``.

    The metrics travel back from worker processes alongside the result
    and are persisted in :class:`~repro.harness.store.ResultStore`
    entries, feeding straggler-aware chunk packing and ``/statz``.
    """
    # Lazy import: the trace pipeline pulls numpy in, and the counter
    # snapshot is the only coupling the harness needs.
    from repro.trace.cache import snapshot_counters

    hits_before, misses_before = snapshot_counters()
    started = time.perf_counter()
    result = execute_point(kind, params)
    elapsed = time.perf_counter() - started
    hits_after, misses_after = snapshot_counters()
    return result, PointMetrics(
        elapsed_s=elapsed,
        trace_hits=hits_after - hits_before,
        trace_misses=misses_after - misses_before,
    )


# ----------------------------------------------------------------------
# built-in kinds
# ----------------------------------------------------------------------
@register_runner("accuracy")
def run_accuracy_point(params: dict[str, Any]) -> dict[str, Any]:
    """Train predictors on one app trace (Figures 7-8, Tables 3-4).

    Parameters: ``app`` (required), ``depth``, ``iterations``,
    ``predictors``, ``num_procs``, ``seed``, ``race_seed``, ``engine``
    — the same surface as :func:`repro.eval.accuracy.run_predictors`.
    ``engine`` defaults to the vectorized trace pipeline; both engines
    are bit-identical, so it is excluded from cache keys entirely
    (:data:`~repro.harness.store.KEY_NEUTRAL_PARAMS`).
    """
    from repro.eval.accuracy import run_predictors

    runs = run_predictors(
        params["app"],
        depth=int(params.get("depth", 1)),
        predictors=tuple(params.get("predictors", ("Cosmos", "MSP", "VMSP"))),
        num_procs=int(params.get("num_procs", 16)),
        iterations=params.get("iterations"),
        seed=params.get("seed", 1999),
        race_seed=params.get("race_seed", 7),
        engine=params.get("engine", "vectorized"),
    )
    return {
        "runs": {
            name: {
                "accuracy": run.accuracy,
                "coverage": run.coverage,
                "correct_fraction": run.correct_fraction,
                "average_pte": run.average_pte,
                "overhead_bytes": run.overhead_bytes,
            }
            for name, run in runs.items()
        }
    }


@register_runner("speculation")
def run_speculation_point(params: dict[str, Any]) -> dict[str, Any]:
    """Run one app on Base/FR/SWI timing simulators (Figure 9, Table 5).

    Parameters: ``app`` (required), ``iterations``, ``num_procs``,
    ``seed``, optional ``config`` overrides applied on top of the
    default :class:`~repro.common.config.SystemConfig`, and an optional
    ``engine`` (``"fast"`` | ``"compiled"`` | ``"reference"``)
    timing-engine override.  The engines are bit-identical (golden
    equivalence suite), so ``engine`` is excluded from cache keys
    (:data:`~repro.harness.store.KEY_NEUTRAL_PARAMS`) and cached
    entries stay valid whichever engine computed them.
    """
    from repro.common.config import SystemConfig
    from repro.eval.performance import PAPER_MODES, run_speculation

    overrides = dict(params.get("config") or {})
    # A config num_nodes override also sizes the workload, so
    # --set 'config={"num_nodes": N}' works without a separate num_procs.
    num_procs = int(params.get("num_procs", overrides.get("num_nodes", 16)))
    overrides.setdefault("num_nodes", num_procs)
    run = run_speculation(
        params["app"],
        num_procs=num_procs,
        iterations=params.get("iterations"),
        seed=params.get("seed", 1999),
        config=SystemConfig(**overrides),
        engine=params.get("engine", "fast"),
    )
    modes: dict[str, Any] = {}
    for mode in PAPER_MODES:
        comp, request = run.breakdown(mode)
        result = run.result(mode)
        modes[mode.value] = {
            "comp": comp,
            "request": request,
            "normalized": run.normalized_time(mode),
            "cycles": result.cycles,
        }
    return {"modes": modes, "table5": run.table5_row()}


@register_runner("analytic")
def run_analytic_point(params: dict[str, Any]) -> dict[str, Any]:
    """One Figure 6 panel of the analytic model.

    Parameters: ``panel`` (required), ``points``.
    """
    from repro.analytic.model import figure6_panel

    series = figure6_panel(params["panel"], points=int(params.get("points", 21)))
    return {
        "series": [
            {"value": value, "points": [[c, s] for c, s in pts]}
            for value, pts in series.items()
        ]
    }


@register_runner("selftest")
def run_selftest_point(params: dict[str, Any]) -> dict[str, Any]:
    """Harness self-test kind, used by the test suite and the docs.

    ``behavior`` selects the outcome: ``"ok"`` echoes ``payload`` along
    with the worker pid, ``"error"`` raises, ``"crash"`` kills the
    worker process outright (exercising the crash-surfacing path).
    ``sleep_s`` delays the point — race tests (claim takeover, worker
    interleaving) need points that take a controllable amount of time.
    """
    behavior = params.get("behavior", "ok")
    if behavior == "crash":
        os._exit(13)
    if behavior == "error":
        raise ValueError(f"selftest error: {params.get('payload')!r}")
    delay = params.get("sleep_s")
    if delay:
        time.sleep(float(delay))
    return {"echo": params.get("payload"), "pid": os.getpid()}
