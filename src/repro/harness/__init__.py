"""Parallel experiment harness: declarative sweeps, workers, caching.

Declare an experiment as a :class:`SweepSpec` grid, execute it with a
:class:`ParallelRunner` (serial or over worker processes), and let a
:class:`ResultStore` reuse every point already computed::

    from repro.harness import ParallelRunner, ResultStore, SweepSpec

    spec = SweepSpec(
        kind="accuracy",
        axes={"app": ("em3d", "moldyn"), "depth": (1, 2, 4)},
        base={"iterations": 8},
    )
    runner = ParallelRunner(jobs=4, store=ResultStore(".repro-cache"))
    result = runner.run(spec)
    best = result.value(app="em3d", depth=4)["runs"]["VMSP"]["accuracy"]

Every point is bit-deterministic (all randomness is seeded through
``DeterministicRng``), so serial, parallel, and cached executions are
interchangeable.  See ``docs/harness.md``.
"""

from repro.harness.claims import (
    DEFAULT_CLAIM_TTL_S,
    ClaimBoard,
    ClaimedRunner,
    ClaimInfo,
)
from repro.harness.hot_tier import (
    DEFAULT_HOT_BYTES,
    DEFAULT_HOT_ENTRIES,
    HotTier,
)
from repro.harness.runner import (
    ParallelRunner,
    PointOutcome,
    SweepError,
    SweepReport,
    SweepResult,
    resolve_jobs,
)
from repro.harness.runners import (
    PointMetrics,
    execute_point,
    execute_point_instrumented,
    execute_point_timed,
    get_runner,
    register_runner,
    register_validator,
    runner_kinds,
    validate_point_params,
)
from repro.harness.spec import SweepPoint, SweepSpec
from repro.harness.store import (
    ENTRY_VERSION,
    KEY_NEUTRAL_PARAMS,
    MISS,
    SCHEMA_VERSION,
    ResultStore,
    StoredEntry,
)

__all__ = [
    "ClaimBoard",
    "ClaimInfo",
    "ClaimedRunner",
    "DEFAULT_CLAIM_TTL_S",
    "DEFAULT_HOT_BYTES",
    "DEFAULT_HOT_ENTRIES",
    "ENTRY_VERSION",
    "HotTier",
    "KEY_NEUTRAL_PARAMS",
    "MISS",
    "ParallelRunner",
    "PointMetrics",
    "PointOutcome",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoredEntry",
    "SweepError",
    "SweepPoint",
    "SweepReport",
    "SweepResult",
    "SweepSpec",
    "execute_point",
    "execute_point_instrumented",
    "execute_point_timed",
    "get_runner",
    "register_runner",
    "register_validator",
    "resolve_jobs",
    "runner_kinds",
    "validate_point_params",
]
