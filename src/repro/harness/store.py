"""Content-addressed, on-disk cache of sweep-point results.

Layout: one JSON file per point under ``<root>/<kind>/<key>.json``,
where ``key`` is the SHA-256 of the point's canonical parameters plus
the store's *fingerprint* — a dict of code-relevant configuration (at
minimum the result schema version, typically also the package version).
Changing the fingerprint invalidates every cached entry without
touching the files; re-running a figure with an unchanged fingerprint
reuses every point it already computed.

Writes are atomic (temp file + ``os.replace``), so a crashed or
concurrent run never leaves a truncated entry behind; unreadable
entries are treated as misses and overwritten.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from repro.common.canonical import canonical_hash
from repro.harness.spec import SweepPoint

#: Bump when a runner's result schema changes shape or meaning; every
#: previously cached point then misses.
SCHEMA_VERSION = 1

#: Sentinel distinguishing "no cached result" from a cached ``None``.
MISS = object()


class ResultStore:
    """A content-addressed JSON store keyed by sweep point + fingerprint."""

    def __init__(
        self, root: str | os.PathLike, fingerprint: Mapping[str, Any] | None = None
    ) -> None:
        from repro import __version__

        self.root = Path(root)
        self.fingerprint: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "version": __version__,
        }
        if fingerprint:
            self.fingerprint.update(fingerprint)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key_for(self, point: SweepPoint) -> str:
        return canonical_hash(
            {
                "kind": point.kind,
                "params": point.as_dict(),
                "fingerprint": self.fingerprint,
            }
        )

    def path_for(self, point: SweepPoint) -> Path:
        return self.root / point.kind / f"{self.key_for(point)}.json"

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def load(self, point: SweepPoint) -> Any:
        """The cached result for ``point``, or :data:`MISS`."""
        path = self.path_for(point)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # ValueError covers JSONDecodeError and UnicodeDecodeError:
            # any unreadable entry is a miss, to be recomputed.
            return MISS
        if "result" not in entry:
            return MISS
        return entry["result"]

    def store(self, point: SweepPoint, result: Any) -> Path:
        """Atomically persist one point's result; returns its path."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "kind": point.kind,
            "params": point.as_dict(),
            "fingerprint": self.fingerprint,
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, indent=1)
        os.replace(tmp, path)
        return path

    def discard(self, point: SweepPoint) -> None:
        try:
            self.path_for(point).unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        """Cached entries on disk (across *all* fingerprints)."""
        return len(self._entries())

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            path.unlink()
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(root={str(self.root)!r}, entries={len(self)})"
