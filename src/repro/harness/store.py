"""Content-addressed, on-disk cache of sweep-point results.

Layout: one JSON file per point under ``<root>/<kind>/<key>.json``,
where ``key`` is the SHA-256 of the point's canonical parameters plus
the store's *fingerprint* — a dict of code-relevant configuration (at
minimum the result schema version, typically also the package version).
Changing the fingerprint invalidates every cached entry without
touching the files; re-running a figure with an unchanged fingerprint
reuses every point it already computed.

Entries carry a small amount of metadata beyond the result itself —
currently the wall-clock seconds the point took to compute
(``elapsed_s``), the first half of straggler-aware scheduling.  The
entry format is versioned separately from the fingerprint
(``ENTRY_VERSION``): adding a metadata field bumps the entry version
but *not* the fingerprint, so caches written before the field existed
still load (their metadata just reads as absent).

Writes are atomic (unique temp file + ``os.replace``), so a crashed or
concurrent writer — another process *or* another thread of this one,
e.g. a running ``repro serve`` sharing a cache dir with a CLI sweep —
never leaves a truncated entry behind; unreadable entries are treated
as misses and overwritten.

A store can be fronted by an in-process
:class:`~repro.harness.hot_tier.HotTier`: ``load_entry``/``load``
consult memory first and fall through to the disk (the shared cold
tier) only on a tier miss; writes populate the tier; ``discard`` and
``clear`` invalidate it.  Misses are deliberately **never** cached —
the claim protocol polls the store waiting for entries peer replicas
are about to write, and a negative cache would turn that wait into a
livelock.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.common.canonical import canonical_hash
from repro.harness.hot_tier import HotTier
from repro.harness.spec import SweepPoint

#: Bump when a runner's result schema changes shape or meaning; every
#: previously cached point then misses.
SCHEMA_VERSION = 1

#: Version of the entry *file* format (metadata fields around the
#: result).  Bumping this does NOT invalidate caches — readers accept
#: any version and treat missing metadata as absent.
#: v1: kind/params/fingerprint/result.  v2: + elapsed_s.
#: v3: + meta (free-form JSON object: compiled-trace content hashes,
#: per-point trace-cache provenance).
ENTRY_VERSION = 3

#: Sentinel distinguishing "no cached result" from a cached ``None``.
MISS = object()

#: Per-kind parameter names excluded from cache keys because they
#: provably cannot change the result: the engine switches are
#: bit-identical by golden-equivalence contract (accuracy:
#: vectorized/reference; speculation: fast/compiled/reference), so a
#: point computed with ``--set engine=reference`` reuses — and is
#: reused by — the default engine's cached entry.  The stored entry
#: still records the params that computed it; only the address drops
#: them.  Claim keys derive from :meth:`ResultStore.key_for`, so the
#: exactly-once guarantee follows the same identity.
KEY_NEUTRAL_PARAMS: dict[str, frozenset[str]] = {
    "accuracy": frozenset({"engine"}),
    "speculation": frozenset({"engine"}),
}


@dataclass(frozen=True, slots=True)
class StoredEntry:
    """A cached result plus its per-point metadata."""

    result: Any
    #: Wall-clock seconds the original computation took, or ``None``
    #: for entries written before timing was recorded (entry v1).
    elapsed_s: float | None = None
    #: Free-form JSON metadata (entry v3): e.g. a compiled trace's
    #: content hash, or which trace-cache events a point's computation
    #: observed.  ``None`` on entries written before v3.
    meta: dict[str, Any] | None = None
    #: True when this load was served from the in-process hot tier
    #: instead of the disk (never persisted; set per load).
    hot: bool = False


class ResultStore:
    """A content-addressed JSON store keyed by sweep point + fingerprint."""

    def __init__(
        self,
        root: str | os.PathLike,
        fingerprint: Mapping[str, Any] | None = None,
        compact: bool = False,
        hot_tier: HotTier | None = None,
    ) -> None:
        from repro import __version__

        self.root = Path(root)
        #: Write entries without indentation.  Point results are small
        #: and stay human-readable (indent=1); bulk entries (compiled
        #: traces: tens of thousands of ints per column) would pay one
        #: line per array element on every write and parse.
        self.compact = compact
        #: Optional in-process LRU fronting the disk: loads consult it
        #: first, writes populate it (see :mod:`repro.harness.hot_tier`).
        self.hot_tier = hot_tier
        self.fingerprint: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "version": __version__,
        }
        if fingerprint:
            self.fingerprint.update(fingerprint)
        #: Incrementally maintained per-kind entry counts (None until
        #: the first :meth:`entry_counts` call scans the directory).
        self._counts: dict[str, int] | None = None
        self._counts_scanned_at: float | None = None
        self._counts_lock = threading.Lock()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key_for(self, point: SweepPoint) -> str:
        params = point.as_dict()
        for name in KEY_NEUTRAL_PARAMS.get(point.kind, ()):
            params.pop(name, None)
        return canonical_hash(
            {
                "kind": point.kind,
                "params": params,
                "fingerprint": self.fingerprint,
            }
        )

    def path_for(self, point: SweepPoint) -> Path:
        return self.root / point.kind / f"{self.key_for(point)}.json"

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def load_entry(self, point: SweepPoint) -> Any:
        """The cached :class:`StoredEntry` for ``point``, or :data:`MISS`.

        With a hot tier attached the memory copy is consulted first; a
        tier miss falls through to the disk read and, when it parses,
        populates the tier.  Misses are never cached (see module doc).
        """
        path = self.path_for(point)
        tier_key = None
        if self.hot_tier is not None:
            tier_key = f"{point.kind}/{path.stem}"
            resident = self.hot_tier.get(tier_key, path)
            if resident is not None:
                return resident
        try:
            raw = path.read_bytes()
            entry = json.loads(raw)
        except (OSError, ValueError):
            # ValueError covers JSONDecodeError and UnicodeDecodeError:
            # any unreadable entry is a miss, to be recomputed.
            return MISS
        if not isinstance(entry, dict) or "result" not in entry:
            return MISS
        elapsed = entry.get("elapsed_s")
        if not isinstance(elapsed, (int, float)):
            elapsed = None
        meta = entry.get("meta")
        if not isinstance(meta, dict):
            meta = None
        loaded = StoredEntry(result=entry["result"], elapsed_s=elapsed, meta=meta)
        if self.hot_tier is not None and tier_key is not None:
            self.hot_tier.put(tier_key, loaded, len(raw), path)
        return loaded

    def load(self, point: SweepPoint) -> Any:
        """The cached result for ``point``, or :data:`MISS`."""
        entry = self.load_entry(point)
        return entry if entry is MISS else entry.result

    def recorded_times(self, kind: str) -> list[tuple[dict[str, Any], float]]:
        """``(params, elapsed_s)`` for every readable entry of ``kind``.

        Deliberately scans across *all* fingerprints: entries written by
        older code versions still carry useful duration signal for
        straggler-aware chunk packing, which only needs relative
        magnitudes, not result compatibility.
        """
        directory = self.root / kind
        if not directory.is_dir():
            return []
        out: list[tuple[dict[str, Any], float]] = []
        for path in sorted(directory.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(entry, dict):
                continue
            elapsed = entry.get("elapsed_s")
            params = entry.get("params")
            if isinstance(elapsed, (int, float)) and isinstance(params, dict):
                out.append((params, float(elapsed)))
        return out

    def store(
        self,
        point: SweepPoint,
        result: Any,
        elapsed_s: float | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> Path:
        """Atomically persist one point's result; returns its path.

        The temp file gets a name unique per writer (``mkstemp``), so
        concurrent writers — other processes or other threads of this
        one — cannot collide on the staging file; the final rename is
        atomic either way.
        """
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "entry_version": ENTRY_VERSION,
            "kind": point.kind,
            "params": point.as_dict(),
            "fingerprint": self.fingerprint,
            "result": result,
        }
        if elapsed_s is not None:
            entry["elapsed_s"] = elapsed_s
        if meta is not None:
            entry["meta"] = dict(meta)
        if self.compact:
            body = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        else:
            body = json.dumps(entry, sort_keys=True, indent=1)
        # One stat before the atomic replace keeps the incremental
        # per-kind entry counts exact without ever rescanning; skipped
        # entirely until the first entry_counts() call asks for them.
        fresh_file = self._counts is not None and not path.exists()
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if fresh_file:
            with self._counts_lock:
                if self._counts is not None:
                    self._counts[point.kind] = self._counts.get(point.kind, 0) + 1
        if self.hot_tier is not None:
            self.hot_tier.put(
                f"{point.kind}/{path.stem}",
                StoredEntry(
                    result=result,
                    elapsed_s=elapsed_s,
                    meta=dict(meta) if meta is not None else None,
                ),
                len(body),
                path,
            )
        return path

    def discard(self, point: SweepPoint) -> None:
        path = self.path_for(point)
        if self.hot_tier is not None:
            self.hot_tier.invalidate(f"{point.kind}/{path.stem}")
        try:
            path.unlink()
        except FileNotFoundError:
            return
        with self._counts_lock:
            if self._counts is not None and self._counts.get(point.kind, 0) > 0:
                self._counts[point.kind] -= 1

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        """Cached entries on disk (across *all* fingerprints)."""
        return len(self._entries())

    def entry_counts(self, max_age_s: float | None = None) -> dict[str, int]:
        """Per-kind entry counts without a scan on the serving path.

        The directory is scanned **once** (lazily, on the first call);
        afterwards this process's own writes and discards keep the
        counts exact incrementally, so ``/statz`` and ``/metrics`` never
        pay an ``os.scandir`` per poll however large the cache grows.
        Entries written by *other* processes (peer replicas, concurrent
        CLI sweeps) are only picked up by a rescan — pass ``max_age_s``
        to bound that staleness when the cache dir is shared.
        """
        now = time.monotonic()
        with self._counts_lock:
            stale = (
                self._counts is None
                or (
                    max_age_s is not None
                    and self._counts_scanned_at is not None
                    and now - self._counts_scanned_at > max_age_s
                )
            )
            if not stale:
                assert self._counts is not None
                return dict(self._counts)
        counts: dict[str, int] = {}
        if self.root.is_dir():
            for kind_dir in self.root.iterdir():
                if not kind_dir.is_dir():
                    continue
                total = sum(1 for p in kind_dir.glob("*.json"))
                if total:
                    counts[kind_dir.name] = total
        with self._counts_lock:
            self._counts = counts
            self._counts_scanned_at = now
            return dict(self._counts)

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        entries = self._entries()
        for path in entries:
            path.unlink()
        if self.hot_tier is not None:
            self.hot_tier.clear()
        with self._counts_lock:
            if self._counts is not None:
                self._counts = {}
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultStore(root={str(self.root)!r}, entries={len(self)})"
