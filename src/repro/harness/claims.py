"""Cross-machine work claims: divide one grid among processes and hosts.

PRs 1–4 made a single host fast; this module makes *several* hosts (or
several processes on one host) share the compute of a grid the way they
already share its results.  The only coordination substrate is the
shared cache directory's filesystem — no broker, no sockets — which is
exactly what multiple ``repro serve`` replicas and CLI workers already
have in common.

The protocol is one **claim file per point** under a claims directory
(canonically ``<cache-dir>/claims/``):

* a worker claims a point by creating ``<store-key>.claim`` with
  ``O_CREAT | O_EXCL`` — the kernel guarantees exactly one creator wins,
  across processes and across NFS-style shared mounts;
* the file carries the owner's identity (worker id, pid, host) and its
  **mtime is the heartbeat**: the owner refreshes it while computing;
* a claim whose mtime is older than the TTL is *stale* — its owner is
  presumed dead, and any worker may **steal** it: the stale file is
  atomically renamed aside (exactly one stealer wins the rename) and a
  fresh claim is created with ``O_CREAT | O_EXCL`` again.

Because results land in the content-addressed
:class:`~repro.harness.store.ResultStore` with atomic writes, the worst
case of a *mis-tuned* TTL (a live-but-slow worker losing its claim) is
a duplicated computation, never a wrong or torn result — every worker
computes the same bits.

:class:`ClaimedRunner` wraps a :class:`~repro.harness.runner.ParallelRunner`
with this protocol: each worker claims a point before computing it,
skips points already cached or claimed elsewhere, and re-polls
released/stale claims until the grid is complete.  N workers pointed at
one shared cache dir therefore divide a grid between them, each point
computed exactly once (see the ``distributed-smoke`` CI lane).

Every claim transition is appended to ``events.log`` in the claims
directory (one JSON object per line, ``O_APPEND`` writes), which is how
tests and CI audit exactly-once execution per worker.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.harness.runner import (
    ParallelRunner,
    PointOutcome,
    SweepError,
    SweepReport,
    SweepResult,
)
from repro.harness.runners import PointMetrics
from repro.harness.spec import SweepPoint, SweepSpec
from repro.harness.store import MISS

#: Default seconds of heartbeat silence before a claim may be stolen.
#: Owners refresh their claims every TTL/4, so a live worker keeps a
#: comfortable margin even on a loaded host; a crashed worker's points
#: are reclaimed within one TTL.
DEFAULT_CLAIM_TTL_S = 120.0

#: Name of the append-only claim-transition log inside the claims dir.
EVENTS_LOG = "events.log"

_TOMB_COUNTER = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ClaimInfo:
    """What a claim file says about its holder."""

    owner: str | None
    pid: int | None
    host: str | None
    claimed_at: float | None
    #: Seconds since the last heartbeat (the file's mtime).
    age_s: float


def default_owner() -> str:
    """A worker id unique enough across hosts and processes."""
    return f"{socket.gethostname()}:{os.getpid()}"


class ClaimBoard:
    """The filesystem claim protocol over one claims directory.

    Thread-safe: a :class:`ClaimedRunner` touches the board from its
    caller, its heartbeat thread, and its waiter thread concurrently.
    Counters (``claimed``/``stolen``/``released``/``lost``/``computed``)
    feed the service's ``/statz`` claims section.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        owner: str | None = None,
        ttl_s: float = DEFAULT_CLAIM_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"claim TTL must be > 0 seconds, got {ttl_s}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.owner = owner or default_owner()
        self.ttl_s = float(ttl_s)
        self._host = socket.gethostname()
        self._lock = threading.Lock()
        self._held: set[str] = set()
        self.claimed = 0
        self.stolen = 0
        self.released = 0
        #: Claims that vanished or changed owner under us (TTL too low
        #: relative to compute time, or an operator deleted the file).
        self.lost = 0
        self.computed = 0

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        # ``.claim``, not ``.json``: the claims dir may live inside the
        # cache dir, whose entry counting globs ``*/*.json``.
        return self.root / f"{key}.claim"

    @property
    def log_path(self) -> Path:
        return self.root / EVENTS_LOG

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; True when this worker now holds it.

        Wins either by creating a fresh claim file (``O_CREAT|O_EXCL``)
        or by stealing one whose heartbeat is older than the TTL.
        """
        if self._create(key):
            return True
        info = self.read(key)
        if info is None:
            # released between our failed create and the read; one more
            # attempt — losing it again means another worker was faster.
            return self._create(key)
        if info.age_s <= self.ttl_s:
            return False
        # Stale: move the corpse aside.  ``os.rename`` of one specific
        # path succeeds for exactly one stealer; everyone else sees
        # FileNotFoundError and backs off.
        tomb = self.root / f".tomb-{os.getpid()}-{next(_TOMB_COUNTER)}"
        try:
            os.rename(self.path_for(key), tomb)
        except OSError:
            return False
        try:
            os.unlink(tomb)
        except OSError:
            pass
        with self._lock:
            self.stolen += 1
        self._log("stolen", key, {"from": info.owner, "age_s": round(info.age_s, 3)})
        # The slot is open again but not ours yet — a third worker may
        # have re-created it between our rename and this create.
        return self._create(key)

    def _create(self, key: str) -> bool:
        path = self.path_for(key)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        except FileNotFoundError:
            # claims dir deleted out from under us; recreate and retry
            self.root.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except OSError:
                return False
        payload = {
            "owner": self.owner,
            "pid": os.getpid(),
            "host": self._host,
            "claimed_at": time.time(),
        }
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with self._lock:
            self._held.add(key)
            self.claimed += 1
        self._log("claimed", key)
        return True

    def read(self, key: str) -> ClaimInfo | None:
        """The current claim on ``key``, or None when unclaimed.

        A claim file seen between its ``O_CREAT`` and its payload write
        reads as held by an unknown owner with a fresh heartbeat — it is
        never treated as stale or stealable just for being torn.
        """
        path = self.path_for(key)
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            return None
        owner = pid = host = claimed_at = None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict):
                owner = data.get("owner")
                pid = data.get("pid")
                host = data.get("host")
                claimed_at = data.get("claimed_at")
        except (OSError, ValueError):
            pass
        return ClaimInfo(
            owner=owner,
            pid=pid,
            host=host,
            claimed_at=claimed_at,
            age_s=max(0.0, time.time() - mtime),
        )

    def heartbeat(self) -> None:
        """Refresh the mtime of every held claim (and detect losses)."""
        with self._lock:
            held = list(self._held)
        for key in held:
            info = self.read(key)
            if info is None or (info.owner is not None and info.owner != self.owner):
                self._mark_lost(key)
                continue
            try:
                os.utime(self.path_for(key))
            except OSError:
                pass

    def release(self, key: str) -> None:
        """Drop a held claim so other workers may take the point over."""
        with self._lock:
            held = key in self._held
            self._held.discard(key)
        if not held:
            return
        info = self.read(key)
        if info is not None and info.owner not in (None, self.owner):
            # stolen while we computed — the file belongs to the thief now
            with self._lock:
                self.lost += 1
            self._log("lost", key, {"to": info.owner})
            return
        # Remove via rename-then-verify, not a bare unlink: a thief may
        # steal and re-create the claim between the read above and the
        # removal, and unlinking *its* file would open the point to a
        # third worker.  The rename grabs exactly one file; if it turns
        # out not to be ours, put it back.
        path = self.path_for(key)
        tomb = self.root / f".tomb-{os.getpid()}-{next(_TOMB_COUNTER)}"
        try:
            os.rename(path, tomb)
        except OSError:
            # already gone (the thief released too, or operator cleanup)
            with self._lock:
                self.released += 1
            self._log("released", key)
            return
        try:
            data = json.loads(tomb.read_text(encoding="utf-8"))
            renamed_owner = data.get("owner") if isinstance(data, dict) else None
        except (OSError, ValueError):
            renamed_owner = None  # torn ⇒ freshly created ⇒ not ours
        if renamed_owner != self.owner:
            try:
                os.link(tomb, path)  # restore; no-op if a third worker re-claimed
            except OSError:
                pass
            try:
                os.unlink(tomb)
            except OSError:
                pass
            with self._lock:
                self.lost += 1
            self._log("lost", key, {"to": renamed_owner})
            return
        try:
            os.unlink(tomb)
        except OSError:
            pass
        with self._lock:
            self.released += 1
        self._log("released", key)

    def release_all(self) -> None:
        with self._lock:
            held = list(self._held)
        for key in held:
            self.release(key)

    def note_computed(self, key: str) -> None:
        """Record that this worker freshly computed the point behind ``key``."""
        with self._lock:
            self.computed += 1
        self._log("computed", key)

    def _mark_lost(self, key: str) -> None:
        with self._lock:
            if key not in self._held:
                return
            self._held.discard(key)
            self.lost += 1
        self._log("lost", key)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def held(self) -> int:
        with self._lock:
            return len(self._held)

    def holds(self, key: str) -> bool:
        with self._lock:
            return key in self._held

    def stats(self) -> dict[str, Any]:
        """Snapshot for ``/statz`` and the CLI summary."""
        with self._lock:
            return {
                "dir": str(self.root),
                "owner": self.owner,
                "ttl_s": self.ttl_s,
                "held": len(self._held),
                "claimed": self.claimed,
                "stolen": self.stolen,
                "released": self.released,
                "lost": self.lost,
                "computed": self.computed,
            }

    def events(self) -> list[dict[str, Any]]:
        """Parsed ``events.log`` records (all workers', oldest first)."""
        try:
            lines = self.log_path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return []
        out: list[dict[str, Any]] = []
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a torn final line from a crashed writer
            if isinstance(record, dict):
                out.append(record)
        return out

    def _log(self, event: str, key: str, extra: dict[str, Any] | None = None) -> None:
        record = {
            "ts": round(time.time(), 3),
            "event": event,
            "key": key,
            "owner": self.owner,
        }
        if extra:
            record.update(extra)
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            fd = os.open(
                self.log_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass  # a full/readonly claims dir degrades to no audit log

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClaimBoard(root={str(self.root)!r}, owner={self.owner!r})"


class ClaimedRunner:
    """A :class:`ParallelRunner` that divides grids with other workers.

    Wraps an inner runner (whose :class:`ResultStore` must be the shared
    cache) and a :class:`ClaimBoard` (canonically over
    ``<cache-dir>/claims/``).  The interface mirrors the inner runner —
    ``run``, ``submit_point``, ``cached_outcome``, ``close``,
    ``last_report``, ``predicted_durations`` — so the CLI, the
    experiment drivers, and the HTTP service use either interchangeably.

    * **Batch** (:meth:`run`): a work-stealing pump — claim up to
      ``jobs`` uncached points, compute them on the inner runner's
      incremental pool, release each claim as its result lands, and
      re-poll points claimed elsewhere until the grid is complete
      (taking over stale claims along the way).
    * **Incremental** (:meth:`submit_point`): claim-or-wait — a claimed
      miss computes locally; a point claimed elsewhere resolves when its
      result appears in the store (or its claim goes stale and this
      worker steals the computation).

    A daemon heartbeat thread refreshes held claims every TTL/4, so only
    a *dead* worker's claims ever go stale.  ``refresh`` mode is
    rejected: recompute-everything contradicts compute-each-point-once.
    """

    def __init__(
        self,
        runner: ParallelRunner,
        claims: ClaimBoard,
        poll_interval_s: float = 0.25,
    ) -> None:
        if runner.store is None:
            raise ValueError(
                "claim coordination needs a shared ResultStore: claims divide "
                "the compute, the store shares the results"
            )
        if runner.refresh:
            raise ValueError(
                "claims cannot be combined with refresh: every worker would "
                "recompute every point, defeating exactly-once division"
            )
        self.runner = runner
        self.claims = claims
        self.poll_interval_s = poll_interval_s
        #: Report of the most recent :meth:`run` (None before any run).
        self.last_report: SweepReport | None = None
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._hb_thread: threading.Thread | None = None
        self._hb_stop = threading.Event()
        #: key -> (point, futures awaiting a point claimed elsewhere)
        self._waiting: dict[str, tuple[SweepPoint, list[Future]]] = {}
        self._waiter_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # delegation: look like a ParallelRunner to callers
    # ------------------------------------------------------------------
    @property
    def store(self):
        return self.runner.store

    @property
    def jobs(self) -> int:
        return self.runner.jobs

    @property
    def refresh(self) -> bool:
        return self.runner.refresh

    @property
    def incremental_started(self) -> bool:
        return self.runner.incremental_started

    def predicted_durations(self, points: list[SweepPoint]) -> list[float]:
        return self.runner.predicted_durations(points)

    def cached_outcome(self, point: SweepPoint) -> PointOutcome | None:
        return self.runner.cached_outcome(point)

    def claim_key(self, point: SweepPoint) -> str:
        """The claim file name for ``point``: its *store* key.

        The store key includes the fingerprint, so workers running
        different code versions never contend for each other's points.
        """
        return self.runner.store.key_for(point)

    # ------------------------------------------------------------------
    # batch execution: the work-stealing pump
    # ------------------------------------------------------------------
    def run(self, sweep: SweepSpec | Sequence[SweepPoint]) -> SweepResult:
        """Execute a grid cooperatively; blocks until *every* point of
        the grid has a result, whoever computed it."""
        points = list(sweep.points() if isinstance(sweep, SweepSpec) else sweep)
        report = SweepReport(jobs=self.runner.jobs)
        unique: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for point in points:
            if point not in seen:
                seen.add(point)
                unique.append(point)

        store = self.runner.store
        results: dict[SweepPoint, Any] = {}
        todo: deque[SweepPoint] = deque(unique)
        in_flight: dict[Future, tuple[SweepPoint, str]] = {}
        deferred: list[SweepPoint] = []
        #: Points whose acquire failed (claimed by another worker).
        #: Their re-polls are throttled: one ``stat`` per cycle until
        #: the peer's result appears, claim retries only every
        #: ``_acquire_interval`` — a worker waiting on a mostly-foreign
        #: 1000-point grid must not hammer the shared mount with a full
        #: open+read+acquire round per point per quarter second.
        blocked: set[SweepPoint] = set()
        retry_interval = self._acquire_interval()
        next_acquire_at = 0.0  # first pass always attempts claims
        failure: SweepError | None = None

        while todo or in_flight or deferred:
            progressed = False
            now = time.monotonic()
            try_acquire = now >= next_acquire_at
            if try_acquire:
                next_acquire_at = now + retry_interval
            while failure is None and todo and len(in_flight) < self.runner.jobs:
                point = todo.popleft()
                if point in blocked:
                    if store.path_for(point).exists():
                        entry = store.load_entry(point)
                        if entry is not MISS:
                            blocked.discard(point)
                            results[point] = entry.result
                            report.note_cached(entry.elapsed_s, hot=entry.hot)
                            progressed = True
                            continue
                    if not try_acquire:
                        deferred.append(point)
                        continue
                else:
                    entry = store.load_entry(point)
                    if entry is not MISS:
                        results[point] = entry.result
                        report.note_cached(entry.elapsed_s, hot=entry.hot)
                        progressed = True
                        continue
                key = self.claim_key(point)
                if not self.claims.acquire(key):
                    blocked.add(point)
                    deferred.append(point)
                    continue
                blocked.discard(point)
                # Re-check under the claim: another worker may have
                # finished this point between our miss and our acquire.
                entry = store.load_entry(point)
                if entry is not MISS:
                    self.claims.release(key)
                    results[point] = entry.result
                    report.note_cached(entry.elapsed_s, hot=entry.hot)
                    progressed = True
                    continue
                self._ensure_heartbeat()
                in_flight[self.runner.submit_point(point)] = (point, key)
                progressed = True

            if in_flight:
                done, _ = wait_futures(
                    list(in_flight),
                    timeout=self.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    point, key = in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        self.claims.release(key)
                        if failure is None:
                            failure = (
                                exc
                                if isinstance(exc, SweepError)
                                else SweepError(
                                    f"sweep point failed: {point!r} ({exc})"
                                )
                            )
                        continue
                    # submit_point stored the result before resolving,
                    # so the release never exposes a result-less point.
                    if not outcome.cached:
                        self.claims.note_computed(key)
                    self.claims.release(key)
                    results[point] = outcome.value
                    self._note_outcome(report, outcome)
                    progressed = True

            if failure is not None:
                if in_flight:
                    continue  # drain our own computations, then raise
                raise failure

            if deferred and not progressed and not in_flight:
                # everything left is claimed by other live workers;
                # wait for their results (or their claims to go stale).
                time.sleep(self.poll_interval_s)
            todo.extend(deferred)
            deferred.clear()

        self.last_report = report
        return SweepResult(
            points=points, values=[results[p] for p in points], report=report
        )

    def _acquire_interval(self) -> float:
        """How often to retry claims held by other workers.

        Result polls stay at ``poll_interval_s`` (they are one ``stat``
        each); claim retries matter only for steal-after-TTL and
        released-after-failure, so TTL-scale cadence capped at 2 s is
        plenty and keeps shared-mount traffic bounded.
        """
        return min(2.0, max(self.poll_interval_s, self.claims.ttl_s / 8.0))

    @staticmethod
    def _note_outcome(report: SweepReport, outcome: PointOutcome) -> None:
        if outcome.cached:
            report.note_cached(outcome.elapsed_s, hot=outcome.hot)
        else:
            report.note_executed(
                PointMetrics(
                    elapsed_s=outcome.elapsed_s or 0.0,
                    trace_hits=outcome.trace_hits,
                    trace_misses=outcome.trace_misses,
                )
            )

    # ------------------------------------------------------------------
    # incremental execution: claim-or-wait
    # ------------------------------------------------------------------
    def submit_point(self, point: SweepPoint) -> "Future[PointOutcome]":
        """A future of ``point``'s outcome, computed by *someone*.

        Cache hits resolve immediately.  On a miss this worker claims
        the point and computes it; if another worker already holds the
        claim, the future resolves when that worker's result appears in
        the shared store — or, should the claim go stale, when this
        worker steals and finishes the computation itself.
        """
        cached = self.runner.cached_outcome(point)
        if cached is not None:
            done: Future[PointOutcome] = Future()
            done.set_result(cached)
            return done
        key = self.claim_key(point)
        if self.claims.acquire(key):
            entry = self.runner.store.load_entry(point)
            if entry is not MISS:
                self.claims.release(key)
                done = Future()
                done.set_result(
                    PointOutcome(
                        value=entry.result, elapsed_s=entry.elapsed_s, cached=True
                    )
                )
                return done
            self._ensure_heartbeat()
            return self._compute_claimed(point, key)
        return self._enqueue_wait(point, key)

    def _compute_claimed(
        self, point: SweepPoint, key: str
    ) -> "Future[PointOutcome]":
        outer: Future[PointOutcome] = Future()
        inner = self.runner.submit_point(point)

        def _finish(fut: "Future[PointOutcome]") -> None:
            try:
                outcome = fut.result()
            except BaseException as exc:
                self.claims.release(key)
                outer.set_exception(
                    exc
                    if isinstance(exc, SweepError)
                    else SweepError(f"sweep point failed: {point!r} ({exc})")
                )
                return
            if not outcome.cached:
                self.claims.note_computed(key)
            self.claims.release(key)
            outer.set_result(outcome)

        inner.add_done_callback(_finish)
        return outer

    def _enqueue_wait(self, point: SweepPoint, key: str) -> "Future[PointOutcome]":
        outer: Future[PointOutcome] = Future()
        with self._wake:
            if self._closed:
                outer.set_exception(
                    SweepError(f"claimed runner closed while waiting for {point!r}")
                )
                return outer
            _point, futures = self._waiting.setdefault(key, (point, []))
            futures.append(outer)
            if self._waiter_thread is None or not self._waiter_thread.is_alive():
                self._waiter_thread = threading.Thread(
                    target=self._waiter_loop,
                    name="repro-claim-waiter",
                    daemon=True,
                )
                self._waiter_thread.start()
            self._wake.notify_all()
        return outer

    def _waiter_loop(self) -> None:
        retry_at: dict[str, float] = {}
        retry_interval = self._acquire_interval()
        while True:
            with self._wake:
                while not self._waiting and not self._closed:
                    retry_at.clear()
                    self._wake.wait()
                if self._closed:
                    return
                items = list(self._waiting.items())
            for key, (point, futures) in items:
                # result poll each cycle (one stat until it appears)...
                if self.runner.store.path_for(point).exists():
                    entry = self.runner.store.load_entry(point)
                    if entry is not MISS:
                        outcome = PointOutcome(
                            value=entry.result, elapsed_s=entry.elapsed_s, cached=True
                        )
                        retry_at.pop(key, None)
                        self._resolve_waiters(key, lambda f: f.set_result(outcome))
                        continue
                # ...claim retries (steal/takeover) at TTL-scale cadence
                now = time.monotonic()
                if now < retry_at.get(key, 0.0):
                    continue
                retry_at[key] = now + retry_interval
                if self.claims.acquire(key):
                    # released without a result (the other worker failed)
                    # or stale (it died): take the computation over.
                    retry_at.pop(key, None)
                    self._ensure_heartbeat()
                    inner = self._compute_claimed(point, key)
                    with self._wake:
                        waiters = self._waiting.pop(key, (point, []))[1]

                    def _relay(fut: "Future[PointOutcome]", waiters=waiters) -> None:
                        exc = fut.exception()
                        for waiter in waiters:
                            if exc is not None:
                                waiter.set_exception(exc)
                            else:
                                waiter.set_result(fut.result())

                    inner.add_done_callback(_relay)
            with self._wake:
                if self._closed:
                    return
                self._wake.wait(timeout=self.poll_interval_s)

    def _resolve_waiters(self, key: str, resolve) -> None:
        with self._wake:
            waiters = self._waiting.pop(key, (None, []))[1]
        for waiter in waiters:
            resolve(waiter)

    # ------------------------------------------------------------------
    # heartbeats and lifecycle
    # ------------------------------------------------------------------
    def _ensure_heartbeat(self) -> None:
        with self._lock:
            if self._closed:
                return
            if self._hb_thread is None or not self._hb_thread.is_alive():
                self._hb_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-claim-heartbeat",
                    daemon=True,
                )
                self._hb_thread.start()

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.claims.ttl_s / 4.0)
        while not self._hb_stop.wait(interval):
            self.claims.heartbeat()

    def close(self) -> None:
        """Release held claims, stop the threads, close the inner runner.

        Unresolved waiters (points another worker was computing) resolve
        with a :class:`SweepError` rather than hanging forever.
        """
        with self._wake:
            self._closed = True
            waiting, self._waiting = self._waiting, {}
            self._wake.notify_all()
        self._hb_stop.set()
        for _key, (point, futures) in waiting.items():
            for future in futures:
                future.set_exception(
                    SweepError(f"claimed runner closed while waiting for {point!r}")
                )
        for thread in (self._hb_thread, self._waiter_thread):
            if thread is not None and thread.is_alive():
                thread.join(timeout=5.0)
        self.claims.release_all()
        self.runner.close()

    def __enter__(self) -> "ClaimedRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClaimedRunner(owner={self.claims.owner!r}, jobs={self.jobs})"
