"""Per-block access scripts consumed by the protocol emulator.

An application kernel describes the lifetime of each shared memory block
as an ordered list of *epochs*:

* a :class:`WriteEpoch` — one processor stores to the block, and
* a :class:`ReadEpoch` — a set of processors load the block.

Epochs are ordered by the application's synchronization structure
(barriers, locks), which is why the emulator may process them strictly
in sequence.  *Within* a read epoch the arrival order of the read
requests at the home directory is a race whenever the readers are not
ordered by the application (``racy=True``); likewise the invalidation
acknowledgements collected when the next writer invalidates those
readers race when ``racy_acks=True``.  These two race sources are
exactly the perturbations the paper's MSP and VMSP eliminate
(Sections 2.1 and 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.common.types import NodeId


@dataclass(frozen=True, slots=True)
class WriteEpoch:
    """A single store by ``writer``.

    The emulator derives the request kind from protocol state: a writer
    that holds a read-only copy issues an UPGRADE, otherwise a WRITE; a
    writer that already holds the block exclusively issues nothing.
    """

    writer: NodeId

    def __str__(self) -> str:
        return f"W(P{self.writer})"


@dataclass(frozen=True, slots=True)
class ReadEpoch:
    """Loads by ``readers`` (canonical order) within one sync epoch.

    ``racy``       — read requests arrive at the home in a random
                     permutation of the canonical order.
    ``racy_acks``  — when a later write invalidates these readers, their
                     acknowledgements return in a random permutation.
    """

    readers: tuple[NodeId, ...]
    racy: bool = False
    racy_acks: bool = False

    def __post_init__(self) -> None:
        if len(set(self.readers)) != len(self.readers):
            raise ValueError(f"duplicate readers in epoch: {self.readers}")

    def __str__(self) -> str:
        who = ",".join(f"P{r}" for r in self.readers)
        flags = "r" if self.racy else ""
        flags += "a" if self.racy_acks else ""
        return f"R({who}){('[' + flags + ']') if flags else ''}"


Epoch = Union[ReadEpoch, WriteEpoch]


@dataclass(slots=True)
class BlockScript:
    """The full access history of one block, as a list of epochs."""

    block: int
    epochs: list[Epoch] = field(default_factory=list)

    def append(self, epoch: Epoch) -> None:
        self.epochs.append(epoch)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self):
        return iter(self.epochs)
