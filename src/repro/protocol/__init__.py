"""Full-map write-invalidate coherence protocol.

Two entry points:

* :class:`repro.protocol.directory.BlockDirectory` — the per-block
  directory finite-state machine (Idle / Shared / Exclusive) shared by
  the trace-driven emulator and the timing simulator.
* :class:`repro.protocol.emulator.ProtocolEmulator` — a fast trace-driven
  emulator that turns an application's per-block access script into the
  stream of coherence messages a home directory observes (requests plus
  invalidation acks and writebacks), including the message-race effects
  the paper's predictors are sensitive to.
"""

from repro.protocol.directory import BlockDirectory, ProtocolError
from repro.protocol.emulator import ProtocolEmulator
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch

__all__ = [
    "BlockDirectory",
    "BlockScript",
    "ProtocolEmulator",
    "ProtocolError",
    "ReadEpoch",
    "WriteEpoch",
]
