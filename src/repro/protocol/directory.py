"""Per-block full-map directory state machine.

This is the protocol of Figure 1 in the paper: every block is Idle
(no remote copies), Shared (one or more read-only copies, tracked in a
full-map sharer set), or Exclusive (a single writable copy).  The class
is pure state-transition logic — it reports which coherence messages a
transition generates but attaches no timing, so both the trace-driven
emulator and the event-driven timing simulator can drive it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import DirectoryState, MessageKind, NodeId


class ProtocolError(RuntimeError):
    """An access sequence violated the protocol's assumptions."""


@dataclass(slots=True)
class Transition:
    """Outcome of presenting one request to the directory.

    ``request``    — the request kind the access turned into, or None if
                     the access was satisfied locally (no message).
    ``invalidated``— sharers that received read-only invalidations and
                     will respond with ACK messages.
    ``writeback_from`` — previous exclusive owner forced to write back.
    """

    request: MessageKind | None = None
    invalidated: tuple[NodeId, ...] = ()
    writeback_from: NodeId | None = None

    @property
    def generated_request(self) -> bool:
        return self.request is not None


@dataclass(slots=True)
class BlockDirectory:
    """Directory entry for a single memory block."""

    state: DirectoryState = DirectoryState.IDLE
    sharers: set[NodeId] = field(default_factory=set)
    owner: NodeId | None = None

    def holders(self) -> frozenset[NodeId]:
        """All nodes currently holding a valid copy."""
        if self.state is DirectoryState.EXCLUSIVE:
            assert self.owner is not None
            return frozenset({self.owner})
        return frozenset(self.sharers)

    def has_valid_copy(self, node: NodeId) -> bool:
        return node in self.holders()

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def read(self, reader: NodeId) -> Transition:
        """Present a load by ``reader``; return the protocol actions."""
        if self.state is DirectoryState.IDLE:
            self.state = DirectoryState.SHARED
            self.sharers = {reader}
            return Transition(request=MessageKind.READ)
        if self.state is DirectoryState.SHARED:
            if reader in self.sharers:
                return Transition()  # cache hit, no message
            self.sharers.add(reader)
            return Transition(request=MessageKind.READ)
        # EXCLUSIVE
        assert self.owner is not None
        if reader == self.owner:
            return Transition()  # owner hits in its own cache
        previous_owner = self.owner
        self.state = DirectoryState.SHARED
        self.sharers = {reader}
        self.owner = None
        return Transition(
            request=MessageKind.READ, writeback_from=previous_owner
        )

    def write(self, writer: NodeId) -> Transition:
        """Present a store by ``writer``; return the protocol actions."""
        if self.state is DirectoryState.IDLE:
            self.state = DirectoryState.EXCLUSIVE
            self.owner = writer
            return Transition(request=MessageKind.WRITE)
        if self.state is DirectoryState.SHARED:
            others = tuple(sorted(self.sharers - {writer}))
            kind = (
                MessageKind.UPGRADE
                if writer in self.sharers
                else MessageKind.WRITE
            )
            self.state = DirectoryState.EXCLUSIVE
            self.sharers = set()
            self.owner = writer
            return Transition(request=kind, invalidated=others)
        # EXCLUSIVE
        assert self.owner is not None
        if writer == self.owner:
            return Transition()  # silent upgrade in own cache
        previous_owner = self.owner
        self.owner = writer
        return Transition(
            request=MessageKind.WRITE, writeback_from=previous_owner
        )

    def recall(self) -> Transition:
        """Invalidate all copies and return the block to Idle.

        Used by Speculative Write-Invalidation: the directory recalls the
        writable copy early.  Recalling a Shared block invalidates the
        read-only copies; recalling an Idle block is a no-op.
        """
        if self.state is DirectoryState.IDLE:
            return Transition()
        if self.state is DirectoryState.SHARED:
            invalidated = tuple(sorted(self.sharers))
            self.state = DirectoryState.IDLE
            self.sharers = set()
            return Transition(invalidated=invalidated)
        assert self.owner is not None
        previous_owner = self.owner
        self.state = DirectoryState.IDLE
        self.owner = None
        return Transition(writeback_from=previous_owner)

    def grant_speculative_copy(self, node: NodeId) -> bool:
        """Record a speculatively forwarded read-only copy.

        Returns False (and changes nothing) when the block is writable
        somewhere or the node already holds a copy — the cases where the
        protocol would not send a speculative copy.
        """
        if self.state is DirectoryState.EXCLUSIVE:
            return False
        if node in self.sharers:
            return False
        self.state = DirectoryState.SHARED
        self.sharers.add(node)
        return True

    def invalidate_sharer(self, node: NodeId) -> None:
        """Drop one sharer (used when a speculative copy is discarded)."""
        self.sharers.discard(node)
        if not self.sharers and self.state is DirectoryState.SHARED:
            self.state = DirectoryState.IDLE

    def promote_sole_sharer(self, node: NodeId) -> bool:
        """Upgrade the block's only sharer to exclusive ownership.

        Used by the migratory-write extension: a read predicted to be
        followed by the same processor's upgrade is granted exclusively,
        executing the upgrade speculatively.  Refused (returning False)
        unless the node is the block's sole holder.
        """
        if self.state is not DirectoryState.SHARED or self.sharers != {node}:
            return False
        self.state = DirectoryState.EXCLUSIVE
        self.owner = node
        self.sharers = set()
        return True
