"""Trace-driven protocol emulator.

Turns a per-block :class:`~repro.protocol.epochs.BlockScript` into the
sequence of coherence messages the block's home directory observes.  The
sequence includes the three request kinds *and* the acknowledgement
traffic (invalidation ACKs, WRITEBACKs) that a general message predictor
such as Cosmos must also predict — together with the two race effects
the paper identifies:

* read requests inside a racy read epoch arrive in a random permutation
  (perturbs MSP; eliminated by VMSP's reader vectors), and
* invalidation acknowledgements for racy readers return in a random
  permutation (perturbs Cosmos; eliminated by MSP's request filtering).

Races are drawn from a per-block deterministic RNG stream, so results
are reproducible and independent of block iteration order.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.common.rng import DeterministicRng
from repro.common.stats import StatSet
from repro.common.types import Message, MessageKind, NodeId
from repro.protocol.directory import BlockDirectory
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


class ProtocolEmulator:
    """Replays block scripts through the directory FSM."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng
        self.stats = StatSet()

    def messages_for(self, script: BlockScript) -> list[Message]:
        """The home-directory message stream for one block."""
        return [message for _epoch, message in self.script_events(script)]

    def script_events(
        self, script: BlockScript
    ) -> list[tuple[int, Message]]:
        """``(epoch_index, message)`` pairs for one block's script.

        Invalidation acknowledgements normally return in full-map order
        — the directory walks its sharer bitmap when sending
        invalidations, and with minimal queueing the responses come back
        in the same order (the paper's barnes discussion, Section 7.1).
        Sharers acquired during a ``racy_acks`` read epoch instead
        acknowledge in a random permutation.
        """
        rng = self._rng.split(f"block-{script.block}")
        directory = BlockDirectory()
        # Sharers that will acknowledge a future invalidation in racy order.
        racy_ack_members: set[NodeId] = set()
        out: list[tuple[int, Message]] = []
        epoch_index = 0

        def emit(kind: MessageKind, node: NodeId) -> None:
            out.append(
                (epoch_index, Message(kind=kind, node=node, block=script.block))
            )
            self.stats.bump(f"msg_{kind.value}")
            if kind.is_request:
                self.stats.bump("requests")

        for epoch_index, epoch in enumerate(script.epochs):
            if isinstance(epoch, ReadEpoch):
                arrival = list(epoch.readers)
                if epoch.racy and len(arrival) > 1:
                    rng.shuffle(arrival)
                for reader in arrival:
                    transition = directory.read(reader)
                    if not transition.generated_request:
                        continue
                    emit(MessageKind.READ, reader)
                    if transition.writeback_from is not None:
                        emit(MessageKind.WRITEBACK, transition.writeback_from)
                    if epoch.racy_acks:
                        racy_ack_members.add(reader)
            elif isinstance(epoch, WriteEpoch):
                transition = directory.write(epoch.writer)
                if not transition.generated_request:
                    continue
                assert transition.request is not None
                emit(transition.request, epoch.writer)
                if transition.writeback_from is not None:
                    emit(MessageKind.WRITEBACK, transition.writeback_from)
                if transition.invalidated:
                    acks = list(transition.invalidated)  # full-map order
                    if racy_ack_members & set(acks) and len(acks) > 1:
                        rng.shuffle(acks)
                    for node in acks:
                        emit(MessageKind.ACK, node)
                racy_ack_members.clear()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown epoch type: {epoch!r}")
        return out

    def run(
        self, scripts: Iterable[BlockScript]
    ) -> Iterator[tuple[int, list[Message]]]:
        """Yield ``(block, messages)`` for every script."""
        for script in scripts:
            yield script.block, self.messages_for(script)

    def compile(
        self, scripts: Iterable[BlockScript], num_nodes: int
    ) -> "CompiledTrace":
        """Compile every script's message stream into one columnar trace.

        The result is bit-equivalent to :meth:`run`: decoding the trace
        (:meth:`~repro.trace.compiled.CompiledTrace.to_messages`) yields
        exactly the messages ``run`` would, in the same block-major
        order.  Races draw from the same per-block RNG streams, so
        compiling and replaying are interchangeable.
        """
        # Imported here so the protocol layer stays importable without
        # pulling numpy in (repro.trace requires it).
        from repro.trace.compiled import KIND_TO_CODE, CompiledTrace

        kinds: list[int] = []
        nodes: list[int] = []
        blocks: list[int] = []
        epochs: list[int] = []
        for script in scripts:
            for epoch_index, message in self.script_events(script):
                kinds.append(KIND_TO_CODE[message.kind])
                nodes.append(message.node)
                blocks.append(message.block)
                epochs.append(epoch_index)
        return CompiledTrace.from_columns(
            kinds=kinds,
            nodes=nodes,
            blocks=blocks,
            epochs=epochs,
            num_nodes=num_nodes,
        )
