"""Analytic performance model of a speculative coherent DSM (Section 5)."""

from repro.analytic.model import (
    SpeculationModel,
    communication_speedup,
    figure6_panel,
    figure6_panels,
    speedup,
)

__all__ = [
    "SpeculationModel",
    "communication_speedup",
    "figure6_panel",
    "figure6_panels",
    "speedup",
]
