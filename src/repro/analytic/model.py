"""The paper's analytic model (Section 5, Equations 1 and 2).

Parameters (paper notation):

* ``c``   — the application's communication ratio on the critical path,
* ``f``   — fraction of memory requests executed speculatively,
* ``p``   — request prediction accuracy,
* ``rtl`` — remote-to-local access latency ratio,
* ``n``   — misspeculation penalty factor (in remote-access latencies).

Equation 1 — speedup of communication time alone::

    comm_speedup = 1 / ((1 - f) + f * (p / rtl + n * (1 - p)))

Equation 2 — overall application speedup::

    speedup = 1 / ((1 - c) + c / comm_speedup)

Figure 6 of the paper plots Equation 2 against ``c`` for four parameter
sweeps; :func:`figure6_panels` regenerates all four.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class SpeculationModel:
    """A point in the analytic model's parameter space."""

    c: float = 1.0
    f: float = 1.0
    p: float = 0.9
    rtl: float = 4.0
    n: float = 2.0

    def __post_init__(self) -> None:
        for name in ("c", "f", "p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.rtl < 1.0:
            raise ValueError(f"rtl must be >= 1, got {self.rtl}")
        if self.n < 0.0:
            raise ValueError(f"n must be >= 0, got {self.n}")

    def communication_speedup(self) -> float:
        return communication_speedup(f=self.f, p=self.p, rtl=self.rtl, n=self.n)

    def speedup(self) -> float:
        return speedup(c=self.c, f=self.f, p=self.p, rtl=self.rtl, n=self.n)

    def with_(self, **overrides: float) -> "SpeculationModel":
        return replace(self, **overrides)


def communication_speedup(
    *, f: float, p: float, rtl: float, n: float
) -> float:
    """Equation 1: speedup of communication time under speculation.

    A fraction ``f`` of remote requests execute speculatively; of those,
    ``p`` succeed and cost a local access (1/rtl of a remote access) and
    ``1 - p`` fail and cost ``n`` remote accesses.
    """
    denominator = (1.0 - f) + f * (p / rtl + n * (1.0 - p))
    if denominator <= 0.0:
        raise ValueError("model parameters give non-positive communication time")
    return 1.0 / denominator


def speedup(*, c: float, f: float, p: float, rtl: float, n: float) -> float:
    """Equation 2: overall speedup for communication ratio ``c``."""
    comm = communication_speedup(f=f, p=p, rtl=rtl, n=n)
    return 1.0 / ((1.0 - c) + c / comm)


# ----------------------------------------------------------------------
# Figure 6 sweeps
# ----------------------------------------------------------------------

#: The four panels of Figure 6: which parameter each sweeps, the swept
#: values, and the fixed parameters shown in the panel captions.
FIGURE6_SWEEPS: dict[str, dict] = {
    "accuracy": {
        "parameter": "p",
        "values": (1.0, 0.9, 0.7, 0.5, 0.3, 0.1),
        "fixed": {"n": 2.0, "f": 1.0, "rtl": 4.0},
        "caption": "n = 2, f = 1.0, rtl = 4",
    },
    "penalty": {
        "parameter": "n",
        "values": (1.5, 2.0, 4.0, 8.0),
        "fixed": {"p": 0.9, "f": 1.0, "rtl": 4.0},
        "caption": "p = 0.9, f = 1.0, rtl = 4",
    },
    "fraction": {
        "parameter": "f",
        "values": (1.0, 0.9, 0.7, 0.5, 0.3, 0.1),
        "fixed": {"p": 0.9, "n": 2.0, "rtl": 4.0},
        "caption": "p = 0.9, n = 2, rtl = 4",
    },
    "rtl": {
        "parameter": "rtl",
        "values": (8.0, 4.0, 2.0),
        "fixed": {"p": 0.9, "n": 2.0, "f": 1.0},
        "caption": "p = 0.9, n = 2, f = 1.0",
        "labels": {8.0: "rtl = 8 (NUMA-Q)", 4.0: "rtl = 4 (Mercury)", 2.0: "rtl = 2 (Origin)"},
    },
}


def communication_ratios(points: int = 21) -> list[float]:
    """The x axis of Figure 6: c from 0 to 1 inclusive."""
    if points < 2:
        raise ValueError("need at least two points")
    return [i / (points - 1) for i in range(points)]


def figure6_panel(
    panel: str, points: int = 21
) -> dict[float, list[tuple[float, float]]]:
    """One Figure 6 panel: swept value -> [(c, speedup), ...] series."""
    try:
        spec = FIGURE6_SWEEPS[panel]
    except KeyError:
        known = ", ".join(sorted(FIGURE6_SWEEPS))
        raise ValueError(f"unknown panel {panel!r} (known: {known})") from None
    series: dict[float, list[tuple[float, float]]] = {}
    for value in spec["values"]:
        params = dict(spec["fixed"])
        params[spec["parameter"]] = value
        series[value] = [
            (c, speedup(c=c, **params)) for c in communication_ratios(points)
        ]
    return series


def figure6_panels(points: int = 21) -> dict[str, dict]:
    """All four Figure 6 panels keyed by panel name."""
    return {name: figure6_panel(name, points) for name in FIGURE6_SWEEPS}
