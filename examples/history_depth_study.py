"""Study the accuracy/cost trade-off of deeper predictor histories.

Reproduces the Section 7.2 / 7.3 analysis programmatically: deeper
histories disambiguate alternating sharing patterns (appbt's cube
edges, unstructured's reduction parity) but inflate Cosmos's pattern
tables through message re-ordering — the data behind Figure 8 and
Table 4.

Run with::

    python examples/history_depth_study.py
"""

from repro import run_predictors


def main() -> None:
    apps = ("appbt", "unstructured", "barnes")
    predictors = ("Cosmos", "MSP", "VMSP")
    for app in apps:
        print(f"== {app} ==")
        print(f"{'depth':<7s}" + "".join(
            f"{p + ' acc':>12s}{p + ' pte':>12s}" for p in predictors
        ))
        for depth in (1, 2, 4):
            runs = run_predictors(app, depth=depth)
            cells = []
            for predictor in predictors:
                run = runs[predictor]
                cells.append(f"{run.accuracy:>12.1%}")
                cells.append(f"{run.average_pte:>12.1f}")
            print(f"{depth:<7d}" + "".join(cells))
        print()
    print("Deeper history: appbt edges become predictable (d=2), while")
    print("Cosmos's table cost explodes on barnes/unstructured (Table 4).")


if __name__ == "__main__":
    main()
