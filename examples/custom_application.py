"""Define your own shared-memory application and evaluate it.

Shows the extension path a downstream user takes: subclass
``SharedMemoryApp``, describe the kernel's phases with the workload
builder, and reuse the library's predictors and machines unchanged.

The example models a work-queue pattern: a coordinator fills per-worker
task descriptors, workers read them (wide sharing on a control block),
and results migrate back through a reduction block.

Run with::

    python examples/custom_application.py
"""

from repro import Machine, MachineMode, ProtocolEmulator, Vmsp
from repro.apps.base import SharedMemoryApp, WorkloadBuilder
from repro.common.rng import DeterministicRng
from repro.sim.address import AddressSpace


class WorkQueue(SharedMemoryApp):
    """Coordinator/worker task distribution with a result reduction."""

    name = "workqueue"
    paper_input = "n/a (custom example)"

    def __init__(self, num_procs=16, iterations=None, seed=1999, tasks_per_worker=4):
        super().__init__(num_procs=num_procs, iterations=iterations, seed=seed)
        self.tasks_per_worker = tasks_per_worker

    @classmethod
    def default_iterations(cls) -> int:
        return 12

    def _build(self, b: WorkloadBuilder) -> None:
        space = AddressSpace(self.num_procs)
        coordinator = 0
        workers = list(range(1, self.num_procs))
        # Task descriptors are homed at the coordinator (it writes them).
        tasks = {
            w: space.alloc(coordinator, self.tasks_per_worker) for w in workers
        }
        control = space.alloc_one(coordinator)
        results = space.alloc_one(1)

        for _ in range(self.iterations):
            with b.phase("fill"):
                b.compute(coordinator, 800)
                for w in workers:
                    for block in tasks[w]:
                        b.write(coordinator, block)
                b.write(coordinator, control)
            # Everyone polls the control block: wide, racy read burst.
            with b.phase("dispatch", racy_reads=True, racy_acks=True):
                for w in workers:
                    b.read(w, control)
                    for block in tasks[w]:
                        b.read(w, block)
                    b.compute(w, 1500)
            # Results migrate worker -> worker -> coordinator.
            with b.phase("collect"):
                for w in workers:
                    b.read(w, results)
                    b.write(w, results)
                b.read(coordinator, results)


def main() -> None:
    app = WorkQueue()
    workload = app.build()

    predictor = Vmsp(depth=1)
    emulator = ProtocolEmulator(DeterministicRng(3))
    for _block, messages in emulator.run(workload.block_scripts()):
        for message in messages:
            predictor.observe(message)
    predictor.flush()
    print(f"VMSP on {app.name}: accuracy={predictor.stats.accuracy:.1%}, "
          f"coverage={predictor.stats.coverage:.1%}")

    base = Machine(workload, mode=MachineMode.BASE).run()
    swi = Machine(workload, mode=MachineMode.SWI).run()
    print(f"Base-DSM {base.cycles:,d} cycles -> SWI-DSM {swi.cycles:,d} "
          f"({swi.cycles / base.cycles:.0%})")
    print(f"speculative reads used: FR={swi.speculation.fr_used} "
          f"SWI={swi.speculation.swi_used}")


if __name__ == "__main__":
    main()
