"""Reproduce the paper's headline comparisons on its own benchmarks.

Runs the three predictors over all seven Table 2 applications (the
Figure 7 experiment) and the three DSM variants over a representative
subset (the Figure 9 experiment), printing paper-style summaries.

Run with::

    python examples/paper_benchmarks.py          # full
    python examples/paper_benchmarks.py --fast   # quick look
"""

import argparse

from repro import APP_NAMES, MachineMode, run_predictors, run_speculation


def predictor_comparison(fast: bool) -> None:
    print("== Figure 7: prediction accuracy (history depth 1) ==")
    print(f"{'application':<14s}{'Cosmos':>9s}{'MSP':>9s}{'VMSP':>9s}")
    totals = {"Cosmos": 0.0, "MSP": 0.0, "VMSP": 0.0}
    for app in APP_NAMES:
        iterations = 8 if fast else None
        runs = run_predictors(app, depth=1, iterations=iterations)
        row = "".join(f"{runs[p].accuracy:>9.1%}" for p in totals)
        print(f"{app:<14s}{row}")
        for name in totals:
            totals[name] += runs[name].accuracy
    mean = "".join(f"{totals[p] / len(APP_NAMES):>9.1%}" for p in totals)
    print(f"{'mean':<14s}{mean}")
    print()


def speculation_comparison(fast: bool) -> None:
    apps = ("em3d", "tomcatv", "unstructured") if fast else APP_NAMES
    print("== Figure 9: execution time normalized to Base-DSM ==")
    print(f"{'application':<14s}{'FR-DSM':>9s}{'SWI-DSM':>9s}")
    for app in apps:
        run = run_speculation(app, iterations=6 if fast else None)
        print(
            f"{app:<14s}"
            f"{run.normalized_time(MachineMode.FR):>9.0%}"
            f"{run.normalized_time(MachineMode.SWI):>9.0%}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller runs")
    args = parser.parse_args()
    predictor_comparison(args.fast)
    speculation_comparison(args.fast)


if __name__ == "__main__":
    main()
