"""Quickstart: predict coherence activity and speculate on it.

Builds a small producer/consumer workload by hand, trains the three
predictors of the paper on its directory message stream, then runs the
same workload on the Base-DSM and SWI-DSM timing simulators to show the
execution-time win from speculation.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Cosmos,
    Machine,
    MachineMode,
    Msp,
    ProtocolEmulator,
    SystemConfig,
    Vmsp,
)
from repro.apps.base import WorkloadBuilder
from repro.common.rng import DeterministicRng
from repro.sim.address import AddressSpace


def build_workload(num_procs: int = 16, iterations: int = 20):
    """A message-buffer pattern: P0 produces, P1 and P2 consume."""
    builder = WorkloadBuilder("quickstart", num_procs)
    space = AddressSpace(num_procs)
    buffers = space.alloc(home=0, count=8)
    for _ in range(iterations):
        with builder.phase("produce"):
            builder.compute(0, 500)
            for block in buffers:
                builder.write(0, block)
        # Consumers read in a stable order but their invalidation acks
        # race — the effect MSP filters out and Cosmos suffers from.
        with builder.phase("consume", racy_acks=True):
            for block in buffers:
                builder.read(1, block)
                builder.read(2, block)
    return builder.finish()


def main() -> None:
    workload = build_workload()

    print("== Predictor accuracy on the directory message stream ==")
    emulator = ProtocolEmulator(DeterministicRng(42))
    predictors = [Cosmos(depth=1), Msp(depth=1), Vmsp(depth=1)]
    for _block, messages in emulator.run(workload.block_scripts()):
        for message in messages:
            for predictor in predictors:
                predictor.observe(message)
    for predictor in predictors:
        stats = predictor.stats
        print(
            f"  {predictor.name:<7s} accuracy={stats.accuracy:6.1%}  "
            f"coverage={stats.coverage:6.1%}  "
            f"pattern entries/block={predictor.average_pattern_entries():.1f}"
        )

    print()
    print("== Execution time with and without speculation ==")
    config = SystemConfig()
    base = Machine(workload, config=config, mode=MachineMode.BASE).run()
    swi = Machine(workload, config=config, mode=MachineMode.SWI).run()
    print(f"  Base-DSM: {base.cycles:>9,d} cycles "
          f"({base.request_fraction:.0%} waiting on remote requests)")
    print(f"  SWI-DSM:  {swi.cycles:>9,d} cycles "
          f"({swi.cycles / base.cycles:.0%} of Base-DSM)")
    spec = swi.speculation
    print(f"  SWI invalidated {spec.wi_sent} writes early and covered "
          f"{spec.swi_used} reads speculatively "
          f"({spec.swi_missed} copies wasted).")


if __name__ == "__main__":
    main()
