"""Explore the paper's analytic model (Section 5, Figure 6).

Answers the design questions the model was built for: how accurate must
a predictor be before speculation pays off, and which machines (by
remote-to-local latency ratio) benefit most?

Run with::

    python examples/analytic_model.py
"""

from repro import SpeculationModel, speedup
from repro.analytic.model import figure6_panel


def breakeven_accuracy() -> None:
    """Find the accuracy where speculation stops hurting (c=1)."""
    print("== Break-even prediction accuracy (f=1, rtl=4, n=2, c=1) ==")
    for n in (1.5, 2.0, 4.0, 8.0):
        low, high = 0.0, 1.0
        for _ in range(40):
            mid = (low + high) / 2
            if speedup(c=1.0, f=1.0, p=mid, rtl=4.0, n=n) >= 1.0:
                high = mid
            else:
                low = mid
        print(f"  misspeculation penalty n={n:<4g} -> p >= {high:.2f}")
    print()


def machine_comparison() -> None:
    print("== Who benefits? (p=0.9, f=1, n=2; Figure 6 bottom-right) ==")
    machines = {8.0: "NUMA-Q-class cluster", 4.0: "Mercury-class cluster", 2.0: "Origin-class tightly coupled"}
    for rtl, label in machines.items():
        model = SpeculationModel(c=0.6, p=0.9, rtl=rtl)
        print(f"  rtl={rtl:<3g} ({label:<28s}) speedup at c=0.6: "
              f"{model.speedup():.2f}x")
    print()


def accuracy_panel() -> None:
    print("== Figure 6 top-left: speedup vs c for accuracy sweeps ==")
    series = figure6_panel("accuracy", points=6)
    ratios = [c for c, _ in next(iter(series.values()))]
    print("  p \\ c " + "".join(f"{c:>7.1f}" for c in ratios))
    for p_value, points in series.items():
        print(f"  {p_value:<6g}" + "".join(f"{s:>7.2f}" for _c, s in points))


def main() -> None:
    breakeven_accuracy()
    machine_comparison()
    accuracy_panel()


if __name__ == "__main__":
    main()
