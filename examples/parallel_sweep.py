"""Parallel sweeps beyond the paper's grids, with result caching.

The paper evaluates history depths 1, 2, and 4 (Figure 8).  This demo
declares a *denser* depth sweep over three applications as a
``SweepSpec``, fans it out over four worker processes, then re-runs the
same grid to show the content-addressed cache satisfying every point
without recomputation.  The equivalent command line is::

    repro-paper sweep --kind accuracy --axis app=em3d,moldyn,ocean \\
        --axis depth=1,2,3,4,6,8 --set iterations=10 --jobs 4

Run with::

    python examples/parallel_sweep.py
"""

import tempfile
import time

from repro.harness import ParallelRunner, ResultStore, SweepSpec

APPS = ("em3d", "moldyn", "ocean")
DEPTHS = (1, 2, 3, 4, 6, 8)


def build_spec() -> SweepSpec:
    return SweepSpec(
        kind="accuracy",
        axes={"app": APPS, "depth": DEPTHS},
        base={"iterations": 10, "predictors": ("MSP", "VMSP")},
    )


def run_once(label: str, runner: ParallelRunner):
    started = time.perf_counter()
    result = runner.run(build_spec())
    elapsed = time.perf_counter() - started
    report = result.report
    print(
        f"  {label:<22s} {elapsed:6.1f}s  "
        f"({report.executed} executed, {report.cached} cached, "
        f"jobs={report.jobs})"
    )
    return result


def main() -> None:
    print(f"== Sweeping {len(APPS)} apps x {len(DEPTHS)} depths ==")
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as cache_dir:
        store = ResultStore(cache_dir)
        serial = run_once("serial, cold", ParallelRunner(jobs=1))
        parallel = run_once("4 workers, cold cache", ParallelRunner(jobs=4, store=store))
        cached = run_once("4 workers, warm cache", ParallelRunner(jobs=4, store=store))
        assert serial.values == parallel.values == cached.values, (
            "deterministic sweeps must agree bit-for-bit"
        )
        assert cached.report.executed == 0

    print()
    print("== MSP vs VMSP accuracy by history depth (%) ==")
    header = f"  {'app':<10s}" + "".join(f"  d={d:<9d}" for d in DEPTHS)
    print(header + "   (MSP/VMSP)")
    for app in APPS:
        cells = []
        for depth in DEPTHS:
            runs = parallel.value(app=app, depth=depth)["runs"]
            cells.append(
                f"  {100 * runs['MSP']['accuracy']:4.1f}/"
                f"{100 * runs['VMSP']['accuracy']:4.1f}"
            )
        print(f"  {app:<10s}" + "".join(cells))


if __name__ == "__main__":
    main()
