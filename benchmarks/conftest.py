"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures (so the
suite doubles as an end-to-end verification of the reproduction) and
reports how long the regeneration takes.  Heavy experiments run one
round; cheap ones let pytest-benchmark calibrate itself.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Benchmarks regenerate whole figures — keep them out of -m "not slow"."""
    for item in items:
        if "benchmarks" in item.path.parts:
            item.add_marker(pytest.mark.slow)


def one_round(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return one_round
