"""Benchmark regenerating Table 4 (predictor storage overhead)."""

from repro.eval.experiments import table4


def test_table4_storage_overhead(benchmark, once):
    rows = once(benchmark, table4)
    print()
    print(f"{'application':<14s}" + "".join(
        f"{p + ' ' + c:>14s}"
        for p in ("Cosmos", "MSP", "VMSP")
        for c in ("pte1", "pte4", "ovhB")
    ))
    for app in sorted(rows):
        cells = "".join(
            f"{rows[app][p][k]:>14.1f}"
            for p in ("Cosmos", "MSP", "VMSP")
            for k in ("pte_d1", "pte_d4", "ovh_d1")
        )
        print(f"{app:<14s}{cells}")
    for app, row in rows.items():
        # Paper shape: MSP needs no more entries than Cosmos; deeper
        # histories never shrink the tables.
        assert row["MSP"]["pte_d1"] <= row["Cosmos"]["pte_d1"] + 1e-9
        assert row["Cosmos"]["pte_d4"] >= row["Cosmos"]["pte_d1"] - 1e-9
    # Cosmos's tables explode with depth on the re-ordering-heavy apps.
    assert rows["barnes"]["Cosmos"]["pte_d4"] > 2 * rows["barnes"]["Cosmos"]["pte_d1"]
    assert (
        rows["unstructured"]["VMSP"]["pte_d4"]
        < rows["unstructured"]["Cosmos"]["pte_d4"] / 2
    )
