"""Benchmark regenerating Figure 6 (analytic model speedup sweeps)."""

import pytest

from repro.analytic.model import FIGURE6_SWEEPS, figure6_panel, figure6_panels


def test_figure6_all_panels(benchmark):
    panels = benchmark(figure6_panels, points=41)
    assert set(panels) == set(FIGURE6_SWEEPS)
    # Paper shape: perfect prediction turns the DSM into an SMP — the
    # p=1.0 curve at c=1 reaches the full rtl=4 speedup.
    accuracy_panel = panels["accuracy"]
    _c, final = accuracy_panel[1.0][-1]
    assert final == pytest.approx(4.0)
    # Low accuracies slow the machine down (speedup < 1 at high c).
    assert accuracy_panel[0.1][-1][1] < 1.0


@pytest.mark.parametrize("panel", sorted(FIGURE6_SWEEPS))
def test_figure6_single_panel(benchmark, panel):
    series = benchmark(figure6_panel, panel, points=41)
    for points in series.values():
        assert len(points) == 41
