"""Benchmark regenerating Figure 9 (speculative DSM execution time)."""

from repro.eval.experiments import figure9
from repro.eval.performance import PAPER_MODES
from repro.sim.machine import MachineMode


def test_figure9_execution_time(benchmark, once):
    rows = once(benchmark, figure9)
    print()
    print(f"{'application':<14s}" + "".join(
        f"{m.value:>20s}" for m in PAPER_MODES
    ))
    for app in sorted(rows):
        cells = ""
        for mode in PAPER_MODES:
            comp, request = rows[app][mode.value]
            cells += f"{100 * (comp + request):>11.0f}" + f" ({100 * request:>3.0f}r)"
        print(f"{app:<14s}{cells}")

    def total(app, mode):
        comp, request = rows[app][mode.value]
        return comp + request

    apps = sorted(rows)
    fr_mean = sum(total(a, MachineMode.FR) for a in apps) / len(apps)
    swi_mean = sum(total(a, MachineMode.SWI) for a in apps) / len(apps)
    # Paper shape: FR alone buys ~8% on average, SWI+FR ~12%, and the
    # SWI winners are the producer/consumer applications.
    assert fr_mean < 0.97
    assert swi_mean < fr_mean
    assert total("em3d", MachineMode.SWI) < 0.85
    assert total("unstructured", MachineMode.SWI) < 0.85
    for app in ("appbt", "barnes", "ocean"):
        assert total(app, MachineMode.SWI) >= total(app, MachineMode.FR) - 0.06
