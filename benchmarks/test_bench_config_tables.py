"""Benchmarks regenerating Tables 1 and 2 (configuration tables)."""

from repro.eval.experiments import table1, table2


def test_table1_system_configuration(benchmark):
    rows = benchmark(table1)
    rendered = dict(rows)
    assert rendered["Round-trip miss latency"] == "418 cycles"
    assert rendered["Number of nodes"] == "16"


def test_table2_applications(benchmark):
    rows = benchmark(table2)
    assert len(rows) == 7
    assert {name for name, _inputs, _iters in rows} == {
        "appbt", "barnes", "em3d", "moldyn", "ocean", "tomcatv", "unstructured",
    }
