"""Ablation benchmarks for the reproduction's design choices.

DESIGN.md §5 calls out three mechanisms the paper leaves implicit; these
benchmarks quantify what each is worth, plus the history-depth ablation
for the speculative DSM itself.
"""

import pytest

from repro.apps import make_app
from repro.eval.performance import run_speculation
from repro.predictors.base import DirectoryPredictor
from repro.sim.machine import Machine, MachineMode


def normalized(app, mode, **machine_kwargs):
    workload = make_app(app, iterations=8).build()
    base = Machine(workload, mode=MachineMode.BASE).run()
    run = Machine(workload, mode=mode, **machine_kwargs).run()
    return run, base


def test_ablation_confidence_gating(benchmark, once, monkeypatch):
    """Without per-entry confidence, ocean's thrashing reduction entries
    spray mispredicted copies and erase FR's gains."""

    def run_without_confidence():
        monkeypatch.setattr(DirectoryPredictor, "confidence", lambda self, b, h: 3)
        run, base = normalized("ocean", MachineMode.FR)
        monkeypatch.undo()
        gated, _ = normalized("ocean", MachineMode.FR)
        return run, base, gated

    ungated, base, gated = once(benchmark, run_without_confidence)
    print()
    print(f"ocean FR-DSM misses: gated={gated.speculation.fr_missed} "
          f"ungated={ungated.speculation.fr_missed}")
    assert ungated.speculation.fr_missed > gated.speculation.fr_missed


def test_ablation_speculation_history_depth(benchmark, once):
    """Deeper speculative-predictor histories on the alternating app."""

    def sweep():
        workload = make_app("unstructured", iterations=8).build()
        base = Machine(workload, mode=MachineMode.BASE).run()
        results = {}
        for depth in (1, 2):
            run = Machine(workload, mode=MachineMode.SWI, spec_depth=depth).run()
            results[depth] = run.cycles / base.cycles
        return results

    results = once(benchmark, sweep)
    print()
    for depth, time in results.items():
        print(f"unstructured SWI-DSM d={depth}: {time:.0%} of Base-DSM")
    for time in results.values():
        assert time < 0.85  # speculation helps at every depth


@pytest.mark.parametrize("app", ["moldyn", "unstructured"])
def test_extension_migratory_write_speculation(benchmark, once, app):
    """MIG-DSM (the paper's future work): speculatively execute the
    upgrade of a migratory read+write pair by granting the read
    exclusively.  Should save write requests on the migratory apps
    without hurting execution time."""

    def compare():
        workload = make_app(app, iterations=8).build()
        swi = Machine(workload, mode=MachineMode.SWI).run()
        mig = Machine(workload, mode=MachineMode.MIG).run()
        return swi, mig

    swi, mig = once(benchmark, compare)
    print()
    print(
        f"{app}: SWI {swi.write_requests} write requests -> "
        f"MIG {mig.write_requests} "
        f"({mig.speculation.migratory_upgrades_saved} upgrades executed "
        f"speculatively, {mig.speculation.migratory_demotions} demoted); "
        f"exec {mig.cycles / swi.cycles:.0%} of SWI-DSM"
    )
    assert mig.speculation.migratory_grants > 0
    assert mig.write_requests <= swi.write_requests
    assert mig.cycles <= swi.cycles * 1.05


@pytest.mark.parametrize("app", ["em3d", "tomcatv"])
def test_ablation_fr_only_vs_swi(benchmark, once, app):
    """How much of SWI-DSM's win comes from SWI rather than FR."""

    def compare():
        run = run_speculation(app, iterations=8)
        return (
            run.normalized_time(MachineMode.FR),
            run.normalized_time(MachineMode.SWI),
        )

    fr_time, swi_time = once(benchmark, compare)
    print()
    print(f"{app}: FR {fr_time:.0%} vs SWI {swi_time:.0%} of Base-DSM")
    assert swi_time <= fr_time  # SWI subsumes FR on these apps
