"""Benchmark regenerating Figure 8 (accuracy vs history depth)."""

from repro.eval.experiments import figure8


def test_figure8_history_depth(benchmark, once):
    rows = once(benchmark, figure8)
    print()
    header = f"{'application':<14s}" + "".join(
        f"{p}-d{d:>1d}".rjust(11)
        for p in ("Cosmos", "MSP", "VMSP")
        for d in (1, 2, 4)
    )
    print(header)
    for app in sorted(rows):
        cells = "".join(
            f"{rows[app][d][p]:>11.1f}"
            for p in ("Cosmos", "MSP", "VMSP")
            for d in (1, 2, 4)
        )
        print(f"{app:<14s}{cells}")
    # Paper shapes: depth 2 captures appbt's alternating edge consumers;
    # deeper history recovers unstructured's alternating reductions.
    assert rows["appbt"][2]["VMSP"] >= 99.0
    assert rows["appbt"][2]["MSP"] > rows["appbt"][1]["MSP"]
    assert rows["unstructured"][4]["VMSP"] > rows["unstructured"][1]["VMSP"]
    assert rows["barnes"][4]["Cosmos"] >= rows["barnes"][1]["Cosmos"]
