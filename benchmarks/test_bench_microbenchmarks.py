"""Micro-benchmarks of the reproduction's hot paths.

Not paper experiments — these track the throughput of the predictor
observe loop, the protocol emulator, and the timing simulator so
performance regressions in the substrate are visible.
"""

import pytest

from repro.apps import make_app
from repro.common.rng import DeterministicRng
from repro.predictors import Cosmos, Msp, Vmsp
from repro.protocol.emulator import ProtocolEmulator
from repro.sim.machine import Machine, MachineMode


@pytest.fixture(scope="module")
def em3d_messages():
    workload = make_app("em3d", iterations=10).build()
    emulator = ProtocolEmulator(DeterministicRng(7))
    messages = []
    for _block, block_messages in emulator.run(workload.block_scripts()):
        messages.extend(block_messages)
    return messages


@pytest.mark.parametrize("predictor_cls", [Cosmos, Msp, Vmsp])
def test_predictor_observe_throughput(benchmark, em3d_messages, predictor_cls):
    def observe_all():
        predictor = predictor_cls(depth=1)
        for message in em3d_messages:
            predictor.observe(message)
        return predictor

    predictor = benchmark(observe_all)
    assert predictor.stats.observed > 0


def test_protocol_emulator_throughput(benchmark):
    workload = make_app("em3d", iterations=10).build()
    scripts = workload.block_scripts()

    def emulate():
        emulator = ProtocolEmulator(DeterministicRng(7))
        return sum(len(m) for _b, m in emulator.run(scripts))

    total = benchmark(emulate)
    assert total > 0


def test_workload_build_throughput(benchmark):
    workload = benchmark(lambda: make_app("unstructured", iterations=6).build())
    assert workload.total_ops() > 0


@pytest.mark.parametrize("mode", [MachineMode.BASE, MachineMode.SWI])
def test_timing_simulator_throughput(benchmark, once, mode):
    workload = make_app("em3d", iterations=6).build()
    result = once(benchmark, lambda: Machine(workload, mode=mode).run())
    assert result.cycles > 0
