#!/usr/bin/env python
"""Concurrent load proof for ``repro-paper serve``.

Drives N threads × M keep-alive requests against a running server and
records the latency distribution, throughput, and a correctness check:
every response for the same target must carry bit-identical ``result``
bytes, whether it was computed, served from the disk store, or served
from the in-process hot tier.  The summary record is written to
``BENCH_service.json`` (committed at the repo root next to
``BENCH_timing.json``) and printed to stdout.

Usage (the server is started separately; see the ``load-smoke`` CI lane)::

    PYTHONPATH=src python -m repro.eval.cli serve --port 8599 &
    python benchmarks/load_test.py --url http://127.0.0.1:8599 \\
        --threads 8 --requests 50

The file deliberately does NOT match pytest's ``test_*.py`` collection
pattern (see pytest.ini): it is a standalone tool, not a test module.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import threading
import time
from http.client import HTTPConnection
from urllib.parse import urlsplit

DEFAULT_TARGETS = [
    "/v1/point?kind=analytic&panel=accuracy&points=3",
    "/v1/point?kind=analytic&panel=fraction&points=3",
]


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


class Worker(threading.Thread):
    """One client: a keep-alive connection looping over the targets."""

    def __init__(
        self,
        host: str,
        port: int,
        targets: list[str],
        requests: int,
        timeout_s: float,
        headers: dict[str, str],
    ) -> None:
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.targets = targets
        self.requests = requests
        self.timeout_s = timeout_s
        self.headers = headers
        self.latencies_ms: list[float] = []
        self.statuses: dict[int, int] = {}
        #: target -> set of sha256 hexdigests of the response "result".
        self.result_hashes: dict[str, set[str]] = {t: set() for t in targets}
        self.errors: list[str] = []

    def run(self) -> None:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            for i in range(self.requests):
                target = self.targets[i % len(self.targets)]
                started = time.perf_counter()
                try:
                    connection.request("GET", target, headers=self.headers)
                    response = connection.getresponse()
                    body = response.read()
                except OSError as exc:
                    self.errors.append(f"{target}: {exc}")
                    connection.close()
                    connection = HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                    continue
                elapsed_ms = 1000.0 * (time.perf_counter() - started)
                self.latencies_ms.append(elapsed_ms)
                self.statuses[response.status] = (
                    self.statuses.get(response.status, 0) + 1
                )
                if response.status == 200:
                    try:
                        payload = json.loads(body)
                    except ValueError:
                        self.errors.append(f"{target}: unparseable body")
                        continue
                    # Hash only the result: wall_ms/elapsed_s legitimately
                    # vary between hot, cold, and computed servings.
                    digest = hashlib.sha256(
                        json.dumps(payload.get("result"), sort_keys=True).encode()
                    ).hexdigest()
                    self.result_hashes[target].add(digest)
        finally:
            connection.close()


def fetch_json(
    host: str, port: int, target: str, timeout_s: float, headers: dict[str, str]
):
    connection = HTTPConnection(host, port, timeout=timeout_s)
    try:
        connection.request("GET", target, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent load test against a running repro-paper server."
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8599", help="server base URL"
    )
    parser.add_argument(
        "--threads", type=int, default=8, metavar="N", help="client threads"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=50,
        metavar="M",
        help="requests per thread (targets are cycled)",
    )
    parser.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="PATH",
        help="request target (repeatable; default: two analytic points)",
    )
    parser.add_argument(
        "--api-key",
        default=os.environ.get("REPRO_API_KEY"),
        metavar="KEY",
        help="API key sent as X-API-Key (default: REPRO_API_KEY env)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=30.0, help="per-request timeout"
    )
    parser.add_argument(
        "--label", default="service load test", help="benchmark label"
    )
    parser.add_argument(
        "--out",
        default="BENCH_service.json",
        metavar="FILE",
        help="summary record path ('-' = stdout only)",
    )
    args = parser.parse_args(argv)
    if args.threads < 1 or args.requests < 1:
        parser.error("--threads and --requests must be >= 1")

    split = urlsplit(args.url)
    host, port = split.hostname or "127.0.0.1", split.port or 80
    targets = args.target or list(DEFAULT_TARGETS)
    headers = {"X-API-Key": args.api_key} if args.api_key else {}

    workers = [
        Worker(host, port, targets, args.requests, args.timeout_s, headers)
        for _ in range(args.threads)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall_s = time.perf_counter() - started

    latencies = sorted(x for w in workers for x in w.latencies_ms)
    statuses: dict[int, int] = {}
    errors: list[str] = []
    hashes: dict[str, set[str]] = {t: set() for t in targets}
    for worker in workers:
        errors.extend(worker.errors)
        for status, count in worker.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
        for target, digests in worker.result_hashes.items():
            hashes[target] |= digests
    total = sum(statuses.values())
    non_2xx = sum(c for s, c in statuses.items() if not 200 <= s < 300)
    inconsistent = sorted(t for t, d in hashes.items() if len(d) > 1)

    hot_tier = None
    try:
        status, statz = fetch_json(host, port, "/statz", args.timeout_s, headers)
        if status == 200:
            hot_tier = statz.get("hot_tier")
    except (OSError, ValueError) as exc:
        errors.append(f"/statz: {exc}")

    record = {
        "schema": 1,
        "benchmark": args.label,
        "threads": args.threads,
        "requests_per_thread": args.requests,
        "targets": targets,
        "requests": total,
        "wall_s": round(wall_s, 3),
        "rps": round(total / wall_s, 1) if wall_s > 0 else None,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p90": round(_percentile(latencies, 0.90), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
        },
        "statuses": {str(s): c for s, c in sorted(statuses.items())},
        "non_2xx": non_2xx,
        "transport_errors": len(errors),
        "results_consistent": not inconsistent,
        "hot_tier": hot_tier,
    }
    rendered = json.dumps(record, indent=2, sort_keys=True)
    print(rendered)
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")

    ok = True
    if non_2xx or errors:
        print(
            f"FAIL: {non_2xx} non-2xx responses, {len(errors)} transport "
            f"errors (first: {errors[0] if errors else 'n/a'})",
            file=sys.stderr,
        )
        ok = False
    if inconsistent:
        print(
            "FAIL: differing result bytes for target(s): "
            + ", ".join(inconsistent),
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"[{total} requests in {wall_s:.2f}s, {record['rps']} rps, "
            f"p99 {record['latency_ms']['p99']}ms, results consistent]",
            file=sys.stderr,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
