"""Benchmark regenerating Table 5 (speculation / misspeculation rates)."""

from repro.eval.experiments import table5


def test_table5_speculation_rates(benchmark, once):
    rows = once(benchmark, table5)
    print()
    columns = (
        "fr_read_sent", "fr_read_miss", "swi_fr_read_sent",
        "swi_read_sent", "swi_read_miss", "wi_sent", "wi_miss",
    )
    print(f"{'application':<14s}{'reads':>8s}{'writes':>8s}" + "".join(
        f"{c:>17s}" for c in columns
    ))
    for app in sorted(rows):
        row = rows[app]
        print(
            f"{app:<14s}{row['reads']:>8.0f}{row['writes']:>8.0f}"
            + "".join(f"{row[c]:>17.0f}" for c in columns)
        )
    # Paper shapes (Section 7.4):
    # em3d: SWI invalidates ~all writes and triggers ~all reads.
    assert rows["em3d"]["wi_sent"] >= 90
    assert rows["em3d"]["swi_read_sent"] >= 80
    # tomcatv: the correction phase halves SWI's write coverage.
    assert 30 <= rows["tomcatv"]["wi_sent"] <= 70
    # SWI fails on appbt/barnes/ocean (producers re-touch their data).
    for app in ("appbt", "barnes", "ocean"):
        assert rows[app]["swi_read_sent"] <= 10
    # unstructured: migratory SWI chains cover most writes.
    assert rows["unstructured"]["wi_sent"] >= 80
    # Write-invalidate misspeculation stays small everywhere.
    for app, row in rows.items():
        assert row["wi_miss"] <= 25
