"""Benchmark regenerating Table 3 (learning speed / coverage)."""

from repro.eval.experiments import table3


def test_table3_messages_predicted(benchmark, once):
    rows = once(benchmark, table3)
    print()
    print(f"{'application':<14s}" + "".join(
        f"{p:>16s}" for p in ("Cosmos", "MSP", "VMSP")
    ))
    for app in sorted(rows):
        cells = "".join(
            f"{rows[app][p][0]:>9.0f} ({rows[app][p][1]:>3.0f})"
            for p in ("Cosmos", "MSP", "VMSP")
        )
        print(f"{app:<14s}{cells}")
    for app, row in rows.items():
        for predictor, (coverage, correct) in row.items():
            assert 0.0 <= correct <= coverage <= 100.0
    # Paper shape: iterative apps predict most messages; VMSP pays a
    # small learning-speed cost but wins on correctly predicted totals.
    assert rows["em3d"]["MSP"][0] >= 85.0
    assert rows["unstructured"]["VMSP"][1] > rows["unstructured"]["MSP"][1]
    assert rows["barnes"]["VMSP"][1] > rows["barnes"]["Cosmos"][1]
