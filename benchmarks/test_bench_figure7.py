"""Benchmark regenerating Figure 7 (base predictor accuracy, d=1).

Prints the same series the paper plots and asserts its headline:
MSP lifts a general message predictor's accuracy and VMSP lifts it
further (81% -> 86% -> 93% in the paper).
"""

from repro.eval.experiments import figure7


def test_figure7_accuracy_comparison(benchmark, once):
    rows = once(benchmark, figure7)
    apps = sorted(rows)
    means = {
        predictor: sum(rows[app][predictor] for app in apps) / len(apps)
        for predictor in ("Cosmos", "MSP", "VMSP")
    }
    print()
    print(f"{'application':<14s}{'Cosmos':>9s}{'MSP':>9s}{'VMSP':>9s}")
    for app in apps:
        print(
            f"{app:<14s}{rows[app]['Cosmos']:>9.1f}"
            f"{rows[app]['MSP']:>9.1f}{rows[app]['VMSP']:>9.1f}"
        )
    print(f"{'mean':<14s}{means['Cosmos']:>9.1f}"
          f"{means['MSP']:>9.1f}{means['VMSP']:>9.1f}")
    # Paper shape: 81% -> 86% -> 93%.
    assert means["Cosmos"] < means["MSP"] < means["VMSP"]
    assert 75.0 <= means["Cosmos"] <= 87.0
    assert 82.0 <= means["MSP"] <= 92.0
    assert 89.0 <= means["VMSP"] <= 97.0
