"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel`` package,
so PEP 660 editable installs are unavailable; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All project
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={"console_scripts": ["repro-paper=repro.eval.cli:main"]},
)
