"""Reproduction acceptance tests: the paper's headline shapes.

These tests assert the *qualitative* results of Section 7 — who wins,
roughly by how much, and where — on reduced-size runs, so the suite
stays fast while still guarding the reproduction's conclusions.
"""

import pytest

from repro.apps import APP_NAMES
from repro.eval.accuracy import run_predictors
from repro.eval.performance import run_speculation
from repro.sim.machine import MachineMode

ACCURACY_ITERS = {
    "appbt": 10, "barnes": 21, "em3d": 20, "moldyn": 16,
    "ocean": 12, "tomcatv": 16, "unstructured": 16,
}
PERF_ITERS = {
    "appbt": 8, "barnes": 10, "em3d": 10, "moldyn": 8,
    "ocean": 8, "tomcatv": 10, "unstructured": 8,
}


@pytest.fixture(scope="module")
def accuracy():
    return {
        app: run_predictors(app, depth=1, iterations=ACCURACY_ITERS[app])
        for app in APP_NAMES
    }


@pytest.fixture(scope="module")
def speculation():
    return {
        app: run_speculation(app, iterations=PERF_ITERS[app])
        for app in APP_NAMES
    }


class TestFigure7Shape:
    """MSP beats Cosmos, VMSP beats both (81% -> 86% -> 93%)."""

    def test_mean_accuracy_ordering(self, accuracy):
        means = {
            p: sum(accuracy[a][p].accuracy for a in APP_NAMES) / len(APP_NAMES)
            for p in ("Cosmos", "MSP", "VMSP")
        }
        assert means["Cosmos"] < means["MSP"] < means["VMSP"]

    def test_mean_magnitudes_near_paper(self, accuracy):
        means = {
            p: sum(accuracy[a][p].accuracy for a in APP_NAMES) / len(APP_NAMES)
            for p in ("Cosmos", "MSP", "VMSP")
        }
        assert means["Cosmos"] == pytest.approx(0.81, abs=0.06)
        assert means["MSP"] == pytest.approx(0.86, abs=0.06)
        assert means["VMSP"] == pytest.approx(0.93, abs=0.04)

    def test_vmsp_at_least_87_percent_on_all_but_one(self, accuracy):
        below = [
            app for app in APP_NAMES
            if accuracy[app]["VMSP"].accuracy < 0.85
        ]
        assert len(below) <= 1  # the paper: all but barnes

    def test_em3d_msp_reaches_99(self, accuracy):
        assert accuracy["em3d"]["MSP"].accuracy >= 0.99
        assert accuracy["em3d"]["Cosmos"].accuracy < 0.85

    def test_unstructured_vmsp_rescues_msp(self, accuracy):
        runs = accuracy["unstructured"]
        assert runs["MSP"].accuracy < 0.75
        assert runs["VMSP"].accuracy > 0.85

    def test_cosmos_slightly_beats_msp_on_appbt(self, accuracy):
        runs = accuracy["appbt"]
        assert runs["Cosmos"].accuracy > runs["MSP"].accuracy

    def test_tomcatv_is_fully_predictable(self, accuracy):
        for predictor in ("Cosmos", "MSP", "VMSP"):
            assert accuracy["tomcatv"][predictor].accuracy >= 0.97

    def test_barnes_is_hardest(self, accuracy):
        vmsp = {app: accuracy[app]["VMSP"].accuracy for app in APP_NAMES}
        assert min(vmsp, key=vmsp.get) == "barnes"


class TestFigure8Shape:
    """Deeper history disambiguates alternating patterns."""

    def test_depth_two_fixes_appbt(self):
        shallow = run_predictors("appbt", depth=1, iterations=10)
        deep = run_predictors("appbt", depth=2, iterations=10)
        for predictor in ("MSP", "VMSP"):
            assert deep[predictor].accuracy > shallow[predictor].accuracy
        assert deep["VMSP"].accuracy >= 0.99

    def test_depth_improves_unstructured(self):
        accuracies = [
            run_predictors("unstructured", depth=d, iterations=12)["VMSP"].accuracy
            for d in (1, 2, 4)
        ]
        assert accuracies[0] < accuracies[1] <= accuracies[2] + 0.01
        assert accuracies[2] >= 0.94


class TestTable3Shape:
    def test_high_coverage_for_iterative_apps(self, accuracy):
        for app in ("em3d", "moldyn", "tomcatv", "unstructured"):
            assert accuracy[app]["MSP"].coverage > 0.85

    def test_barnes_coverage_is_lowest(self, accuracy):
        coverage = {app: accuracy[app]["MSP"].coverage for app in APP_NAMES}
        assert min(coverage, key=coverage.get) in ("barnes", "ocean")

    def test_vmsp_learns_slightly_slower(self, accuracy):
        slower = sum(
            accuracy[app]["VMSP"].coverage <= accuracy[app]["MSP"].coverage + 1e-9
            for app in APP_NAMES
        )
        assert slower >= 5  # VMSP's vectors take longer to commit


class TestTable4Shape:
    def test_pattern_table_ordering(self, accuracy):
        for app in APP_NAMES:
            cosmos = accuracy[app]["Cosmos"].average_pte
            msp = accuracy[app]["MSP"].average_pte
            assert msp <= cosmos + 1e-9

    def test_cosmos_explodes_at_depth_four_on_barnes(self):
        shallow = run_predictors("barnes", depth=1, iterations=21)
        deep = run_predictors("barnes", depth=4, iterations=21)
        assert deep["Cosmos"].average_pte > 2.5 * shallow["Cosmos"].average_pte
        # MSP and VMSP grow far more slowly.
        assert deep["VMSP"].average_pte < deep["Cosmos"].average_pte / 2

    def test_msp_storage_roughly_half_of_cosmos(self, accuracy):
        ratios = [
            accuracy[app]["MSP"].overhead_bytes
            / accuracy[app]["Cosmos"].overhead_bytes
            for app in APP_NAMES
        ]
        assert sum(ratios) / len(ratios) < 0.7


class TestFigure9Shape:
    def test_speculation_never_hurts_much(self, speculation):
        for app in APP_NAMES:
            for mode in (MachineMode.FR, MachineMode.SWI):
                assert speculation[app].normalized_time(mode) < 1.06

    def test_swi_best_cases_are_em3d_and_unstructured(self, speculation):
        times = {
            app: speculation[app].normalized_time(MachineMode.SWI)
            for app in APP_NAMES
        }
        best_two = sorted(times, key=times.get)[:2]
        assert set(best_two) <= {"em3d", "unstructured", "moldyn"}

    def test_swi_adds_nothing_for_appbt_barnes_ocean(self, speculation):
        for app in ("appbt", "barnes", "ocean"):
            fr = speculation[app].normalized_time(MachineMode.FR)
            swi = speculation[app].normalized_time(MachineMode.SWI)
            assert swi >= fr - 0.06

    def test_swi_beats_fr_where_paper_says(self, speculation):
        for app in ("em3d", "moldyn", "tomcatv", "unstructured"):
            fr = speculation[app].normalized_time(MachineMode.FR)
            swi = speculation[app].normalized_time(MachineMode.SWI)
            assert swi < fr

    def test_average_improvements_at_least_paper_band(self, speculation):
        fr_mean = sum(
            speculation[a].normalized_time(MachineMode.FR) for a in APP_NAMES
        ) / len(APP_NAMES)
        swi_mean = sum(
            speculation[a].normalized_time(MachineMode.SWI) for a in APP_NAMES
        ) / len(APP_NAMES)
        assert fr_mean <= 0.97  # paper: mean 8% reduction
        assert swi_mean <= 0.92  # paper: mean 12% reduction
        assert swi_mean < fr_mean


class TestTable5Shape:
    def test_em3d_swi_dominates(self, speculation):
        row = speculation["em3d"].table5_row()
        assert row["wi_sent"] >= 90
        assert row["swi_read_sent"] >= 80
        assert row["fr_read_sent"] >= 30  # FR-DSM column

    def test_swi_defeated_on_appbt_barnes_ocean(self, speculation):
        for app in ("appbt", "barnes", "ocean"):
            row = speculation[app].table5_row()
            assert row["swi_read_sent"] <= 10
            assert row["wi_sent"] <= 40

    def test_tomcatv_correction_halves_swi(self, speculation):
        row = speculation["tomcatv"].table5_row()
        assert 30 <= row["wi_sent"] <= 70
        assert row["swi_read_sent"] >= 25

    def test_unstructured_migratory_chains(self, speculation):
        row = speculation["unstructured"].table5_row()
        assert row["wi_sent"] >= 80
        assert row["swi_read_sent"] >= 50

    def test_write_invalidate_misses_are_small(self, speculation):
        for app in APP_NAMES:
            row = speculation[app].table5_row()
            assert row["wi_miss"] <= 25
