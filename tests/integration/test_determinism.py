"""Whole-pipeline determinism: identical seeds give identical results."""

import pytest

from repro.apps import APP_NAMES
from repro.eval.accuracy import run_predictors
from repro.eval.performance import run_speculation
from repro.eval.performance import PAPER_MODES


@pytest.mark.parametrize("app", APP_NAMES)
def test_predictor_pipeline_is_reproducible(app):
    a = run_predictors(app, depth=1, iterations=4)
    b = run_predictors(app, depth=1, iterations=4)
    for predictor in a:
        assert a[predictor].stats == b[predictor].stats
        assert a[predictor].average_pte == b[predictor].average_pte


@pytest.mark.parametrize("app", ["em3d", "ocean"])
def test_speculation_pipeline_is_reproducible(app):
    a = run_speculation(app, iterations=4)
    b = run_speculation(app, iterations=4)
    for mode in PAPER_MODES:
        assert a.result(mode).cycles == b.result(mode).cycles
        assert a.result(mode).counters == b.result(mode).counters


def test_different_race_seeds_change_racy_outcomes():
    a = run_predictors("unstructured", depth=1, iterations=6, race_seed=1)
    b = run_predictors("unstructured", depth=1, iterations=6, race_seed=2)
    assert a["MSP"].stats.correct != b["MSP"].stats.correct


def test_race_seed_does_not_change_request_totals():
    a = run_predictors("unstructured", depth=1, iterations=6, race_seed=1)
    b = run_predictors("unstructured", depth=1, iterations=6, race_seed=2)
    assert a["MSP"].stats.observed == b["MSP"].stats.observed
