"""Standardized Hypothesis settings profiles for property tests.

Tiers:

- ``DETERMINISM_SETTINGS``: 500 examples — hash/canonical/bit-identity
  properties, where a single counterexample means silent cache
  corruption or irreproducible experiments,
- ``STANDARD_SETTINGS``: 100 examples — regular property tests,
- ``QUICK_SETTINGS``: 20 examples — expensive properties (e.g. ones
  that cross a process boundary per example).

Deadlines are disabled throughout: the suite runs on single-core CI
boxes where a forked worker or a first-call import can blow any
per-example deadline without indicating a real problem.
"""

from hypothesis import settings

DETERMINISM_SETTINGS = settings(max_examples=500, deadline=None)
STANDARD_SETTINGS = settings(max_examples=100, deadline=None)
QUICK_SETTINGS = settings(max_examples=20, deadline=None)
