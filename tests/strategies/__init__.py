"""Hypothesis strategies for property-based tests.

Import from test modules *after* ``pytest.importorskip("hypothesis")``
so the suite degrades to skips when Hypothesis is not installed::

    import pytest

    pytest.importorskip("hypothesis")
    from tests.strategies import DETERMINISM_SETTINGS, block_ids, sweep_points

Re-exports the common strategies and the tiered settings profiles.
"""

from tests.strategies.settings import (
    DETERMINISM_SETTINGS,
    QUICK_SETTINGS,
    STANDARD_SETTINGS,
)
from tests.strategies.sim import block_ids, node_ids, rng_labels, seeds
from tests.strategies.sweeps import sweep_param_dicts, sweep_points

__all__ = [
    "DETERMINISM_SETTINGS",
    "QUICK_SETTINGS",
    "STANDARD_SETTINGS",
    "block_ids",
    "node_ids",
    "rng_labels",
    "seeds",
    "sweep_param_dicts",
    "sweep_points",
]
