"""Strategies for the simulator's identifier spaces.

Block ids follow the reproduction's address layout: the bits above
``HOME_SHIFT`` name the home node and the low bits index that node's
private heap (see ``repro.sim.address``), so generated blocks are
always ones an :class:`~repro.sim.address.AddressSpace` could have
allocated.
"""

from hypothesis import strategies as st

from repro.common.config import HOME_SHIFT

#: Widest machine the paper configures; strategies default to it.
MAX_NODES = 16


def node_ids(num_nodes: int = MAX_NODES) -> st.SearchStrategy[int]:
    """A valid processor/home id for a machine of ``num_nodes``."""
    return st.integers(min_value=0, max_value=num_nodes - 1)


def block_ids(
    num_nodes: int = MAX_NODES, heap_blocks: int = 1 << 12
) -> st.SearchStrategy[int]:
    """A block id with a valid home field and in-range heap offset."""
    return st.builds(
        lambda home, offset: (home << HOME_SHIFT) | offset,
        node_ids(num_nodes),
        st.integers(min_value=0, max_value=heap_blocks - 1),
    )


def seeds() -> st.SearchStrategy:
    """An experiment seed: ints and strings are both accepted."""
    return st.one_of(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=16,
        ),
    )


def rng_labels() -> st.SearchStrategy[str]:
    """A stream label for ``DeterministicRng.split``."""
    return st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    )
