"""Strategies for the simulator's identifier spaces.

Block ids follow the reproduction's address layout: the bits above
``HOME_SHIFT`` name the home node and the low bits index that node's
private heap (see ``repro.sim.address``), so generated blocks are
always ones an :class:`~repro.sim.address.AddressSpace` could have
allocated.
"""

from hypothesis import strategies as st

from repro.common.config import HOME_SHIFT

#: Widest machine the paper configures; strategies default to it.
MAX_NODES = 16


def node_ids(num_nodes: int = MAX_NODES) -> st.SearchStrategy[int]:
    """A valid processor/home id for a machine of ``num_nodes``."""
    return st.integers(min_value=0, max_value=num_nodes - 1)


def block_ids(
    num_nodes: int = MAX_NODES, heap_blocks: int = 1 << 12
) -> st.SearchStrategy[int]:
    """A block id with a valid home field and in-range heap offset."""
    return st.builds(
        lambda home, offset: (home << HOME_SHIFT) | offset,
        node_ids(num_nodes),
        st.integers(min_value=0, max_value=heap_blocks - 1),
    )


def workloads(
    max_procs: int = 4, max_phases: int = 3, max_items: int = 5
) -> st.SearchStrategy:
    """A random, deadlock-free :class:`~repro.apps.base.Workload`.

    Per phase and processor the strategy draws a short sequence of
    items — compute bursts, reads/writes of a deliberately tiny block
    space (so processors actually share), and lock critical sections.
    Locks are emitted as self-contained acquire/body/release triples
    and never nest, so generated workloads cannot deadlock: every
    processor always reaches the phase barrier.
    """
    from repro.apps.base import WorkloadBuilder

    def build(draw_spec):
        num_procs, phase_specs = draw_spec
        builder = WorkloadBuilder("hypothesis", num_procs)
        for p_index, (racy, proc_items) in enumerate(phase_specs):
            with builder.phase(f"phase{p_index}", racy_reads=racy):
                for proc, items in enumerate(proc_items):
                    for kind, block, cycles, lock in items:
                        if kind == "c":
                            builder.compute(proc, cycles)
                        elif kind == "r":
                            builder.read(proc, block)
                        elif kind == "w":
                            builder.write(proc, block)
                        else:  # non-nesting critical section
                            builder.lock(proc, lock)
                            builder.write(proc, block)
                            builder.unlock(proc, lock)
        return builder.finish()

    def specs(num_procs):
        # A tiny block space shared by all processors: home node in
        # range, two heap slots per home.
        item = st.tuples(
            st.sampled_from(["c", "r", "w", "l"]),
            block_ids(num_procs, heap_blocks=2),
            st.integers(min_value=1, max_value=40),
            st.integers(min_value=0, max_value=1),
        )
        phase = st.tuples(
            st.booleans(),
            st.lists(
                st.lists(item, max_size=max_items),
                min_size=num_procs,
                max_size=num_procs,
            ),
        )
        return st.tuples(
            st.just(num_procs),
            st.lists(phase, min_size=1, max_size=max_phases),
        )

    return (
        st.integers(min_value=2, max_value=max_procs)
        .flatmap(specs)
        .map(build)
    )


def seeds() -> st.SearchStrategy:
    """An experiment seed: ints and strings are both accepted."""
    return st.one_of(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=16,
        ),
    )


def rng_labels() -> st.SearchStrategy[str]:
    """A stream label for ``DeterministicRng.split``."""
    return st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    )
