"""Strategies for harness sweep parameters and points.

Generated parameter values stay inside the JSON model the harness
requires (strings, ints, finite floats, bools, None, and nested
lists/dicts of those), so every generated point must freeze, hash,
serialize, and round-trip without error.
"""

from hypothesis import strategies as st

from repro.harness.spec import SweepPoint

_PARAM_NAMES = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
)


def sweep_param_values() -> st.SearchStrategy:
    """A JSON-representable parameter value, possibly nested."""
    return st.recursive(
        _SCALARS,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(_PARAM_NAMES, children, max_size=4),
        ),
        max_leaves=8,
    )


def sweep_param_dicts(max_size: int = 6) -> st.SearchStrategy[dict]:
    """A concrete parameter assignment for one sweep point."""
    return st.dictionaries(_PARAM_NAMES, sweep_param_values(), max_size=max_size)


def sweep_points(
    kinds: tuple[str, ...] = ("selftest", "accuracy", "speculation")
) -> st.SearchStrategy[SweepPoint]:
    """An arbitrary (not necessarily runnable) sweep point."""
    return st.builds(
        SweepPoint.make, st.sampled_from(list(kinds)), sweep_param_dicts()
    )
