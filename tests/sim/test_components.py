"""Tests for caches, address space, interconnect, and synchronization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import HOME_SHIFT, SystemConfig
from repro.network.interconnect import Interconnect
from repro.sim.address import AddressSpace, home_of
from repro.sim.caches import CacheState, ProcessorCache, RemoteCache
from repro.sim.events import EventQueue
from repro.sim.fastevents import CalendarEventQueue
from repro.sim.sync import BarrierManager, LockManager


class TestAddressSpace:
    def test_blocks_carry_their_home(self):
        space = AddressSpace(16)
        for home in (0, 7, 15):
            for block in space.alloc(home, 5):
                assert home_of(block, 16) == home

    def test_allocations_are_contiguous_and_disjoint(self):
        space = AddressSpace(4)
        first = space.alloc(2, 3)
        second = space.alloc(2, 3)
        assert first == [(2 << HOME_SHIFT) + i for i in range(3)]
        assert not set(first) & set(second)

    def test_alloc_one(self):
        space = AddressSpace(4)
        block = space.alloc_one(1)
        assert home_of(block, 4) == 1
        assert space.allocated(1) == 1

    def test_bad_arguments(self):
        space = AddressSpace(4)
        with pytest.raises(ValueError):
            space.alloc(9, 1)
        with pytest.raises(ValueError):
            space.alloc(0, 0)

    @given(st.integers(2, 32), st.integers(0, 31), st.integers(1, 100))
    def test_home_roundtrip(self, nodes, home, count):
        if home >= nodes:
            home %= nodes
        space = AddressSpace(nodes)
        for block in space.alloc(home, count):
            assert home_of(block, nodes) == home


class TestProcessorCache:
    def test_starts_invalid(self):
        cache = ProcessorCache()
        assert cache.state_of(1) is CacheState.INVALID
        assert not cache.can_read(1)
        assert not cache.can_write(1)

    def test_shared_allows_reads_only(self):
        cache = ProcessorCache()
        cache.set_state(1, CacheState.SHARED)
        assert cache.can_read(1)
        assert not cache.can_write(1)

    def test_exclusive_allows_both(self):
        cache = ProcessorCache()
        cache.set_state(1, CacheState.EXCLUSIVE)
        assert cache.can_read(1)
        assert cache.can_write(1)

    def test_invalidate_reports_presence(self):
        cache = ProcessorCache()
        cache.set_state(1, CacheState.SHARED)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)

    def test_setting_invalid_drops_entry(self):
        cache = ProcessorCache()
        cache.set_state(1, CacheState.SHARED)
        cache.set_state(1, CacheState.INVALID)
        assert not cache.can_read(1)


class TestRemoteCache:
    def test_consume_sets_reference_bit(self):
        cache = RemoteCache()
        cache.place(5, origin="fr")
        entry = cache.consume(5)
        assert entry is not None and entry.referenced
        assert cache.lookup(5) is None

    def test_evict_preserves_reference_state(self):
        cache = RemoteCache()
        cache.place(5, origin="swi")
        entry = cache.evict(5)
        assert entry is not None and not entry.referenced
        assert entry.origin == "swi"

    def test_unreferenced_listing(self):
        cache = RemoteCache()
        cache.place(1, origin="fr")
        cache.place(2, origin="fr")
        cache.consume(1)
        assert [block for block, _ in cache.unreferenced()] == [2]

    def test_len(self):
        cache = RemoteCache()
        cache.place(1, origin="fr")
        assert len(cache) == 1


class TestInterconnect:
    def test_local_delivery_is_immediate(self):
        events = EventQueue()
        net = Interconnect(SystemConfig(), events)
        seen = []
        net.send(3, 3, lambda: seen.append(events.now))
        events.run()
        assert seen == [0]
        assert net.messages_sent == 0

    def test_remote_delivery_costs_network_plus_ni(self):
        events = EventQueue()
        config = SystemConfig()
        net = Interconnect(config, events)
        seen = []
        net.send(0, 1, lambda: seen.append(events.now))
        events.run()
        assert seen == [config.network_cycles + config.ni_cycles]

    def test_receiver_ni_serializes(self):
        events = EventQueue()
        config = SystemConfig()
        net = Interconnect(config, events)
        seen = []
        net.send(0, 1, lambda: seen.append(events.now))
        net.send(2, 1, lambda: seen.append(events.now))
        events.run()
        first = config.network_cycles + config.ni_cycles
        assert seen == [first, first + config.ni_cycles]

    def test_distinct_receivers_do_not_contend(self):
        events = EventQueue()
        config = SystemConfig()
        net = Interconnect(config, events)
        seen = []
        net.send(0, 1, lambda: seen.append(events.now))
        net.send(0, 2, lambda: seen.append(events.now))
        events.run()
        assert seen[0] == seen[1]

    @pytest.mark.parametrize("make_queue", [EventQueue, CalendarEventQueue])
    def test_send_call_matches_send_on_both_queues(self, make_queue):
        """The packed-args delivery path models identical latencies,
        NI contention, and ordering — whichever queue backs the net."""
        config = SystemConfig()
        closure_events = make_queue()
        closure_net = Interconnect(config, closure_events)
        packed_events = make_queue()
        packed_net = Interconnect(config, packed_events)
        closure_seen, packed_seen = [], []

        closure_net.send(3, 3, lambda: closure_seen.append(("local", closure_events.now)))
        closure_net.send(0, 1, lambda: closure_seen.append(("a", closure_events.now)))
        closure_net.send(2, 1, lambda: closure_seen.append(("b", closure_events.now)))
        packed_net.send_call(3, 3, lambda tag: packed_seen.append((tag, packed_events.now)), "local")
        packed_net.send_call(0, 1, lambda tag: packed_seen.append((tag, packed_events.now)), "a")
        packed_net.send_call(2, 1, lambda tag: packed_seen.append((tag, packed_events.now)), "b")

        closure_events.run()
        packed_events.run()
        assert packed_seen == closure_seen
        assert packed_net.messages_sent == closure_net.messages_sent == 2


class TestBarrier:
    def test_releases_only_when_all_arrive(self):
        events = EventQueue()
        config = SystemConfig(num_nodes=4)
        barrier = BarrierManager(4, config, events)
        released = []
        for p in range(3):
            barrier.arrive(p, lambda p=p: released.append(p))
        events.run()
        assert released == []
        barrier.arrive(3, lambda: released.append(3))
        events.run()
        assert sorted(released) == [0, 1, 2, 3]

    def test_barrier_is_reusable(self):
        events = EventQueue()
        config = SystemConfig(num_nodes=2)
        barrier = BarrierManager(2, config, events)
        log = []
        barrier.arrive(0, lambda: log.append("r1"))
        barrier.arrive(1, lambda: log.append("r1"))
        events.run()
        barrier.arrive(0, lambda: log.append("r2"))
        barrier.arrive(1, lambda: log.append("r2"))
        events.run()
        assert log == ["r1", "r1", "r2", "r2"]


class TestLocks:
    def test_fifo_grant_order(self):
        events = EventQueue()
        config = SystemConfig()
        locks = LockManager(config, events)
        log = []
        locks.acquire(1, 0, lambda: log.append(0))
        locks.acquire(1, 1, lambda: log.append(1))
        locks.acquire(1, 2, lambda: log.append(2))
        events.run()
        assert log == [0]
        locks.release(1, 0)
        events.run()
        locks.release(1, 1)
        events.run()
        assert log == [0, 1, 2]

    def test_release_by_non_holder_rejected(self):
        events = EventQueue()
        locks = LockManager(SystemConfig(), events)
        locks.acquire(1, 0, lambda: None)
        events.run()
        with pytest.raises(RuntimeError):
            locks.release(1, 5)

    def test_independent_locks(self):
        events = EventQueue()
        locks = LockManager(SystemConfig(), events)
        log = []
        locks.acquire(1, 0, lambda: log.append("l1"))
        locks.acquire(2, 1, lambda: log.append("l2"))
        events.run()
        assert sorted(log) == ["l1", "l2"]
        assert locks.holder_of(1) == 0
        assert locks.holder_of(2) == 1
