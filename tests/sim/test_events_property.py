"""Property test: the calendar queue replays any program identically.

Hypothesis generates arbitrary interleavings of the full queue API —
``schedule`` / ``at`` / ``call`` (with arguments) / ``run(max_events)``
/ ``run_cycle`` / ``peek_time`` / ``len`` — including same-cycle ties
and events that schedule more events when they fire.  Each program is
interpreted simultaneously against the heapq reference
:class:`~repro.sim.events.EventQueue` and the calendar
:class:`~repro.sim.fastevents.CalendarEventQueue`; after every
operation the two must agree on

* the execution log (which event fired, in what order, at what time),
* every return value (events processed, peeked time, length),
* the clock ``now``.

This is the microscopic half of the equivalence story: the golden
suite (test_engine_equivalence.py) checks whole simulations; this
checks the queue contract itself, so a future queue change cannot hide
behind workloads that happen not to exercise an ordering corner.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.fastevents import CalendarEventQueue, make_event_queue
from tests.strategies import STANDARD_SETTINGS

pytestmark = pytest.mark.property


# ----------------------------------------------------------------------
# program strategy
# ----------------------------------------------------------------------
# An event spec is (delay, style, children): when the event fires it
# logs itself and schedules its children relative to the firing time.
# ``style`` picks which scheduling API plants it (closure vs packed
# args), so both representations are exercised on both queues.

DELAYS = st.integers(min_value=0, max_value=12)
STYLES = st.sampled_from(["schedule", "at", "call"])

EVENT_SPECS = st.recursive(
    st.tuples(DELAYS, STYLES, st.just(())),
    lambda children: st.tuples(
        DELAYS, STYLES, st.lists(children, max_size=3).map(tuple)
    ),
    max_leaves=8,
)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("plant"), EVENT_SPECS),
        st.tuples(st.just("run"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("run_all"), st.just(None)),
        st.tuples(st.just("run_cycle"), st.just(None)),
        st.tuples(st.just("peek"), st.just(None)),
    ),
    max_size=30,
)


class Interpreter:
    """Drives one queue through a program, recording everything."""

    def __init__(self, queue) -> None:
        self.queue = queue
        self.log: list[tuple[int, int]] = []
        self._next_id = 0

    def plant(self, spec) -> None:
        delay, style, children = spec
        event_id = self._next_id
        self._next_id += 1
        queue = self.queue

        def fire(eid=event_id, kids=children) -> None:
            self.log.append((eid, queue.now))
            for child in kids:
                self.plant(child)

        if style == "schedule":
            queue.schedule(delay, fire)
        elif style == "at":
            queue.at(queue.now + delay, fire)
        else:  # packed-args API
            queue.call(delay, self._fire_packed, event_id, children)

    def _fire_packed(self, event_id, children) -> None:
        self.log.append((event_id, self.queue.now))
        for child in children:
            self.plant(child)

    def snapshot(self):
        return (tuple(self.log), self.queue.now, len(self.queue),
                self.queue.peek_time())


@given(program=OPERATIONS)
@STANDARD_SETTINGS
def test_calendar_queue_replays_heapq_reference(program):
    reference = Interpreter(EventQueue())
    calendar = Interpreter(CalendarEventQueue())

    for op, arg in program:
        for interp in (reference, calendar):
            queue = interp.queue
            if op == "plant":
                interp.plant(arg)
            elif op == "run":
                interp.last = queue.run(max_events=arg)
            elif op == "run_all":
                interp.last = queue.run()
            elif op == "run_cycle":
                interp.last = queue.run_cycle()
            else:
                interp.last = queue.peek_time()
        assert getattr(reference, "last", None) == getattr(calendar, "last", None)
        assert reference.snapshot() == calendar.snapshot()

    # Drain whatever remains: final order must match too.
    assert reference.queue.run() == calendar.queue.run()
    assert reference.snapshot() == calendar.snapshot()


@given(program=OPERATIONS)
@STANDARD_SETTINGS
def test_zero_budget_is_noop_on_both_queues(program):
    for factory in (EventQueue, CalendarEventQueue):
        interp = Interpreter(factory())
        for op, arg in program:
            if op == "plant":
                interp.plant(arg)
        before = interp.snapshot()
        assert interp.queue.run(max_events=0) == 0
        assert interp.snapshot() == before


def test_make_event_queue_dispatch():
    assert isinstance(make_event_queue("fast"), CalendarEventQueue)
    assert isinstance(make_event_queue("reference"), EventQueue)
    with pytest.raises(ValueError, match="unknown timing engine"):
        make_event_queue("turbo")


class TestCalendarQueueEdges:
    """Deterministic corners that deserve names of their own."""

    def test_negative_delay_and_past_at_rejected(self):
        queue = CalendarEventQueue()
        with pytest.raises(ValueError, match="past"):
            queue.schedule(-1, lambda: None)
        queue.call(5, lambda: None)
        queue.run()
        with pytest.raises(ValueError, match="past"):
            queue.at(2, lambda: None)

    def test_negative_budget_rejected(self):
        queue = CalendarEventQueue()
        with pytest.raises(ValueError, match="max_events"):
            queue.run(max_events=-1)

    def test_budget_stops_mid_bucket_preserving_fifo(self):
        queue = CalendarEventQueue()
        log = []
        for tag in "abcd":
            queue.schedule(3, lambda t=tag: log.append(t))
        assert queue.run(max_events=2) == 2
        assert log == ["a", "b"]
        assert len(queue) == 2
        assert queue.peek_time() == 3
        assert queue.run() == 2
        assert log == ["a", "b", "c", "d"]

    def test_same_cycle_events_scheduled_while_draining_run_in_pass(self):
        queue = CalendarEventQueue()
        log = []

        def first():
            log.append("first")
            queue.schedule(0, lambda: log.append("tail"))

        queue.schedule(7, first)
        queue.schedule(7, lambda: log.append("second"))
        assert queue.run_cycle() == 3
        assert log == ["first", "second", "tail"]
        assert len(queue) == 0

    def test_exception_mid_bucket_keeps_queue_consistent(self):
        queue = CalendarEventQueue()
        log = []
        queue.schedule(1, lambda: log.append("ok"))
        queue.schedule(1, lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        queue.schedule(1, lambda: log.append("after"))
        with pytest.raises(RuntimeError, match="boom"):
            queue.run()
        # The raising event was consumed; the remainder is intact.
        assert log == ["ok"]
        assert len(queue) == 1
        assert queue.run() == 1
        assert log == ["ok", "after"]
