"""Protocol-level tests of the timing home directory."""

import pytest

from repro.apps.base import WorkloadBuilder
from repro.common.config import SystemConfig
from repro.common.types import DirectoryState
from repro.sim.address import AddressSpace
from repro.sim.caches import CacheState
from repro.sim.home import MemRequest
from repro.sim.machine import Machine, MachineMode


def machine_with_idle_workload(num_nodes=4):
    builder = WorkloadBuilder("idle", num_nodes)
    with builder.phase("noop"):
        pass
    return Machine(builder.finish(), config=SystemConfig(num_nodes=num_nodes))


class TestHomeDirectory:
    def test_read_fills_requester_cache(self):
        machine = machine_with_idle_workload()
        space = AddressSpace(4)
        block = space.alloc_one(0)
        done = []
        machine.home(0).request(
            MemRequest(kind="read", block=block, requester=1, on_done=lambda: done.append(1))
        )
        machine.events.run()
        assert done == [1]
        assert machine.node(1).cache.state_of(block) is CacheState.SHARED
        assert machine.home(0).entry(block).sharers == {1}

    def test_write_grants_exclusive(self):
        machine = machine_with_idle_workload()
        block = AddressSpace(4).alloc_one(0)
        machine.home(0).request(
            MemRequest(kind="write", block=block, requester=2, on_done=lambda: None)
        )
        machine.events.run()
        assert machine.node(2).cache.state_of(block) is CacheState.EXCLUSIVE
        assert machine.home(0).entry(block).owner == 2

    def test_write_invalidates_reader_caches(self):
        machine = machine_with_idle_workload()
        block = AddressSpace(4).alloc_one(0)
        home = machine.home(0)
        for reader in (1, 3):
            home.request(MemRequest("read", block, reader, on_done=lambda: None))
        machine.events.run()
        home.request(MemRequest("write", block, 2, on_done=lambda: None))
        machine.events.run()
        assert not machine.node(1).cache.can_read(block)
        assert not machine.node(3).cache.can_read(block)
        assert machine.node(2).cache.can_write(block)

    def test_read_recalls_dirty_copy(self):
        machine = machine_with_idle_workload()
        block = AddressSpace(4).alloc_one(0)
        home = machine.home(0)
        home.request(MemRequest("write", block, 3, on_done=lambda: None))
        machine.events.run()
        home.request(MemRequest("read", block, 1, on_done=lambda: None))
        machine.events.run()
        assert not machine.node(3).cache.can_read(block)
        assert machine.home(0).entry(block).state is DirectoryState.SHARED

    def test_per_block_requests_serialize(self):
        machine = machine_with_idle_workload()
        block = AddressSpace(4).alloc_one(0)
        home = machine.home(0)
        order = []
        home.request(MemRequest("write", block, 1, on_done=lambda: order.append(1)))
        home.request(MemRequest("write", block, 2, on_done=lambda: order.append(2)))
        home.request(MemRequest("read", block, 3, on_done=lambda: order.append(3)))
        machine.events.run()
        assert order == [1, 2, 3]
        assert machine.home(0).entry(block).sharers == {3}

    def test_requests_to_distinct_blocks_overlap(self):
        machine = machine_with_idle_workload()
        space = AddressSpace(4)
        a, b = space.alloc(0, 2)
        completion = {}
        home = machine.home(0)
        home.request(MemRequest("read", a, 1, on_done=lambda: completion.setdefault("a", machine.events.now)))
        home.request(MemRequest("read", b, 2, on_done=lambda: completion.setdefault("b", machine.events.now)))
        machine.events.run()
        # Same latency: served concurrently, not back-to-back.
        assert abs(completion["a"] - completion["b"]) < 200


class TestSwiRecallRequest:
    def test_recall_ignored_without_engine(self):
        machine = machine_with_idle_workload()
        block = AddressSpace(4).alloc_one(0)
        home = machine.home(0)
        home.request(MemRequest("write", block, 3, on_done=lambda: None))
        machine.events.run()
        home.request(MemRequest("swi-recall", block, 3))
        machine.events.run()
        # Base machine: no engine, the recall is a no-op.
        assert machine.home(0).entry(block).owner == 3

    def test_recall_ignored_when_not_exclusive(self):
        builder = WorkloadBuilder("idle", 4)
        with builder.phase("noop"):
            pass
        machine = Machine(
            builder.finish(),
            config=SystemConfig(num_nodes=4),
            mode=MachineMode.SWI,
        )
        block = AddressSpace(4).alloc_one(0)
        home = machine.home(0)
        home.request(MemRequest("read", block, 1, on_done=lambda: None))
        machine.events.run()
        home.request(MemRequest("swi-recall", block, 1))
        machine.events.run()
        assert machine.home(0).entry(block).sharers == {1}  # untouched
