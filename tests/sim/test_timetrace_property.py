"""Property tests: the compiled engine equals the fast engine on
arbitrary workloads, not just the seven paper applications.

Each example drives one randomly generated (deadlock-free) workload
through the fast engine and through both compiled paths — the
recording run and the memo replay — and asserts the RunResults are
bit-identical.  Separate properties pin the corner semantics: bounded
runs raise :class:`~repro.sim.machine.EventBudgetExhausted` exactly as
the fast engine does, and deadlocked workloads diagnose a deadlock on
every engine without ever storing a trace.
"""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import SystemConfig
from repro.sim.machine import EventBudgetExhausted, Machine, MachineMode
from repro.sim.timetrace import reset_timetrace_memo
from tests.strategies.settings import QUICK_SETTINGS
from tests.strategies.sim import workloads

MODES = st.sampled_from(list(MachineMode))


def run(workload, mode, engine, max_events=None):
    machine = Machine(
        workload,
        config=SystemConfig(num_nodes=workload.num_procs),
        mode=mode,
        engine=engine,
    )
    return machine.run(max_events=max_events)


@given(workload=workloads(), mode=MODES)
@QUICK_SETTINGS
def test_compiled_equals_fast_on_random_workloads(workload, mode):
    reset_timetrace_memo()
    fast = run(workload, mode, "fast")
    recorded = run(workload, mode, "compiled")
    replayed = run(workload, mode, "compiled")
    assert dataclasses.asdict(recorded) == dataclasses.asdict(fast)
    assert dataclasses.asdict(replayed) == dataclasses.asdict(fast)


@given(workload=workloads(), mode=MODES, budget=st.integers(1, 30))
@QUICK_SETTINGS
def test_bounded_runs_agree_with_fast_engine(workload, mode, budget):
    """A tiny event budget either exhausts on both engines or completes
    identically on both — the compiled engine never replays a bounded
    run, so the budget semantics are the live engine's."""
    reset_timetrace_memo()
    outcomes = []
    for engine in ("fast", "compiled"):
        try:
            outcomes.append(dataclasses.asdict(run(workload, mode, engine, budget)))
        except EventBudgetExhausted:
            outcomes.append("exhausted")
    assert outcomes[0] == outcomes[1]


@given(workload=workloads(max_phases=1), mode=MODES)
@QUICK_SETTINGS
def test_deadlocks_diagnosed_on_every_engine(workload, mode):
    """Grafting a never-released lock contention onto any workload
    deadlocks it; all three engines must say so, and the compiled
    engine must not memoize a trace for the doomed run."""
    from repro.apps.base import LockAcquire

    stuck_lock = 99
    first_phase = workload.phases[0]
    first_phase.ops[0].insert(0, LockAcquire(stuck_lock))
    first_phase.ops[1].insert(0, LockAcquire(stuck_lock))
    workload.locks.add(stuck_lock)

    reset_timetrace_memo()
    for engine in ("fast", "compiled", "reference"):
        with pytest.raises(RuntimeError, match="deadlock"):
            run(workload, mode, engine)
    from repro.sim.timetrace.cache import _memo

    assert not _memo
