"""Golden equivalence suite: every timing engine vs the reference.

The calendar-queue engine (``Machine(engine="fast")``) and the
trace-compiling engine (``engine="compiled"``) are allowed to replace
the heapq reference only because they are provably the same
simulation.  This suite runs **all 7 applications × all 4 machine
modes** on every engine at reduced iterations and asserts the entire
:class:`~repro.sim.machine.RunResult` — cycles, the time breakdown,
request counters, and every speculation statistic — is bit-identical.
The compiled engine is exercised on *both* of its paths: the recording
run (cache miss, live simulation) and the replay (cache hit, batch
reconstruction from the macro-step trace), plus a repeat-run
determinism check at a fixed seed.

Timing results feed Figure 9 and Table 5 directly, so any divergence
here would silently corrupt paper figures; that is why this suite is
part of the quick CI lane, not an optional extra.
"""

import dataclasses

import pytest

from repro.apps.registry import APP_NAMES, make_app
from repro.common.config import SystemConfig
from repro.sim.machine import Machine, MachineMode, RunResult
from repro.sim.timetrace import reset_timetrace_memo

#: Small but non-trivial workloads: every app still exercises barriers,
#: locks (where present), write-invalidation chains, and speculation.
ITERATIONS = 2
NUM_PROCS = 16
SEED = 1999

_WORKLOADS: dict[str, object] = {}


def workload_for(app: str):
    """Build each app's workload once for the whole module."""
    if app not in _WORKLOADS:
        _WORKLOADS[app] = make_app(
            app, num_procs=NUM_PROCS, iterations=ITERATIONS, seed=SEED
        ).build()
    return _WORKLOADS[app]


def run_once(app: str, mode: MachineMode, engine: str) -> RunResult:
    machine = Machine(
        workload_for(app),
        config=SystemConfig(num_nodes=NUM_PROCS),
        mode=mode,
        engine=engine,
    )
    return machine.run()


def assert_identical(fast: RunResult, reference: RunResult) -> None:
    """Field-by-field comparison so a failure names the divergent stat."""
    fast_dict = dataclasses.asdict(fast)
    ref_dict = dataclasses.asdict(reference)
    for name, ref_value in ref_dict.items():
        assert fast_dict[name] == ref_value, (
            f"RunResult.{name} diverged: fast={fast_dict[name]!r} "
            f"reference={ref_value!r}"
        )
    assert fast == reference  # belt and braces: dataclass equality


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize(
    "mode", list(MachineMode), ids=[m.value for m in MachineMode]
)
class TestEngineEquivalence:
    def test_run_result_bit_identical(self, app, mode):
        fast = run_once(app, mode, "fast")
        reference = run_once(app, mode, "reference")
        assert_identical(fast, reference)

    def test_compiled_record_and_replay_bit_identical(self, app, mode):
        """Both compiled paths against the reference.

        The first run misses (no memoized trace) and records the live
        simulation; the second hits the in-process memo and replays the
        macro-step trace in batch.  Either path producing anything but
        the reference RunResult corrupts Figure 9 / Table 5 silently.
        """
        reset_timetrace_memo()
        reference = run_once(app, mode, "reference")
        recorded = run_once(app, mode, "compiled")
        replayed = run_once(app, mode, "compiled")
        assert_identical(recorded, reference)
        assert_identical(replayed, reference)


@pytest.mark.parametrize("engine", ["fast", "compiled", "reference"])
def test_repeat_run_determinism(engine):
    """The same seed must reproduce the same RunResult, twice over."""
    first = run_once("em3d", MachineMode.SWI, engine)
    second = run_once("em3d", MachineMode.SWI, engine)
    assert_identical(first, second)


@pytest.mark.parametrize("engine", ["fast", "compiled"])
def test_run_speculation_engine_equivalence(engine):
    """The eval-layer entry point threads the switch through intact."""
    from repro.eval.performance import run_speculation

    reset_timetrace_memo()
    run = run_speculation("tomcatv", iterations=ITERATIONS, engine=engine)
    reference = run_speculation(
        "tomcatv", iterations=ITERATIONS, engine="reference"
    )
    for mode in (MachineMode.BASE, MachineMode.FR, MachineMode.SWI):
        assert_identical(run.result(mode), reference.result(mode))
    assert run.table5_row() == reference.table5_row()
