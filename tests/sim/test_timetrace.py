"""The compiled timing engine: record/replay, codec, cache behavior.

The golden equivalence suite (``test_engine_equivalence``) proves the
compiled engine bit-identical to the reference across the paper's whole
app × mode grid; this module covers the machinery around that claim —
the payload codec rejects malformed entries, the cache address reacts
to every run parameter, corrupt or stale disk entries fall back to a
live run, and bounded/deadlocked runs keep live-engine semantics.
"""

import dataclasses
import json

import pytest

from repro.apps.base import WorkloadBuilder
from repro.common.config import SystemConfig
from repro.sim.machine import EventBudgetExhausted, Machine, MachineMode
from repro.sim.timetrace import (
    TimingTrace,
    reset_timetrace_memo,
    timetrace_point,
    workload_fingerprint,
)
from repro.trace.cache import configure_trace_cache, timetrace_store

NUM_PROCS = 4


@pytest.fixture(autouse=True)
def fresh_timetrace_state():
    """No memoized traces or configured cache dir leaks between tests."""
    reset_timetrace_memo()
    configure_trace_cache(None)
    yield
    reset_timetrace_memo()
    configure_trace_cache(None)


def small_workload(tag="w", num_procs=NUM_PROCS, extra_compute=0):
    """A tiny two-phase workload with sharing, enough to speculate on."""
    b = WorkloadBuilder(tag, num_procs)
    block = 1 << 24  # home node 1
    other = 2 << 24
    with b.phase("produce"):
        b.write(0, block)
        b.compute(0, 10 + extra_compute)
        b.write(1, other)
    with b.phase("consume", racy_reads=True):
        for p in range(num_procs):
            b.read(p, block)
            b.compute(p, 5)
        b.read(0, other)
    with b.phase("again"):
        b.write(2, block)
        for p in range(num_procs):
            b.read(p, block)
    return b.finish()


def machine_for(workload, mode=MachineMode.SWI, engine="compiled", **kwargs):
    return Machine(
        workload,
        config=kwargs.pop("config", SystemConfig(num_nodes=workload.num_procs)),
        mode=mode,
        engine=engine,
        **kwargs,
    )


def run_reference(workload, mode=MachineMode.SWI):
    return machine_for(workload, mode=mode, engine="reference").run()


class TestRecordReplay:
    def test_record_then_memo_replay_identical(self):
        workload = small_workload()
        reference = run_reference(workload)
        recorded = machine_for(workload).run()  # miss: records live
        replayed = machine_for(workload).run()  # hit: replays from memo
        assert dataclasses.asdict(recorded) == dataclasses.asdict(reference)
        assert dataclasses.asdict(replayed) == dataclasses.asdict(reference)

    def test_replay_reconstructs_native_types(self):
        workload = small_workload()
        machine_for(workload).run()
        result = machine_for(workload).run()  # memo replay
        assert type(result.cycles) is int
        assert type(result.stall_cycles) is int
        assert all(type(v) is int for v in result.counters.values())
        assert isinstance(result.mode, MachineMode)

    def test_payload_roundtrip_bit_exact(self):
        workload = small_workload()
        machine = machine_for(workload)
        result = machine.run()
        point = timetrace_point(machine)
        from repro.sim.timetrace.cache import _memo

        trace = _memo[point.key]
        # JSON round trip mirrors the on-disk cache path exactly.
        decoded = TimingTrace.from_payload(
            json.loads(json.dumps(trace.as_payload()))
        )
        assert decoded.content_hash() == trace.content_hash()
        assert dataclasses.asdict(decoded.replay()) == dataclasses.asdict(result)

    def test_trace_counts_macro_steps_and_events(self):
        workload = small_workload()
        machine = machine_for(workload)
        machine.run()
        from repro.sim.timetrace.cache import _memo

        trace = _memo[timetrace_point(machine).key]
        # 3 phases -> 3 barrier firings, plus the final step to finish.
        assert len(trace) == 4
        assert trace.events == machine.events_processed > 0


class TestCodecValidation:
    def payload(self):
        workload = small_workload()
        machine = machine_for(workload)
        machine.run()
        from repro.sim.timetrace.cache import _memo

        return _memo[timetrace_point(machine).key].as_payload()

    def test_wrong_schema_rejected(self):
        payload = self.payload()
        payload["schema"] = 999
        with pytest.raises(ValueError):
            TimingTrace.from_payload(payload)

    def test_unknown_mode_rejected(self):
        payload = self.payload()
        payload["mode"] = "Bogus-DSM"
        with pytest.raises(ValueError):
            TimingTrace.from_payload(payload)

    def test_missing_column_rejected(self):
        payload = self.payload()
        del payload["step_cycles"]
        with pytest.raises(KeyError):
            TimingTrace.from_payload(payload)

    def test_shape_mismatch_rejected(self):
        payload = self.payload()
        payload["stall"] = [row[:-1] for row in payload["stall"]]
        with pytest.raises(ValueError):
            TimingTrace.from_payload(payload)

    def test_out_of_range_counter_code_rejected(self):
        payload = self.payload()
        if not payload["counter_codes"]:
            pytest.skip("workload produced no counters")
        payload["counter_codes"][0] = len(payload["counter_names"])
        with pytest.raises(ValueError):
            TimingTrace.from_payload(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(TypeError):
            TimingTrace.from_payload([1, 2, 3])


class TestCacheAddressing:
    """Every parameter that can change the run must change the address."""

    def test_mode_changes_key(self):
        workload = small_workload()
        swi = timetrace_point(machine_for(workload, mode=MachineMode.SWI))
        base = timetrace_point(machine_for(workload, mode=MachineMode.BASE))
        assert swi.key != base.key

    def test_spec_depth_changes_key(self):
        workload = small_workload()
        d1 = timetrace_point(machine_for(workload, spec_depth=1))
        d2 = timetrace_point(machine_for(workload, spec_depth=2))
        assert d1.key != d2.key

    def test_config_field_changes_key(self):
        workload = small_workload()
        slow = SystemConfig(num_nodes=NUM_PROCS, network_cycles=160)
        a = timetrace_point(machine_for(workload))
        b = timetrace_point(machine_for(workload, config=slow))
        assert a.key != b.key

    def test_workload_content_changes_key(self):
        a = timetrace_point(machine_for(small_workload()))
        b = timetrace_point(machine_for(small_workload(extra_compute=1)))
        assert a.key != b.key

    def test_workload_fingerprint_stable_across_builds(self):
        assert workload_fingerprint(small_workload()) == workload_fingerprint(
            small_workload()
        )

    def test_trace_key_overrides_content_fingerprint(self):
        workload = small_workload()
        key = {"app": "em3d", "num_procs": NUM_PROCS, "iterations": 2, "seed": 1}
        named = timetrace_point(machine_for(workload, trace_key=key))
        assert named.as_dict()["app"] == "em3d"
        assert "workload" not in named.as_dict()
        # Any app-parameter change re-addresses the trace.
        for field, value in (
            ("app", "moldyn"),
            ("num_procs", NUM_PROCS + 1),
            ("iterations", 3),
            ("seed", 2),
        ):
            changed = timetrace_point(
                machine_for(workload, trace_key={**key, field: value})
            )
            assert changed.key != named.key, field


class TestDiskCache:
    def test_miss_records_then_disk_hit_replays(self, tmp_path):
        configure_trace_cache(tmp_path)
        workload = small_workload()
        reference = run_reference(workload)
        recorded = machine_for(workload).run()
        stored = list(tmp_path.glob("timetrace/*.json"))
        assert len(stored) == 1
        reset_timetrace_memo()  # force the disk path, not the memo
        replayed = machine_for(workload).run()
        assert dataclasses.asdict(recorded) == dataclasses.asdict(reference)
        assert dataclasses.asdict(replayed) == dataclasses.asdict(reference)

    def test_corrupt_entry_falls_back_to_live_run(self, tmp_path):
        configure_trace_cache(tmp_path)
        workload = small_workload()
        expected = machine_for(workload).run()
        [entry] = tmp_path.glob("timetrace/*.json")
        entry.write_text("{not json")
        reset_timetrace_memo()
        result = machine_for(workload).run()  # re-records live
        assert dataclasses.asdict(result) == dataclasses.asdict(expected)
        # ... and the re-record repaired the entry.
        json.loads(entry.read_text())

    def test_stale_schema_misses(self, tmp_path):
        configure_trace_cache(tmp_path)
        workload = small_workload()
        expected = machine_for(workload).run()
        [entry] = tmp_path.glob("timetrace/*.json")
        body = json.loads(entry.read_text())
        body["result"]["schema"] = 0  # a payload an older layout wrote
        entry.write_text(json.dumps(body))
        reset_timetrace_memo()
        result = machine_for(workload).run()
        assert dataclasses.asdict(result) == dataclasses.asdict(expected)

    def test_fingerprint_separates_trace_families(self, tmp_path):
        configure_trace_cache(tmp_path)
        store = timetrace_store()
        assert store.fingerprint["timetrace_schema"] == 1
        assert "trace_schema" not in store.fingerprint

    def test_no_cache_dir_still_replays_via_memo(self):
        workload = small_workload()
        first = machine_for(workload).run()
        machine = machine_for(workload)
        second = machine.run()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert machine.events_processed == 0  # replay dispatched nothing


class TestLiveSemanticsPreserved:
    def test_bounded_run_bypasses_cache(self):
        workload = small_workload()
        machine_for(workload).run()  # populate the memo
        with pytest.raises(EventBudgetExhausted):
            machine_for(workload).run(max_events=3)

    def test_budget_exhaustion_matches_fast_engine(self):
        workload = small_workload()
        with pytest.raises(EventBudgetExhausted):
            machine_for(workload, engine="fast").run(max_events=3)
        with pytest.raises(EventBudgetExhausted):
            machine_for(workload).run(max_events=3)

    def deadlocked_workload(self):
        """Two processors acquire the same lock; one never releases."""
        b = WorkloadBuilder("deadlock", NUM_PROCS)
        with b.phase("stuck"):
            b.lock(0, 7)  # held forever
            b.lock(1, 7)
            b.unlock(1, 7)
        return b.finish()

    def test_deadlock_raises_and_stores_nothing(self, tmp_path):
        configure_trace_cache(tmp_path)
        workload = self.deadlocked_workload()
        with pytest.raises(RuntimeError, match="deadlock"):
            machine_for(workload).run()
        assert not list(tmp_path.glob("timetrace/*.json"))
        from repro.sim.timetrace.cache import _memo

        assert not _memo

    def test_memo_bounded(self):
        from repro.sim.timetrace import cache as ttcache

        for i in range(ttcache._MEMO_LIMIT + 5):
            ttcache._memoize(f"key-{i}", object())
        assert len(ttcache._memo) == ttcache._MEMO_LIMIT
        assert "key-0" not in ttcache._memo  # oldest evicted first
