"""Tests for the discrete-event queue."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import EventQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(30, lambda: log.append("c"))
        queue.schedule(10, lambda: log.append("a"))
        queue.schedule(20, lambda: log.append("b"))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        log = []
        for tag in "abc":
            queue.schedule(5, lambda t=tag: log.append(t))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(7, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [7]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        log = []

        def first():
            queue.schedule(5, lambda: log.append(queue.now))

        queue.schedule(10, first)
        queue.run()
        assert log == [15]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-1, lambda: None)

    def test_at_before_now_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: queue.at(5, lambda: None))
        with pytest.raises(ValueError):
            queue.run()

    def test_max_events_bound(self):
        queue = EventQueue()
        for _ in range(10):
            queue.schedule(1, lambda: None)
        assert queue.run(max_events=4) == 4
        assert len(queue) == 6

    def test_max_events_zero_is_a_noop(self):
        """Regression: a zero budget must not pop (or run) anything."""
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append("boom"))
        assert queue.run(max_events=0) == 0
        assert fired == []
        assert len(queue) == 1
        assert queue.now == 0
        # the queue is still fully drainable afterwards
        assert queue.run() == 1
        assert fired == ["boom"]

    def test_negative_max_events_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.run(max_events=-1)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(30, lambda: None)
        queue.schedule(10, lambda: None)
        assert queue.peek_time() == 10
        assert len(queue) == 2  # peeking does not pop
        queue.run(max_events=1)
        assert queue.peek_time() == 30
        queue.run()
        assert queue.peek_time() is None

    @given(st.lists(st.integers(0, 1000), max_size=50))
    def test_monotone_time(self, delays):
        queue = EventQueue()
        times = []
        for delay in delays:
            queue.schedule(delay, lambda: times.append(queue.now))
        queue.run()
        assert times == sorted(times)
