"""End-to-end tests for the timing simulator."""

import pytest

from repro.apps.base import WorkloadBuilder
from repro.common.config import SystemConfig
from repro.sim.address import AddressSpace
from repro.sim.machine import EventBudgetExhausted, Machine, MachineMode


def two_node_config():
    return SystemConfig(num_nodes=2)


def simple_workload(num_procs=2, iterations=1):
    """P0 writes a block; P1 reads it."""
    builder = WorkloadBuilder("simple", num_procs)
    space = AddressSpace(num_procs)
    block = space.alloc_one(0)
    for _ in range(iterations):
        with builder.phase("produce"):
            builder.write(0, block)
        with builder.phase("consume"):
            builder.read(1, block)
    return builder.finish(), block


class TestLatencies:
    def test_local_write_costs_one_memory_access(self):
        workload, _ = simple_workload()
        machine = Machine(workload, config=two_node_config())
        result = machine.run()
        # P0's only stall is its local write: directory access only.
        p0 = machine.node(0).processor
        assert p0.stall_cycles == machine.config.local_access_cycles

    def test_remote_clean_read_costs_418(self):
        builder = WorkloadBuilder("r", 2)
        space = AddressSpace(2)
        block = space.alloc_one(0)
        with builder.phase("read"):
            builder.read(1, block)
        machine = Machine(builder.finish(), config=two_node_config())
        machine.run()
        p1 = machine.node(1).processor
        assert p1.stall_cycles == machine.config.round_trip_cycles == 418

    def test_three_hop_read_costs_more(self):
        workload, _ = simple_workload()
        machine = Machine(workload, config=two_node_config())
        machine.run()
        p1 = machine.node(1).processor
        # Read of a dirty remote block: recall + writeback + reply.
        assert p1.stall_cycles > machine.config.round_trip_cycles

    def test_cache_hit_costs_one_cycle(self):
        builder = WorkloadBuilder("h", 2)
        space = AddressSpace(2)
        block = space.alloc_one(0)
        with builder.phase("a"):
            builder.read(0, block)
            builder.read(0, block)  # hit
        machine = Machine(builder.finish(), config=two_node_config())
        result = machine.run()
        assert result.counters.get("cache_hits") == 1


class TestProtocolIntegration:
    def test_upgrade_vs_write_kinds(self):
        builder = WorkloadBuilder("u", 2)
        space = AddressSpace(2)
        block = space.alloc_one(0)
        with builder.phase("a"):
            builder.read(1, block)
        with builder.phase("b"):
            builder.write(1, block)  # sharer writes -> upgrade
        with builder.phase("c"):
            builder.write(0, block)  # non-holder writes -> write
        result = Machine(builder.finish(), config=two_node_config()).run()
        assert result.counters["req_read"] == 1
        assert result.counters["req_upgrade"] == 1
        assert result.counters["req_write"] == 1

    def test_write_waits_for_all_acks(self):
        config = SystemConfig(num_nodes=4)
        builder = WorkloadBuilder("acks", 4)
        space = AddressSpace(4)
        block = space.alloc_one(0)
        with builder.phase("readers"):
            for reader in (1, 2, 3):
                builder.read(reader, block)
        with builder.phase("writer"):
            builder.write(0, block)
        machine = Machine(builder.finish(), config=config)
        machine.run()
        p0 = machine.node(0).processor
        # Local write but three remote invalidation round trips.
        assert p0.stall_cycles > 2 * config.network_cycles

    def test_mismatched_workload_rejected(self):
        workload, _ = simple_workload(num_procs=2)
        with pytest.raises(ValueError, match="16 nodes"):
            Machine(workload, config=SystemConfig(num_nodes=16))


class TestRunResult:
    def test_buckets_partition_total_time(self):
        workload, _ = simple_workload(iterations=3)
        result = Machine(workload, config=two_node_config()).run()
        assert (
            result.compute_cycles + result.stall_cycles + result.sync_cycles
            == result.cycles * 2
        )

    def test_request_fraction_in_unit_range(self):
        workload, _ = simple_workload(iterations=3)
        result = Machine(workload, config=two_node_config()).run()
        assert 0.0 <= result.request_fraction <= 1.0

    def test_deterministic_execution(self):
        workload, _ = simple_workload(iterations=5)
        a = Machine(workload, config=two_node_config()).run()
        b = Machine(workload, config=two_node_config()).run()
        assert a.cycles == b.cycles
        assert a.counters == b.counters

    def test_base_mode_collects_no_speculation(self):
        workload, _ = simple_workload()
        result = Machine(workload, config=two_node_config()).run()
        assert result.speculation.fr_sent == 0
        assert result.speculation.wi_sent == 0

    def test_budget_exhaustion_detected(self):
        """Regression: an exhausted event budget is not a deadlock.

        A bounded run that stops with events still pending used to
        raise the misleading "stuck processors (deadlock...)" error;
        it must report budget exhaustion distinctly.
        """
        workload, _ = simple_workload(iterations=10)
        machine = Machine(workload, config=two_node_config())
        with pytest.raises(EventBudgetExhausted, match="budget exhausted"):
            machine.run(max_events=3)

    def test_budget_exhaustion_error_names_unfinished_processors(self):
        workload, _ = simple_workload(iterations=10)
        machine = Machine(workload, config=two_node_config())
        with pytest.raises(EventBudgetExhausted, match=r"\[0, 1\].*max_events"):
            machine.run(max_events=1)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_budget_exhaustion_per_engine(self, engine):
        workload, _ = simple_workload(iterations=10)
        machine = Machine(workload, config=two_node_config(), engine=engine)
        with pytest.raises(EventBudgetExhausted):
            machine.run(max_events=3)
        assert len(machine.events) > 0  # events really were pending

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_genuine_deadlock_still_reported_as_stuck(self, engine):
        """An empty queue with unfinished processors is a deadlock.

        P0 takes the lock and never releases it; P1 blocks on the lock
        forever while P0 waits at the barrier for P1.  The queue drains
        with both processors unfinished — a deadlock, not a budget
        problem.
        """
        builder = WorkloadBuilder("deadlock", 2)
        with builder.phase("locked"):
            builder.lock(0, 0)
            builder.lock(1, 0)
        workload = builder.finish()
        machine = Machine(workload, config=two_node_config(), engine=engine)
        with pytest.raises(RuntimeError, match="stuck processors.*deadlock"):
            machine.run()

    def test_unknown_engine_rejected(self):
        workload, _ = simple_workload()
        with pytest.raises(ValueError, match="unknown timing engine"):
            Machine(workload, config=two_node_config(), engine="warp")


class TestRequestCounters:
    def test_distinct_blocks_counted_per_kind(self):
        builder = WorkloadBuilder("blocks", 2)
        space = AddressSpace(2)
        blocks = space.alloc(0, 3)
        with builder.phase("a"):
            for block in blocks:
                builder.read(1, block)
        with builder.phase("b"):
            for block in blocks:
                builder.read(0, block)
        result = Machine(builder.finish(), config=two_node_config()).run()
        assert result.counters["req_read"] == 6
        assert result.counters["req_read_blocks"] == 3

    def test_single_block_ping_pong_counts_one_block(self):
        builder = WorkloadBuilder("pingpong", 2)
        space = AddressSpace(2)
        block = space.alloc_one(0)
        for _ in range(4):
            with builder.phase("w0"):
                builder.write(0, block)
            with builder.phase("w1"):
                builder.write(1, block)
        result = Machine(builder.finish(), config=two_node_config()).run()
        writes = result.counters["req_write"] + result.counters.get(
            "req_upgrade", 0
        )
        assert writes == 8
        blocks = result.counters.get("req_write_blocks", 0) + result.counters.get(
            "req_upgrade_blocks", 0
        )
        assert 1 <= blocks <= 2  # one physical block, counted per kind
