"""Tests for the MIG-DSM migratory-write extension.

The paper identifies migratory sharing as "trigger-ready" for write
speculation but leaves executing it to future work (Section 4.1).
MIG-DSM grants a read exclusively when the predictor expects the same
processor's upgrade to follow, executing the upgrade speculatively.
"""

import pytest

from repro.apps.base import WorkloadBuilder
from repro.common.config import SystemConfig
from repro.sim.address import AddressSpace
from repro.sim.machine import Machine, MachineMode

CONFIG = SystemConfig(num_nodes=4)


def migratory_workload(iterations=10):
    builder = WorkloadBuilder("mig", 4)
    space = AddressSpace(4)
    blocks = space.alloc(0, 4)
    for _ in range(iterations):
        for visitor in (0, 1, 2):
            with builder.phase(f"visit-{visitor}"):
                for block in blocks:
                    builder.read(visitor, block)
                    builder.write(visitor, block)
    return builder.finish()


def producer_consumer_workload(iterations=10):
    builder = WorkloadBuilder("pc", 4)
    space = AddressSpace(4)
    blocks = space.alloc(0, 4)
    for _ in range(iterations):
        with builder.phase("produce"):
            for block in blocks:
                builder.write(0, block)
        with builder.phase("consume"):
            for block in blocks:
                builder.read(1, block)
                builder.read(2, block)
    return builder.finish()


def run(workload, mode):
    return Machine(workload, config=CONFIG, mode=mode).run()


class TestMigratoryGrants:
    def test_migratory_pattern_earns_exclusive_grants(self):
        result = run(migratory_workload(), MachineMode.MIG)
        assert result.speculation.migratory_grants > 0

    def test_grants_verify_as_saved_upgrades(self):
        result = run(migratory_workload(), MachineMode.MIG)
        spec = result.speculation
        assert spec.migratory_upgrades_saved > 0
        # The static rotation is perfectly predictable: grants rarely
        # get demoted.
        assert spec.migratory_demotions <= spec.migratory_upgrades_saved / 4

    def test_mig_eliminates_upgrade_requests(self):
        workload = migratory_workload()
        swi = run(workload, MachineMode.SWI)
        mig = run(workload, MachineMode.MIG)
        assert mig.write_requests < swi.write_requests

    def test_mig_not_slower_than_swi_on_migratory(self):
        workload = migratory_workload()
        swi = run(workload, MachineMode.SWI)
        mig = run(workload, MachineMode.MIG)
        assert mig.cycles <= swi.cycles

    def test_producer_consumer_triggers_no_grants(self):
        # Two-reader sequences are not migratory: reads stay read-only.
        result = run(producer_consumer_workload(), MachineMode.MIG)
        assert result.speculation.migratory_grants == 0

    def test_other_modes_never_grant(self):
        workload = migratory_workload()
        for mode in (MachineMode.BASE, MachineMode.FR, MachineMode.SWI):
            result = run(workload, mode)
            assert result.speculation.migratory_grants == 0

    def test_mig_runs_are_deterministic(self):
        workload = migratory_workload()
        a = run(workload, MachineMode.MIG)
        b = run(workload, MachineMode.MIG)
        assert a.cycles == b.cycles
        assert a.speculation == b.speculation


class TestMigratoryOnPaperApps:
    @pytest.mark.parametrize("app", ["moldyn", "unstructured"])
    def test_migratory_apps_benefit(self, app):
        from repro.apps import make_app

        workload = make_app(app, iterations=6).build()
        swi = Machine(workload, mode=MachineMode.SWI).run()
        mig = Machine(workload, mode=MachineMode.MIG).run()
        assert mig.speculation.migratory_grants > 0
        assert mig.write_requests <= swi.write_requests

    def test_stencil_app_is_unharmed(self):
        from repro.apps import make_app

        workload = make_app("tomcatv", iterations=6).build()
        swi = Machine(workload, mode=MachineMode.SWI).run()
        mig = Machine(workload, mode=MachineMode.MIG).run()
        # tomcatv's two-reader vectors are not migratory; MIG must
        # behave like SWI within a small tolerance.
        assert mig.cycles == pytest.approx(swi.cycles, rel=0.1)
