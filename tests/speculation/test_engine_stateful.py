"""Stateful property test for the speculation engine's bookkeeping.

A Hypothesis :class:`RuleBasedStateMachine` drives one
:class:`~repro.speculation.engine.SpeculationEngine` through arbitrary
interleavings of the calls the home directory makes — request
observation, SWI recalls, speculative-send recording, reference-bit
feedback, and the migratory-grant lifecycle — mirroring every step
against a trivially correct model.  After every rule the ledger
invariants Table 5 depends on must hold:

* ``fr_sent == fr_used + fr_missed + fr_raced + fr_outstanding`` and
  the same for SWI — every speculative copy is eventually accounted
  for exactly once (``race_dropped`` is the sum of both origins' raced
  copies);
* ``_pending_swi`` and ``_pending_migratory`` never leak resolved
  entries: each key present is exactly one awaiting-verdict entry the
  model also holds;
* ``wi_sent`` / ``wi_premature`` and the migratory counters track the
  model's.

The machine mirrors the home's contract: a speculative send is only
recorded for a (block, target) without an outstanding copy — the
directory's ``grant_speculative_copy`` enforces exactly that gate in
the real system.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.types import MessageKind
from repro.speculation.engine import SpeculationEngine
from tests.strategies import STANDARD_SETTINGS

pytestmark = pytest.mark.property

#: Small universes keep collisions (re-reads, re-grants, same-block
#: recalls) frequent instead of vanishingly rare.
BLOCKS = st.integers(min_value=0, max_value=3)
NODES = st.integers(min_value=0, max_value=3)
WRITE_KINDS = st.sampled_from([MessageKind.WRITE, MessageKind.UPGRADE])


class EngineMachine(RuleBasedStateMachine):
    fast_path = True

    def __init__(self) -> None:
        super().__init__()
        self.engine = SpeculationEngine(
            home=0,
            swi_enabled=True,
            migratory_enabled=True,
            fast_path=self.fast_path,
        )
        # The model ledger.
        self.outstanding: dict[tuple[int, int], str] = {}
        self.sent = {"fr": 0, "swi": 0}
        self.used = {"fr": 0, "swi": 0}
        self.missed = {"fr": 0, "swi": 0}
        self.raced = {"fr": 0, "swi": 0}
        self.pending_swi: dict[int, int] = {}
        self.pending_mig: dict[int, int] = {}
        self.wi_sent = 0
        self.wi_premature = 0
        self.mig_grants = 0
        self.mig_saves = 0
        self.mig_demotions = 0

    # ------------------------------------------------------------------
    # model helpers
    # ------------------------------------------------------------------
    def _model_resolve_swi(self, block: int, requester: int) -> None:
        writer = self.pending_swi.pop(block, None)
        if writer is not None and requester == writer:
            self.wi_premature += 1

    def _model_record(self, block: int, target: int, origin: str) -> None:
        """Mirror the home: only send where no copy is outstanding."""
        if (block, target) in self.outstanding:
            return
        self.engine.record_spec_sent(block, target, origin)
        self.outstanding[(block, target)] = origin
        self.sent[origin] += 1

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(block=BLOCKS, reader=NODES)
    def observe_read(self, block: int, reader: int) -> None:
        self._model_resolve_swi(block, reader)
        targets = self.engine.observe_read(block, reader)
        assert reader not in targets  # never pushes to the requester
        for target in sorted(targets):
            self._model_record(block, target, "fr")

    @rule(block=BLOCKS, kind=WRITE_KINDS, writer=NODES)
    def observe_write(self, block: int, kind, writer: int) -> None:
        self._model_resolve_swi(block, writer)
        self.engine.observe_write(block, kind, writer)

    @rule(block=BLOCKS, writer=NODES)
    def swi_recall_completed(self, block: int, writer: int) -> None:
        targets = self.engine.swi_invalidated(block, writer)
        self.wi_sent += 1
        self.pending_swi[block] = writer
        for target in sorted(targets):
            self._model_record(block, target, "swi")

    @rule(block=BLOCKS, node=NODES, used=st.booleans(), raced=st.booleans())
    def feedback(self, block: int, node: int, used: bool, raced: bool) -> None:
        origin = self.outstanding.pop((block, node), None)
        self.engine.spec_feedback(block, node, used=used, raced=raced)
        if origin is None:
            return  # no outstanding copy: the engine ignores the verdict
        if raced:
            self.raced[origin] += 1
        elif used:
            self.used[origin] += 1
            # A consumed copy confirms any pending SWI recall.
            self.pending_swi.pop(block, None)
        else:
            self.missed[origin] += 1

    @rule(block=BLOCKS, reader=NODES)
    def migratory_grant(self, block: int, reader: int) -> None:
        self.engine.record_migratory_grant(block, reader)
        self.pending_mig[block] = reader
        self.mig_grants += 1

    @rule(block=BLOCKS, writer=NODES)
    def migratory_written(self, block: int, writer: int) -> None:
        expected = self.pending_mig.get(block)
        self.engine.migratory_written(block, writer)
        if expected == writer:
            del self.pending_mig[block]
            self.mig_saves += 1
            # The engine observes the speculatively executed upgrade
            # itself, which resolves any pending SWI verdict.
            self._model_resolve_swi(block, writer)

    @rule(block=BLOCKS, owner=NODES)
    def migratory_recalled(self, block: int, owner: int) -> None:
        expected = self.pending_mig.get(block)
        self.engine.migratory_recalled(block, owner)
        if expected == owner:
            del self.pending_mig[block]
            self.mig_demotions += 1

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def ledger_balances(self) -> None:
        stats = self.engine.stats
        context = self.engine._spec_context
        for origin, sent_stat, used_stat, missed_stat in (
            ("fr", stats.fr_sent, stats.fr_used, stats.fr_missed),
            ("swi", stats.swi_sent, stats.swi_used, stats.swi_missed),
        ):
            outstanding = sum(
                1 for ctx in context.values() if ctx[0] == origin
            )
            assert sent_stat == self.sent[origin]
            assert used_stat == self.used[origin]
            assert missed_stat == self.missed[origin]
            # The issue's conservation law: every sent copy is used,
            # missed, race-dropped, or still outstanding.
            assert sent_stat == (
                used_stat + missed_stat + self.raced[origin] + outstanding
            )
        assert stats.race_dropped == self.raced["fr"] + self.raced["swi"]

    @invariant()
    def outstanding_context_matches_model(self) -> None:
        context = self.engine._spec_context
        assert set(context) == set(self.outstanding)
        for key, (origin, _history, _predicted) in context.items():
            assert origin == self.outstanding[key]

    @invariant()
    def pending_swi_never_leaks(self) -> None:
        pending = self.engine._pending_swi
        assert set(pending) == set(self.pending_swi)
        for block, entry in pending.items():
            assert entry.writer == self.pending_swi[block]
        assert self.engine.stats.wi_sent == self.wi_sent
        assert self.engine.stats.wi_premature == self.wi_premature

    @invariant()
    def pending_migratory_never_leaks(self) -> None:
        assert dict(self.engine._pending_migratory) == self.pending_mig
        stats = self.engine.stats
        assert stats.migratory_grants == self.mig_grants
        assert stats.migratory_upgrades_saved == self.mig_saves
        assert stats.migratory_demotions == self.mig_demotions


class FastPathEngineMachine(EngineMachine):
    fast_path = True


class ReferencePathEngineMachine(EngineMachine):
    fast_path = False


FastPathEngineMachine.TestCase.settings = STANDARD_SETTINGS
ReferencePathEngineMachine.TestCase.settings = STANDARD_SETTINGS
TestSpeculationEngineStatefulFast = FastPathEngineMachine.TestCase
TestSpeculationEngineStatefulReference = ReferencePathEngineMachine.TestCase
