"""Integration tests: FR-DSM and SWI-DSM behaviour end to end."""

import pytest

from repro.apps.base import WorkloadBuilder
from repro.common.config import SystemConfig
from repro.sim.address import AddressSpace
from repro.sim.machine import Machine, MachineMode


def producer_consumer_workload(num_procs=4, iterations=8, readers=(1, 2)):
    """P0 rewrites blocks each iteration; consumers read them after.

    Consumers are staggered in time so a First-Read push can land
    before the next consumer's own request launches (as in the real
    applications, where consumers reach a block at different points of
    their computation).
    """
    builder = WorkloadBuilder("pc", num_procs)
    space = AddressSpace(num_procs)
    blocks = space.alloc(0, 4)
    for _ in range(iterations):
        with builder.phase("produce"):
            for block in blocks:
                builder.write(0, block)
        with builder.phase("consume"):
            for index, reader in enumerate(readers):
                builder.compute(reader, 1 + index * 2500)
                for block in blocks:
                    builder.read(reader, block)
    return builder.finish()


def migratory_workload(num_procs=4, iterations=8):
    """Blocks visited read+write by a fixed processor rotation."""
    builder = WorkloadBuilder("mig", num_procs)
    space = AddressSpace(num_procs)
    blocks = space.alloc(0, 4)
    for _ in range(iterations):
        for visitor in (0, 1, 2):
            with builder.phase(f"visit-{visitor}"):
                for block in blocks:
                    builder.read(visitor, block)
                    builder.write(visitor, block)
    return builder.finish()


CONFIG = SystemConfig(num_nodes=4)


def run(workload, mode):
    return Machine(workload, config=CONFIG, mode=mode).run()


class TestFrDsm:
    def test_fr_speculates_second_reader(self):
        workload = producer_consumer_workload()
        result = run(workload, MachineMode.FR)
        assert result.speculation.fr_sent > 0
        assert result.speculation.fr_used > 0

    def test_fr_reduces_execution_time(self):
        workload = producer_consumer_workload()
        base = run(workload, MachineMode.BASE)
        fr = run(workload, MachineMode.FR)
        assert fr.cycles < base.cycles

    def test_fr_reduces_read_requests(self):
        workload = producer_consumer_workload()
        base = run(workload, MachineMode.BASE)
        fr = run(workload, MachineMode.FR)
        assert fr.read_requests < base.read_requests

    def test_fr_cannot_help_single_reader(self):
        workload = producer_consumer_workload(readers=(1,))
        fr = run(workload, MachineMode.FR)
        assert fr.speculation.fr_used == 0

    def test_fr_cannot_help_migratory(self):
        workload = migratory_workload()
        fr = run(workload, MachineMode.FR)
        # Migratory read runs hold a single reader: nothing to forward
        # beyond the reader that triggered; confidence gating silences
        # the rotating singleton predictions.
        assert fr.speculation.fr_used <= 2


class TestSwiDsm:
    def test_swi_invalidates_producer_writes(self):
        workload = producer_consumer_workload()
        swi = run(workload, MachineMode.SWI)
        assert swi.speculation.wi_sent > 0
        assert swi.speculation.wi_premature == 0

    def test_swi_covers_all_consumers(self):
        workload = producer_consumer_workload()
        swi = run(workload, MachineMode.SWI)
        fr = run(workload, MachineMode.FR)
        # SWI pushes to every consumer; FR only to the non-first ones.
        assert swi.speculation.swi_used > fr.speculation.fr_used

    def test_swi_waits_less_than_fr_on_producer_consumer(self):
        workload = producer_consumer_workload()
        fr = run(workload, MachineMode.FR)
        swi = run(workload, MachineMode.SWI)
        # SWI additionally covers the *first* consumer of each sequence,
        # so the machine spends less time waiting on requests (the
        # consumer stagger hides the difference from wall-clock cycles
        # in this tiny workload).
        assert swi.stall_cycles < fr.stall_cycles

    def test_swi_chains_migratory_visits(self):
        workload = migratory_workload()
        base = run(workload, MachineMode.BASE)
        swi = run(workload, MachineMode.SWI)
        assert swi.speculation.wi_sent > 0
        assert swi.cycles < base.cycles

    def test_premature_invalidation_gets_suppressed(self):
        # Producer rewrites each block right after SWI would recall it.
        builder = WorkloadBuilder("premature", 4)
        space = AddressSpace(4)
        blocks = space.alloc(0, 4)
        for _ in range(8):
            with builder.phase("produce"):
                for block in blocks:
                    builder.write(0, block)
                for block in blocks:
                    builder.write(0, block)  # second sweep
            with builder.phase("consume"):
                for block in blocks:
                    builder.read(1, block)
        swi = run(builder.finish(), MachineMode.SWI)
        # One premature round per block, then suppression holds.
        assert 0 < swi.speculation.wi_premature <= len(blocks) * 2

    def test_correctness_not_affected_by_speculation(self):
        workload = producer_consumer_workload()
        base = run(workload, MachineMode.BASE)
        swi = run(workload, MachineMode.SWI)
        # Write traffic (the application's stores) is identical; only
        # read requests are absorbed by speculative copies.
        assert swi.write_requests == base.write_requests


class TestSpeculationAccounting:
    def test_spec_sends_equal_used_plus_missed_plus_raced(self):
        workload = producer_consumer_workload()
        swi = run(workload, MachineMode.SWI)
        s = swi.speculation
        assert s.fr_sent + s.swi_sent == (
            s.fr_used + s.fr_missed + s.swi_used + s.swi_missed + s.race_dropped
        )

    @pytest.mark.parametrize("mode", [MachineMode.FR, MachineMode.SWI])
    def test_deterministic_speculative_runs(self, mode):
        workload = producer_consumer_workload()
        a = run(workload, mode)
        b = run(workload, mode)
        assert a.cycles == b.cycles
        assert a.speculation == b.speculation
