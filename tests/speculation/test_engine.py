"""Unit tests for the FR/SWI speculation engine."""

from repro.common.types import MessageKind
from repro.speculation.engine import SpeculationEngine

BLOCK = 0x900
W = MessageKind.WRITE
U = MessageKind.UPGRADE


def train_producer_consumer(engine, rounds=3, writer=0, readers=(1, 2)):
    for _ in range(rounds):
        engine.observe_write(BLOCK, W, writer)
        for reader in readers:
            engine.observe_read(BLOCK, reader)


class TestFirstRead:
    def test_first_read_triggers_remaining_vector(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        targets = engine.observe_read(BLOCK, 1)
        assert targets == frozenset({2})

    def test_later_reads_do_not_retrigger(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        engine.observe_read(BLOCK, 1)
        assert engine.observe_read(BLOCK, 2) == frozenset()

    def test_untrained_block_triggers_nothing(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        assert engine.observe_read(BLOCK, 1) == frozenset()


class TestSwi:
    def test_swi_disabled_never_allows(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        assert not engine.swi_allowed(BLOCK)

    def test_swi_allowed_when_enabled_and_unsuppressed(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        assert engine.swi_allowed(BLOCK)

    def test_swi_invalidated_returns_predicted_readers(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        targets = engine.swi_invalidated(BLOCK, writer=0)
        assert targets == frozenset({1, 2})
        assert engine.stats.wi_sent == 1

    def test_premature_verdict_suppresses(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        engine.swi_invalidated(BLOCK, writer=0)
        # The producer comes straight back: premature.
        engine.observe_read(BLOCK, 0)
        assert engine.stats.wi_premature == 1
        assert not engine.swi_allowed(BLOCK)

    def test_foreign_request_confirms_swi(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        engine.swi_invalidated(BLOCK, writer=0)
        engine.observe_read(BLOCK, 1)  # a consumer arrives first
        assert engine.stats.wi_premature == 0

    def test_spec_use_confirms_swi(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        engine.swi_invalidated(BLOCK, writer=0)
        engine.record_spec_sent(BLOCK, 1, origin="swi")
        engine.spec_feedback(BLOCK, 1, used=True)
        # Later producer write is the *next* interval, not premature.
        engine.observe_write(BLOCK, W, 0)
        assert engine.stats.wi_premature == 0


class TestVerification:
    def test_used_copy_counts_by_origin(self):
        engine = SpeculationEngine(home=0, swi_enabled=True)
        train_producer_consumer(engine)
        engine.record_spec_sent(BLOCK, 1, origin="fr")
        engine.record_spec_sent(BLOCK, 2, origin="swi")
        engine.spec_feedback(BLOCK, 1, used=True)
        engine.spec_feedback(BLOCK, 2, used=True)
        assert engine.stats.fr_used == 1
        assert engine.stats.swi_used == 1

    def test_unused_copy_counts_missed_and_removes_entry(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        history = engine.predictor.current_history(BLOCK)
        engine.record_spec_sent(BLOCK, 2, origin="fr")
        assert engine.predictor.predicted_next(BLOCK) is not None
        engine.spec_feedback(BLOCK, 2, used=False)
        assert engine.stats.fr_missed == 1
        assert engine.predictor._patterns[BLOCK].get(history) is None

    def test_race_drop_is_not_a_miss(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        engine.record_spec_sent(BLOCK, 2, origin="fr")
        engine.spec_feedback(BLOCK, 2, used=False, raced=True)
        assert engine.stats.race_dropped == 1
        assert engine.stats.fr_missed == 0

    def test_unknown_feedback_is_ignored(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        engine.spec_feedback(BLOCK, 9, used=True)
        assert engine.stats.fr_used == 0

    def test_used_copy_joins_the_run(self):
        engine = SpeculationEngine(home=0, swi_enabled=False)
        train_producer_consumer(engine)
        engine.observe_write(BLOCK, W, 0)
        engine.record_spec_sent(BLOCK, 2, origin="fr")
        engine.spec_feedback(BLOCK, 2, used=True)
        assert 2 in engine.predictor.open_run(BLOCK)


class TestStatsMerge:
    def test_merge_adds_fields(self):
        from repro.speculation.engine import SpeculationStats

        a = SpeculationStats(fr_sent=1, wi_sent=2)
        b = SpeculationStats(fr_sent=3, swi_used=4)
        a.merge(b)
        assert a.fr_sent == 4
        assert a.wi_sent == 2
        assert a.swi_used == 4
