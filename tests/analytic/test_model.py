"""Tests for the Section 5 analytic model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic.model import (
    FIGURE6_SWEEPS,
    SpeculationModel,
    communication_ratios,
    communication_speedup,
    figure6_panel,
    figure6_panels,
    speedup,
)

probabilities = st.floats(0.0, 1.0, allow_nan=False)
rtls = st.floats(1.0, 64.0, allow_nan=False)
penalties = st.floats(1.0, 16.0, allow_nan=False)  # n >= 1: a misspeculation costs at least one remote access


class TestEquationOne:
    def test_no_speculation_means_no_change(self):
        assert communication_speedup(f=0.0, p=0.5, rtl=4, n=2) == 1.0

    def test_perfect_speculation_gives_rtl(self):
        # p=1, f=1: every remote access becomes local -> speedup = rtl.
        assert communication_speedup(f=1.0, p=1.0, rtl=4, n=2) == pytest.approx(4.0)
        assert communication_speedup(f=1.0, p=1.0, rtl=8, n=2) == pytest.approx(8.0)

    def test_always_wrong_speculation_slows_by_penalty(self):
        assert communication_speedup(f=1.0, p=0.0, rtl=4, n=2) == pytest.approx(0.5)

    @given(probabilities, rtls)
    def test_monotone_in_accuracy(self, p, rtl):
        lo = communication_speedup(f=1.0, p=p * 0.5, rtl=rtl, n=2)
        hi = communication_speedup(f=1.0, p=0.5 + p * 0.5, rtl=rtl, n=2)
        assert hi >= lo - 1e-12

    @given(probabilities, probabilities)
    def test_speedup_positive(self, f, p):
        assert communication_speedup(f=f, p=p, rtl=4, n=2) > 0


class TestEquationTwo:
    def test_no_communication_means_no_speedup(self):
        assert speedup(c=0.0, f=1.0, p=1.0, rtl=4, n=2) == 1.0

    def test_fully_communication_bound_equals_comm_speedup(self):
        comm = communication_speedup(f=1.0, p=0.9, rtl=4, n=2)
        assert speedup(c=1.0, f=1.0, p=0.9, rtl=4, n=2) == pytest.approx(comm)

    def test_paper_observation_p70_caps_around_25_percent(self):
        # Section 5: "p of 70% at best speeds up the execution by 25%"
        # (the prose rounds; the closed form gives ~29%).
        best = speedup(c=1.0, f=1.0, p=0.7, rtl=4, n=2)
        assert best == pytest.approx(1.29, abs=0.01)

    def test_low_accuracy_slows_down(self):
        for p in (0.1, 0.3, 0.5):
            assert speedup(c=1.0, f=1.0, p=p, rtl=4, n=2) < 1.0

    @given(probabilities, probabilities, probabilities, rtls, penalties)
    def test_bounded_by_rtl(self, c, f, p, rtl, n):
        assert speedup(c=c, f=f, p=p, rtl=rtl, n=n) <= rtl + 1e-9

    @given(probabilities)
    def test_monotone_in_communication_when_helping(self, c):
        # With a helpful configuration, more communication -> more gain.
        lo = speedup(c=c * 0.5, f=1.0, p=0.95, rtl=4, n=2)
        hi = speedup(c=0.5 + c * 0.5, f=1.0, p=0.95, rtl=4, n=2)
        assert hi >= lo - 1e-12


class TestSpeculationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationModel(c=1.5)
        with pytest.raises(ValueError):
            SpeculationModel(rtl=0.5)
        with pytest.raises(ValueError):
            SpeculationModel(n=-1.0)

    def test_with_override(self):
        base = SpeculationModel()
        faster = base.with_(rtl=8.0)
        assert faster.rtl == 8.0
        assert base.rtl == 4.0

    def test_methods_match_functions(self):
        model = SpeculationModel(c=0.6, f=0.8, p=0.9, rtl=4, n=2)
        assert model.speedup() == speedup(c=0.6, f=0.8, p=0.9, rtl=4, n=2)


class TestFigure6:
    def test_four_panels(self):
        assert set(figure6_panels(points=3)) == set(FIGURE6_SWEEPS)

    def test_panel_series_lengths(self):
        series = figure6_panel("accuracy", points=5)
        assert set(series) == {1.0, 0.9, 0.7, 0.5, 0.3, 0.1}
        for points in series.values():
            assert len(points) == 5

    def test_rtl_panel_matches_named_machines(self):
        series = figure6_panel("rtl", points=3)
        assert set(series) == {8.0, 4.0, 2.0}

    def test_higher_accuracy_series_dominates(self):
        series = figure6_panel("accuracy", points=9)
        for (_c, hi), (_c2, lo) in zip(series[0.9], series[0.7]):
            assert hi >= lo

    def test_unknown_panel_raises(self):
        with pytest.raises(ValueError, match="unknown panel"):
            figure6_panel("bogus")

    def test_communication_ratio_axis(self):
        axis = communication_ratios(5)
        assert axis == [0.0, 0.25, 0.5, 0.75, 1.0]
        with pytest.raises(ValueError):
            communication_ratios(1)
