"""Stateful property test for the full-map directory FSM.

A Hypothesis :class:`RuleBasedStateMachine` drives a
:class:`~repro.protocol.directory.BlockDirectory` through arbitrary
legal interleavings of reads, writes, recalls, and the speculation
hooks, mirroring every step against a trivially correct model (a sharer
set plus an optional exclusive owner).  After every rule the invariants
the predictors and the speculation engine rely on must hold:

* EXCLUSIVE  ⟺  exactly one owner, no sharers,
* SHARED     ⟺  at least one sharer, no owner,
* IDLE       ⟺  no copies at all,
* transitions report exactly the coherence messages the model expects
  (request kind, invalidation set in full-map order, writeback source).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.types import DirectoryState, MessageKind
from repro.protocol.directory import BlockDirectory
from tests.strategies import STANDARD_SETTINGS

pytestmark = pytest.mark.property

#: A small node universe keeps collisions (re-reads, self-writes,
#: owner hand-offs) frequent instead of vanishingly rare.
NODES = st.integers(min_value=0, max_value=5)


class DirectoryMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.directory = BlockDirectory()
        self.sharers: set[int] = set()
        self.owner: int | None = None

    # ------------------------------------------------------------------
    # rules: every legal request the protocol can present
    # ------------------------------------------------------------------
    @rule(node=NODES)
    def read(self, node: int) -> None:
        had_copy = node == self.owner or node in self.sharers
        previous_owner = self.owner
        transition = self.directory.read(node)
        if had_copy:
            assert not transition.generated_request
            assert transition.writeback_from is None
            return
        assert transition.request is MessageKind.READ
        assert transition.invalidated == ()
        if previous_owner is not None:
            # the writable copy is written back and downgraded away
            assert transition.writeback_from == previous_owner
            self.owner = None
            self.sharers = {node}
        else:
            assert transition.writeback_from is None
            self.sharers.add(node)

    @rule(node=NODES)
    def write(self, node: int) -> None:
        previous_owner = self.owner
        previous_sharers = set(self.sharers)
        transition = self.directory.write(node)
        if previous_owner == node:
            assert not transition.generated_request
            return
        if previous_owner is not None:
            assert transition.request is MessageKind.WRITE
            assert transition.writeback_from == previous_owner
            assert transition.invalidated == ()
        elif previous_sharers:
            expected_kind = (
                MessageKind.UPGRADE
                if node in previous_sharers
                else MessageKind.WRITE
            )
            assert transition.request is expected_kind
            # full-map order: sorted, and never including the writer
            assert transition.invalidated == tuple(
                sorted(previous_sharers - {node})
            )
            assert transition.writeback_from is None
        else:
            assert transition.request is MessageKind.WRITE
            assert transition.invalidated == ()
            assert transition.writeback_from is None
        self.owner = node
        self.sharers = set()

    @rule()
    def recall(self) -> None:
        previous_owner = self.owner
        previous_sharers = set(self.sharers)
        transition = self.directory.recall()
        assert transition.request is None
        if previous_owner is not None:
            assert transition.writeback_from == previous_owner
            assert transition.invalidated == ()
        else:
            assert transition.writeback_from is None
            assert transition.invalidated == tuple(sorted(previous_sharers))
        self.owner = None
        self.sharers = set()

    @rule(node=NODES)
    def grant_speculative_copy(self, node: int) -> None:
        granted = self.directory.grant_speculative_copy(node)
        expect = self.owner is None and node not in self.sharers
        assert granted == expect
        if granted:
            self.sharers.add(node)

    @rule(node=NODES)
    def invalidate_sharer(self, node: int) -> None:
        self.directory.invalidate_sharer(node)
        # only meaningful for read-only copies; a writable copy stays
        self.sharers.discard(node)

    @rule(node=NODES)
    def promote_sole_sharer(self, node: int) -> None:
        promoted = self.directory.promote_sole_sharer(node)
        assert promoted == (self.owner is None and self.sharers == {node})
        if promoted:
            self.owner = node
            self.sharers = set()

    # ------------------------------------------------------------------
    # invariants: checked after every rule
    # ------------------------------------------------------------------
    @invariant()
    def state_matches_copies(self) -> None:
        directory = self.directory
        if self.owner is not None:
            assert directory.state is DirectoryState.EXCLUSIVE
            assert directory.owner == self.owner
            assert directory.sharers == set()
        elif self.sharers:
            assert directory.state is DirectoryState.SHARED
            assert directory.owner is None
            assert directory.sharers == self.sharers
        else:
            assert directory.state is DirectoryState.IDLE
            assert directory.owner is None
            assert directory.sharers == set()

    @invariant()
    def holders_are_consistent(self) -> None:
        expected = {self.owner} if self.owner is not None else self.sharers
        assert self.directory.holders() == frozenset(expected)
        for node in range(6):
            assert self.directory.has_valid_copy(node) == (node in expected)


DirectoryMachine.TestCase.settings = STANDARD_SETTINGS
TestBlockDirectoryStateful = DirectoryMachine.TestCase
