"""Tests for the trace-driven protocol emulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.common.types import MessageKind
from repro.protocol.emulator import ProtocolEmulator
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


def emulate(script, seed=0):
    return ProtocolEmulator(DeterministicRng(seed)).messages_for(script)


def kinds(messages):
    return [m.kind for m in messages]


class TestBasicSequences:
    def test_cold_write_then_reads(self):
        script = BlockScript(block=1)
        script.append(WriteEpoch(writer=3))
        script.append(ReadEpoch(readers=(1, 2)))
        messages = emulate(script)
        assert kinds(messages) == [
            MessageKind.WRITE,       # cold write
            MessageKind.READ,        # first reader
            MessageKind.WRITEBACK,   # recalls the writable copy
            MessageKind.READ,        # second reader, now clean
        ]

    def test_steady_producer_consumer_cycle(self, producer_consumer_script):
        messages = emulate(producer_consumer_script)
        # Steady-state iteration: WRITE + two acks, then the first read
        # recalls the writable copy (writeback) and the second read
        # finds the block clean — exactly the paper's Figure 1 flow.
        assert kinds(messages[-6:]) == [
            MessageKind.WRITE,
            MessageKind.ACK,
            MessageKind.ACK,
            MessageKind.READ,
            MessageKind.WRITEBACK,
            MessageKind.READ,
        ]

    def test_migratory_visits(self, migratory_script):
        messages = emulate(migratory_script)
        # Steady migratory visit = READ + WRITEBACK + UPGRADE.
        tail = kinds(messages[-3:])
        assert tail == [
            MessageKind.READ,
            MessageKind.WRITEBACK,
            MessageKind.UPGRADE,
        ]

    def test_rereads_are_silent(self):
        script = BlockScript(block=1)
        script.append(ReadEpoch(readers=(1,)))
        script.append(ReadEpoch(readers=(1,)))
        messages = emulate(script)
        assert kinds(messages) == [MessageKind.READ]

    def test_upgrade_by_sole_sharer_has_no_acks(self):
        script = BlockScript(block=1)
        script.append(ReadEpoch(readers=(4,)))
        script.append(WriteEpoch(writer=4))
        messages = emulate(script)
        assert kinds(messages) == [MessageKind.READ, MessageKind.UPGRADE]


class TestAckSemantics:
    def _acks_for_iteration(self, racy_acks, seed):
        script = BlockScript(block=1)
        for _ in range(30):
            script.append(WriteEpoch(writer=0))
            script.append(
                ReadEpoch(readers=(1, 2, 3, 4), racy_acks=racy_acks)
            )
        messages = emulate(script, seed=seed)
        rounds = []
        current = []
        for message in messages:
            if message.kind is MessageKind.ACK:
                current.append(message.node)
            elif current:
                rounds.append(tuple(current))
                current = []
        return rounds

    def test_stable_acks_arrive_in_fullmap_order(self):
        for ack_round in self._acks_for_iteration(racy_acks=False, seed=3):
            assert list(ack_round) == sorted(ack_round)

    def test_racy_acks_get_permuted_sometimes(self):
        rounds = self._acks_for_iteration(racy_acks=True, seed=3)
        assert any(list(r) != sorted(r) for r in rounds)

    def test_ack_count_matches_invalidated_sharers(self):
        script = BlockScript(block=1)
        script.append(ReadEpoch(readers=(1, 2, 3)))
        script.append(WriteEpoch(writer=0))
        messages = emulate(script)
        acks = [m for m in messages if m.kind is MessageKind.ACK]
        assert sorted(a.node for a in acks) == [1, 2, 3]


class TestReadRaces:
    def test_racy_reads_get_permuted(self):
        script = BlockScript(block=1)
        for _ in range(30):
            script.append(WriteEpoch(writer=0))
            script.append(ReadEpoch(readers=(1, 2, 3, 4), racy=True))
        messages = emulate(script, seed=11)
        orders = []
        current = []
        for message in messages:
            if message.kind is MessageKind.READ:
                current.append(message.node)
            elif message.kind is MessageKind.WRITE and current:
                orders.append(tuple(current))
                current = []
        assert len(set(orders)) > 1  # different orders across iterations

    def test_non_racy_reads_keep_canonical_order(self):
        script = BlockScript(block=1)
        for _ in range(10):
            script.append(WriteEpoch(writer=0))
            script.append(ReadEpoch(readers=(4, 2, 3)))
        messages = emulate(script, seed=11)
        reads = [m.node for m in messages if m.kind is MessageKind.READ]
        assert reads == [4, 2, 3] * 10

    def test_determinism_per_block_seed(self, producer_consumer_script):
        a = emulate(producer_consumer_script, seed=5)
        b = emulate(producer_consumer_script, seed=5)
        assert a == b


# ----------------------------------------------------------------------
# property: the emulated stream always respects protocol causality
# ----------------------------------------------------------------------
epochs_strategy = st.lists(
    st.one_of(
        st.builds(WriteEpoch, writer=st.integers(0, 5)),
        st.builds(
            ReadEpoch,
            readers=st.lists(
                st.integers(0, 5), min_size=1, max_size=4, unique=True
            ).map(tuple),
            racy=st.booleans(),
            racy_acks=st.booleans(),
        ),
    ),
    max_size=40,
)


@settings(max_examples=60)
@given(epochs_strategy, st.integers(0, 2**16))
def test_stream_wellformedness(epochs, seed):
    """Acks/writebacks only ever follow a triggering request."""
    script = BlockScript(block=9, epochs=epochs)
    messages = emulate(script, seed=seed)
    writers = set()
    readers = set()
    for message in messages:
        if message.kind is MessageKind.WRITEBACK:
            assert message.node in writers, "writeback from a non-writer"
        elif message.kind is MessageKind.ACK:
            assert message.node in readers, "ack from a non-reader"
        elif message.kind in (MessageKind.WRITE, MessageKind.UPGRADE):
            writers.add(message.node)
        elif message.kind is MessageKind.READ:
            readers.add(message.node)


@settings(max_examples=60)
@given(epochs_strategy, st.integers(0, 2**16))
def test_request_count_never_exceeds_accesses(epochs, seed):
    script = BlockScript(block=9, epochs=epochs)
    messages = emulate(script, seed=seed)
    accesses = sum(
        len(e.readers) if isinstance(e, ReadEpoch) else 1 for e in epochs
    )
    requests = sum(1 for m in messages if m.is_request)
    assert requests <= accesses
