"""Tests for the block-script epoch DSL."""

import pytest

from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


class TestReadEpoch:
    def test_rejects_duplicate_readers(self):
        with pytest.raises(ValueError):
            ReadEpoch(readers=(1, 1))

    def test_defaults_are_not_racy(self):
        epoch = ReadEpoch(readers=(1, 2))
        assert not epoch.racy
        assert not epoch.racy_acks

    def test_str_mentions_flags(self):
        epoch = ReadEpoch(readers=(1,), racy=True, racy_acks=True)
        assert "ra" in str(epoch)


class TestBlockScript:
    def test_append_and_iterate(self):
        script = BlockScript(block=5)
        script.append(WriteEpoch(writer=0))
        script.append(ReadEpoch(readers=(1,)))
        assert len(script) == 2
        kinds = [type(e).__name__ for e in script]
        assert kinds == ["WriteEpoch", "ReadEpoch"]
