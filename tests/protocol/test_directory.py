"""Tests for the per-block full-map directory FSM (paper Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.types import DirectoryState, MessageKind
from repro.protocol.directory import BlockDirectory


class TestReads:
    def test_idle_read_shares(self):
        d = BlockDirectory()
        t = d.read(1)
        assert t.request is MessageKind.READ
        assert d.state is DirectoryState.SHARED
        assert d.sharers == {1}

    def test_second_reader_joins(self):
        d = BlockDirectory()
        d.read(1)
        t = d.read(2)
        assert t.request is MessageKind.READ
        assert d.sharers == {1, 2}

    def test_sharer_rereads_silently(self):
        d = BlockDirectory()
        d.read(1)
        t = d.read(1)
        assert not t.generated_request

    def test_read_of_exclusive_forces_writeback(self):
        d = BlockDirectory()
        d.write(3)
        t = d.read(1)
        assert t.request is MessageKind.READ
        assert t.writeback_from == 3
        assert d.state is DirectoryState.SHARED
        assert d.sharers == {1}

    def test_owner_read_hits_in_cache(self):
        d = BlockDirectory()
        d.write(3)
        t = d.read(3)
        assert not t.generated_request
        assert d.state is DirectoryState.EXCLUSIVE


class TestWrites:
    def test_idle_write_takes_exclusive(self):
        d = BlockDirectory()
        t = d.write(2)
        assert t.request is MessageKind.WRITE
        assert d.state is DirectoryState.EXCLUSIVE
        assert d.owner == 2

    def test_write_invalidates_sharers_in_fullmap_order(self):
        d = BlockDirectory()
        d.read(5)
        d.read(2)
        d.read(9)
        t = d.write(7)
        assert t.request is MessageKind.WRITE
        assert t.invalidated == (2, 5, 9)

    def test_sharer_write_is_upgrade(self):
        d = BlockDirectory()
        d.read(1)
        d.read(2)
        t = d.write(1)
        assert t.request is MessageKind.UPGRADE
        assert t.invalidated == (2,)

    def test_sole_sharer_upgrade_needs_no_acks(self):
        d = BlockDirectory()
        d.read(4)
        t = d.write(4)
        assert t.request is MessageKind.UPGRADE
        assert t.invalidated == ()

    def test_write_of_exclusive_forces_writeback(self):
        d = BlockDirectory()
        d.write(1)
        t = d.write(2)
        assert t.request is MessageKind.WRITE
        assert t.writeback_from == 1
        assert d.owner == 2

    def test_owner_rewrite_is_silent(self):
        d = BlockDirectory()
        d.write(1)
        t = d.write(1)
        assert not t.generated_request


class TestRecall:
    def test_recall_exclusive_writes_back(self):
        d = BlockDirectory()
        d.write(6)
        t = d.recall()
        assert t.writeback_from == 6
        assert d.state is DirectoryState.IDLE

    def test_recall_shared_invalidates_all(self):
        d = BlockDirectory()
        d.read(1)
        d.read(3)
        t = d.recall()
        assert t.invalidated == (1, 3)
        assert d.state is DirectoryState.IDLE

    def test_recall_idle_is_noop(self):
        d = BlockDirectory()
        t = d.recall()
        assert not t.invalidated and t.writeback_from is None


class TestSpeculativeGrants:
    def test_grant_on_idle_makes_sharer(self):
        d = BlockDirectory()
        assert d.grant_speculative_copy(4)
        assert d.state is DirectoryState.SHARED
        assert d.sharers == {4}

    def test_grant_refused_on_exclusive(self):
        d = BlockDirectory()
        d.write(1)
        assert not d.grant_speculative_copy(4)

    def test_grant_refused_for_existing_sharer(self):
        d = BlockDirectory()
        d.read(4)
        assert not d.grant_speculative_copy(4)

    def test_invalidate_sharer_returns_to_idle_when_empty(self):
        d = BlockDirectory()
        d.read(4)
        d.invalidate_sharer(4)
        assert d.state is DirectoryState.IDLE


# ----------------------------------------------------------------------
# protocol invariants under arbitrary access sequences
# ----------------------------------------------------------------------
access_sequences = st.lists(
    st.tuples(st.sampled_from(["read", "write"]), st.integers(0, 7)),
    max_size=60,
)


@given(access_sequences)
def test_single_writer_multiple_readers_invariant(sequence):
    """At any point: exclusive -> exactly one holder, no sharers."""
    d = BlockDirectory()
    for op, node in sequence:
        getattr(d, op)(node)
        if d.state is DirectoryState.EXCLUSIVE:
            assert d.owner is not None
            assert not d.sharers
        elif d.state is DirectoryState.SHARED:
            assert d.owner is None
            assert d.sharers
        else:
            assert d.owner is None and not d.sharers


@given(access_sequences)
def test_requester_always_holds_copy_afterwards(sequence):
    d = BlockDirectory()
    for op, node in sequence:
        getattr(d, op)(node)
        assert d.has_valid_copy(node)


@given(access_sequences)
def test_invalidated_never_includes_writer(sequence):
    d = BlockDirectory()
    for op, node in sequence:
        transition = getattr(d, op)(node)
        if op == "write":
            assert node not in transition.invalidated
