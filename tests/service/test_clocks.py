"""Durations come from monotonic anchors, never the wall clock.

Regression tests for the uptime/elapsed bug: ``uptime_s`` and job
``elapsed_s`` used to be ``time.time() - started_at``, so an NTP step
(or a manual date change) made uptime jump or go negative.  Wall-clock
times are still *reported* — as timestamps (``started_at``,
``created_at``, ``finished_at``) — but every duration is now the
difference of two ``time.monotonic()`` readings, which these tests pin
by yanking the wall clock around and watching the durations not care.
"""

import time

import pytest

from repro.harness import ParallelRunner
from repro.service.app import ServiceApp
from repro.service.jobs import ComputePool, JobTable, ServiceStats, SweepJob


@pytest.fixture
def wall_clock_jumped_backwards(monkeypatch):
    """After this fixture, time.time() reports an hour in the past."""
    real = time.time()
    monkeypatch.setattr(time, "time", lambda: real - 3600.0)
    return real


def test_service_stats_uptime_survives_wall_clock_step(wall_clock_jumped_backwards):
    stats = ServiceStats()
    stats.started_monotonic -= 42.0  # as if the service started 42s ago
    snapshot = stats.snapshot(in_flight=0, queue_bound=1)
    assert snapshot["uptime_s"] == pytest.approx(42.0, abs=0.5)
    # The wall timestamp is still the (pre-jump) wall reading, reported
    # as a timestamp, not fed into any duration.
    assert snapshot["started_at"] == pytest.approx(wall_clock_jumped_backwards, abs=5)


def test_healthz_uptime_survives_wall_clock_step(wall_clock_jumped_backwards):
    runner = ParallelRunner(jobs=1, store=None)
    try:
        pool = ComputePool(runner)
        app = ServiceApp(pool, JobTable(pool))
        app._started_monotonic -= 42.0
        payload = app._healthz(None).payload
        assert payload["uptime_s"] == pytest.approx(42.0, abs=0.5)
        assert payload["uptime_s"] > 0
    finally:
        runner.close()


def test_job_elapsed_uses_monotonic_anchors(wall_clock_jumped_backwards):
    job = SweepJob(id="job-1", kind="svc_probe", points=[])
    job.created_monotonic = 100.0
    job.finished_monotonic = 105.5
    job.finished_at = time.time()  # the jumped wall clock — must not matter
    assert job.elapsed_s == pytest.approx(5.5)
    assert job.status()["elapsed_s"] == 5.5


def test_running_job_elapsed_is_so_far_and_non_negative(wall_clock_jumped_backwards):
    job = SweepJob(id="job-2", kind="svc_probe", points=[])
    job.created_monotonic = time.monotonic() - 3.0
    assert job.finished_monotonic is None
    assert job.elapsed_s == pytest.approx(3.0, abs=0.5)
    assert job.elapsed_s > 0
