"""API-key auth: 401 matrix, header forms, and the /healthz exemption."""

import asyncio
import json

from tests.service.test_service import http_request, run_with_service


async def raw_request(port, target, headers=None, method="GET"):
    """One request with arbitrary extra headers; returns
    (status, headers_dict, body_bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = f"{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write((head + "\r\n").encode())
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        response_headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode().partition(":")
            response_headers[name.strip().lower()] = value.strip()
        body = await reader.read()
        return status, response_headers, body
    finally:
        writer.close()


PROTECTED = [
    "/statz",
    "/metrics",
    "/v1/experiments",
    "/v1/point?kind=analytic&panel=accuracy&points=2",
    "/v1/jobs",
    "/v1/sessions",
]


class TestNoKeyConfigured:
    def test_service_stays_open_without_a_key(self, tmp_path):
        async def scenario(service):
            for target in ("/healthz", "/statz", "/metrics", "/v1/jobs"):
                status, _, _ = await raw_request(service.port, target)
                assert status == 200, target

        run_with_service(tmp_path, scenario)


class TestKeyConfigured:
    def test_every_protected_endpoint_requires_the_key(self, tmp_path):
        async def scenario(service):
            for target in PROTECTED:
                status, headers, body = await raw_request(service.port, target)
                assert status == 401, target
                assert headers["www-authenticate"] == 'Bearer realm="repro-paper"'
                assert "API key" in json.loads(body)["error"]

        run_with_service(tmp_path, scenario, api_key="sekrit")

    def test_healthz_is_exempt(self, tmp_path):
        async def scenario(service):
            status, _, _ = await raw_request(service.port, "/healthz")
            assert status == 200

        run_with_service(tmp_path, scenario, api_key="sekrit")

    def test_bearer_and_x_api_key_both_accepted(self, tmp_path):
        async def scenario(service):
            for headers in (
                {"Authorization": "Bearer sekrit"},
                {"X-API-Key": "sekrit"},
            ):
                status, _, _ = await raw_request(
                    service.port, "/statz", headers=headers
                )
                assert status == 200, headers

        run_with_service(tmp_path, scenario, api_key="sekrit")

    def test_wrong_key_and_wrong_scheme_rejected(self, tmp_path):
        async def scenario(service):
            for headers in (
                {"Authorization": "Bearer wrong"},
                {"X-API-Key": "wrong"},
                {"Authorization": "Basic sekrit"},
                {"Authorization": "Bearer"},
            ):
                status, _, _ = await raw_request(
                    service.port, "/statz", headers=headers
                )
                assert status == 401, headers

        run_with_service(tmp_path, scenario, api_key="sekrit")

    def test_authorized_requests_serve_normally(self, tmp_path):
        """Auth is a gate, not a behavior change: a keyed request gets
        the same payloads an open service serves."""

        async def scenario(service):
            status, _, body = await raw_request(
                service.port,
                "/v1/point?kind=analytic&panel=accuracy&points=2",
                headers={"X-API-Key": "sekrit"},
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["result"]["series"]

        run_with_service(tmp_path, scenario, api_key="sekrit")

    def test_unknown_route_is_still_401_without_key(self, tmp_path):
        """Auth is checked before routing, so unauthenticated clients
        cannot probe which endpoints exist."""

        async def scenario(service):
            status, _, _ = await raw_request(service.port, "/nope")
            assert status == 401
            status, _, _ = await raw_request(
                service.port, "/nope", headers={"X-API-Key": "sekrit"}
            )
            assert status == 404

        run_with_service(tmp_path, scenario, api_key="sekrit")
