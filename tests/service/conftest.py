"""Shared fixtures for the service tests: an instrumented point runner.

``svc_probe`` is a runner kind that counts its invocations (so tests can
assert "zero executions on cache hit" and "exactly one under
coalescing") and can block on a named gate until the test releases it
(so tests can hold a computation in flight deterministically).  It runs
in-process — the service tests use ``jobs=1``, whose incremental pool is
a background *thread* — so the counters are plain module state.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.harness import register_runner

CALLS: Counter = Counter()
_GATES: dict[str, threading.Event] = {}
_LOCK = threading.Lock()


def gate(name: str) -> threading.Event:
    with _LOCK:
        return _GATES.setdefault(name, threading.Event())


def _svc_probe(params):
    CALLS[params.get("name", "default")] += 1
    gate_name = params.get("gate")
    if gate_name:
        if not gate(gate_name).wait(timeout=15):
            raise RuntimeError(f"gate {gate_name!r} never opened")
    if params.get("fail"):
        raise ValueError(f"probe failure: {params.get('payload')!r}")
    return {"echo": params.get("payload"), "name": params.get("name", "default")}


try:
    register_runner("svc_probe")(_svc_probe)
except ValueError:
    pass  # already registered by a previous conftest import


@pytest.fixture(autouse=True)
def probe_state():
    """Fresh counters per test; any still-blocked worker is released."""
    CALLS.clear()
    with _LOCK:
        _GATES.clear()
    yield
    with _LOCK:
        for event in _GATES.values():
            event.set()
