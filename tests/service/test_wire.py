"""Unit tests for the hand-rolled HTTP/1.1 framing."""

import asyncio

import pytest

from repro.service.wire import (
    Request,
    Response,
    WireError,
    read_request,
    write_response,
)


def parse(raw: bytes):
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(inner())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /v1/point?kind=accuracy&depth=2 HTTP/1.1\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/point"
        assert request.query == {"kind": "accuracy", "depth": "2"}
        assert request.keep_alive  # HTTP/1.1 default

    def test_percent_encoding_decoded(self):
        request = parse(b'GET /v1/point?config=%7B%22num_nodes%22%3A32%7D HTTP/1.1\r\n\r\n')
        assert request.query["config"] == '{"num_nodes":32}'

    def test_headers_lowercased_and_connection_close(self):
        request = parse(
            b"GET / HTTP/1.1\r\nHost: example\r\nConnection: Close\r\n\r\n"
        )
        assert request.headers["host"] == "example"
        assert not request.keep_alive

    def test_http10_defaults_to_close(self):
        assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ).keep_alive

    def test_post_reads_content_length_body(self):
        request = parse(
            b"POST /v1/sweep HTTP/1.1\r\nContent-Length: 9\r\n\r\n"
            b'{"a": 1}\n'
        )
        assert request.body == b'{"a": 1}\n'
        assert request.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_get_with_body_drains_it_keeping_framing_in_sync(self):
        """A GET carrying Content-Length is legal; its body must be
        consumed or the next pipelined request would parse as garbage."""

        async def inner():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"GET /healthz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
                b"GET /statz HTTP/1.1\r\n\r\n"
            )
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            return first, second

        first, second = asyncio.run(inner())
        assert first.path == "/healthz" and first.body == b"hello"
        assert second.path == "/statz"  # not a 400: framing stayed aligned

    @pytest.mark.parametrize(
        "raw, status",
        [
            (b"BROKEN\r\n\r\n", 400),  # malformed request line
            (b"GET / HTTP/9.9\r\n\r\n", 400),  # bad version
            (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400),
            (b"POST /v1/sweep HTTP/1.1\r\n\r\n", 411),  # missing length
            (b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n", 400),
            (b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET / HTTP/1.1\r\nH: " + b"x" * 9000 + b"\r\n\r\n", 431),
        ],
    )
    def test_malformed_requests_map_to_statuses(self, raw, status):
        with pytest.raises(WireError) as excinfo:
            parse(raw)
        assert excinfo.value.status == status

    def test_repeated_header_names_still_hit_the_count_bound(self):
        """The bound counts received lines, not distinct names — a
        stream of same-name headers must not loop unbounded."""
        raw = b"GET / HTTP/1.1\r\n" + b"x: y\r\n" * 200 + b"\r\n"
        with pytest.raises(WireError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 431

    def test_body_over_limit_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n" + b"x" * 99
        with pytest.raises(WireError) as excinfo:
            async def inner():
                reader = asyncio.StreamReader()
                reader.feed_data(raw)
                reader.feed_eof()
                return await read_request(reader, max_body=10)

            asyncio.run(inner())
        assert excinfo.value.status == 413

    def test_json_on_empty_body_is_400(self):
        request = Request(method="POST", path="/", query={}, headers={})
        with pytest.raises(WireError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponseWriting:
    def test_status_line_headers_and_body(self):
        async def inner():
            # Loopback via a socketpair-backed connection.
            import socket

            left, right = socket.socketpair()
            _, writer = await asyncio.open_connection(sock=left)
            await write_response(
                writer, Response(status=429, payload={"error": "full"}), False
            )
            writer.close()
            data = right.recv(65536)
            right.close()
            return data

        data = asyncio.run(inner())
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Content-Type: application/json" in head
        assert b"Connection: close" in head
        assert body == b'{"error": "full"}\n'
        assert int(dict(
            line.split(b": ", 1) for line in head.split(b"\r\n")[1:]
        )[b"Content-Length"]) == len(body)
