"""GET /metrics: Prometheus text format, consistent with /statz."""

import re

import pytest

from repro.service.metrics import CONTENT_TYPE, render_metrics

from tests.service.test_auth import raw_request
from tests.service.test_service import http_request, run_with_service

SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (NaN|[-+]?[0-9.eE+-]+)$"
)
META = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def parse_samples(text):
    """name or name{labels} -> float value, for every sample line."""
    samples = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert META.match(line), line
            continue
        assert SAMPLE.match(line), line
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


async def scrape(port):
    status, headers, body = await raw_request(port, "/metrics")
    assert status == 200
    assert headers["content-type"] == CONTENT_TYPE
    return body.decode("utf-8")


class TestScrape:
    def test_every_line_is_valid_text_format(self, tmp_path):
        async def scenario(service):
            text = await scrape(service.port)
            assert text.endswith("\n")
            parse_samples(text)  # asserts per line

        run_with_service(tmp_path, scenario)

    def test_counters_track_statz(self, tmp_path):
        async def scenario(service):
            target = "/v1/point?kind=analytic&panel=accuracy&points=3"
            for _ in range(3):
                status, _ = await http_request(service.port, target)
                assert status == 200
            samples = parse_samples(await scrape(service.port))
            _, statz = await http_request(service.port, "/statz")
            assert samples['repro_point_requests_total{outcome="compute"}'] == 1
            assert samples['repro_point_requests_total{outcome="hit"}'] == 2
            assert samples["repro_cache_entries"] == statz["runner"]["cache_entries"] == 1
            assert (
                samples['repro_hot_tier_requests_total{result="hit"}']
                == statz["hot_tier"]["hits"]
            )
            assert samples["repro_hot_tier_entries"] == statz["hot_tier"]["entries"]
            assert samples["repro_uptime_seconds"] >= 0
            assert (
                samples["repro_queue_depth_bound"] == service.config.max_pending
            )

        run_with_service(tmp_path, scenario)

    def test_expected_families_present(self, tmp_path):
        async def scenario(service):
            text = await scrape(service.port)
            families = {
                line.split()[2] for line in text.splitlines() if line.startswith("# HELP")
            }
            for family in (
                "repro_uptime_seconds",
                "repro_point_requests_total",
                "repro_in_flight_computations",
                "repro_queue_depth_bound",
                "repro_compute_seconds_total",
                "repro_cache_saved_seconds_total",
                "repro_request_latency_milliseconds",
                "repro_trace_cache_events_total",
                "repro_cache_entries",
                "repro_jobs_tracked",
                "repro_jobs_running",
                "repro_sessions_active",
                "repro_sessions_opened_total",
                "repro_sessions_rejected_total",
                "repro_hot_tier_requests_total",
                "repro_hot_tier_evictions_total",
                "repro_hot_tier_entries",
                "repro_hot_tier_bytes",
            ):
                assert family in families, family
            # single-replica service: no claim coordination families
            assert "repro_claims_held" not in families

        run_with_service(tmp_path, scenario)

    def test_claims_families_appear_with_claim_dir(self, tmp_path):
        async def scenario(service):
            samples = parse_samples(await scrape(service.port))
            assert samples["repro_claims_held"] == 0
            for event in ("claimed", "computed", "released", "stolen", "lost"):
                assert samples[f'repro_claims_total{{event="{event}"}}'] == 0

        run_with_service(
            tmp_path, scenario, claim_dir=str(tmp_path / "cache" / "claims")
        )

    def test_hot_tier_families_absent_when_disabled(self, tmp_path):
        async def scenario(service):
            text = await scrape(service.port)
            assert "repro_hot_tier" not in text
            _, statz = await http_request(service.port, "/statz")
            assert statz["hot_tier"] is None

        run_with_service(tmp_path, scenario, hot_entries=0)

    def test_post_to_metrics_is_405(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(
                service.port, "/metrics", method="POST", body={}
            )
            assert status == 405

        run_with_service(tmp_path, scenario)


class TestRenderer:
    def test_escapes_label_values(self):
        text = render_metrics({"latency_ms": {}, "claims": None})
        assert text.endswith("\n")
        parse_samples(text)

    def test_none_renders_as_nan(self):
        text = render_metrics({"uptime_s": None})
        assert "repro_uptime_seconds NaN" in text

    def test_renderer_is_deterministic(self):
        snapshot = {
            "uptime_s": 12.5,
            "hits": 3,
            "computes": 1,
            "latency_ms": {"hit": {"count": 3, "p50": 1.0, "p90": 2.0, "p99": 2.5}},
            "sessions": {"active": 1, "opened": 2},
            "hot_tier": {"hits": 9, "misses": 1, "entries": 1, "bytes": 64},
        }
        assert render_metrics(snapshot) == render_metrics(snapshot)
