"""Tests for the coalescing compute pool and the sweep job table."""

import asyncio

import pytest

from repro.harness import (
    ClaimBoard,
    ClaimedRunner,
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepPoint,
)
from repro.service.jobs import ComputePool, JobTable, PointTimeout, PoolSaturated

from tests.service.conftest import CALLS, gate


def probe_point(**params):
    return SweepPoint.make("svc_probe", params)


async def settle(condition, timeout=5.0):
    """Await until ``condition()`` is true (polling the loop)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while not condition():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


def make_pool(tmp_path, **kwargs):
    runner = ParallelRunner(jobs=1, store=ResultStore(tmp_path / "cache"))
    return ComputePool(runner, **kwargs), runner


class TestCacheFastPath:
    def test_hit_never_invokes_a_runner(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            point = probe_point(payload=5)
            runner.store.store(point, {"echo": 5, "name": "default"}, elapsed_s=1.5)
            outcome = await pool.fetch(point)
            assert outcome.cached
            assert outcome.value == {"echo": 5, "name": "default"}
            assert outcome.elapsed_s == 1.5
            # the compute pool never came into existence, let alone ran:
            assert CALLS["default"] == 0
            assert not runner.incremental_started
            assert pool.stats.hits == 1 and pool.stats.computes == 0
            assert pool.stats.saved_seconds == 1.5
            runner.close()

        asyncio.run(scenario())

    def test_miss_computes_then_second_fetch_hits(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            point = probe_point(payload=7)
            first = await pool.fetch(point)
            assert not first.cached and first.value["echo"] == 7
            second = await pool.fetch(point)
            assert second.cached and second.value == first.value
            assert CALLS["default"] == 1
            runner.close()

        asyncio.run(scenario())

    def test_service_result_bit_identical_to_cli_batch(self, tmp_path):
        """The service path and the CLI's batch path share cache entries."""

        async def scenario():
            pool, runner = make_pool(tmp_path)
            point = SweepPoint.make("analytic", {"panel": "accuracy", "points": 3})
            outcome = await pool.fetch(point)
            runner.close()
            return outcome

        served = asyncio.run(scenario())
        assert not served.cached

        # A CLI-style batch runner over the same cache dir: zero
        # executions, and the value is bit-for-bit what the service had.
        batch = ParallelRunner(store=ResultStore(tmp_path / "cache"))
        result = batch.run([SweepPoint.make("analytic", {"panel": "accuracy", "points": 3})])
        assert batch.last_report.executed == 0
        assert batch.last_report.cached == 1
        assert result.values[0] == served.value


class TestCoalescing:
    def test_concurrent_identical_requests_compute_once(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            point = probe_point(payload=1, gate="slow")
            fetches = [asyncio.create_task(pool.fetch(point)) for _ in range(5)]
            await settle(lambda: pool.in_flight == 1)
            gate("slow").set()
            outcomes = await asyncio.gather(*fetches)
            assert [o.value["echo"] for o in outcomes] == [1] * 5
            assert CALLS["default"] == 1  # exactly one computation
            assert pool.stats.coalesced == 4
            assert pool.stats.computes == 1
            runner.close()

        asyncio.run(scenario())

    def test_distinct_points_do_not_coalesce(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            outcomes = await asyncio.gather(
                pool.fetch(probe_point(payload=1)),
                pool.fetch(probe_point(payload=2)),
            )
            assert {o.value["echo"] for o in outcomes} == {1, 2}
            assert CALLS["default"] == 2
            assert pool.stats.coalesced == 0
            runner.close()

        asyncio.run(scenario())


class TestBackpressure:
    def test_saturated_pool_rejects_new_computations(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path, max_pending=1)
            blocked = asyncio.create_task(
                pool.fetch(probe_point(payload=1, gate="full"))
            )
            await settle(lambda: pool.in_flight == 1)
            with pytest.raises(PoolSaturated):
                await pool.fetch(probe_point(payload=2))
            assert pool.stats.rejected == 1
            # coalescing with the in-flight point is still allowed...
            coalesced = asyncio.create_task(
                pool.fetch(probe_point(payload=1, gate="full"))
            )
            await asyncio.sleep(0.02)
            gate("full").set()
            assert (await blocked).value["echo"] == 1
            assert (await coalesced).value["echo"] == 1
            # ...and once drained, new computations are accepted again.
            assert (await pool.fetch(probe_point(payload=3))).value["echo"] == 3
            runner.close()

        asyncio.run(scenario())

    def test_cache_hits_served_even_when_saturated(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path, max_pending=1)
            hit_point = probe_point(payload=9)
            runner.store.store(hit_point, {"echo": 9, "name": "default"})
            blocked = asyncio.create_task(
                pool.fetch(probe_point(payload=1, gate="full2"))
            )
            await settle(lambda: pool.in_flight == 1)
            outcome = await pool.fetch(hit_point)  # no 429: it's a hit
            assert outcome.cached
            gate("full2").set()
            await blocked
            runner.close()

        asyncio.run(scenario())


class TestTimeouts:
    def test_timeout_raises_but_computation_lands_in_cache(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path, timeout_s=0.05)
            point = probe_point(payload=1, gate="slow")
            with pytest.raises(PointTimeout):
                await pool.fetch(point)
            assert pool.stats.timeouts == 1
            gate("slow").set()
            await settle(lambda: pool.in_flight == 0)
            outcome = await pool.fetch(point)  # retry picks up the result
            assert outcome.cached
            assert CALLS["default"] == 1
            runner.close()

        asyncio.run(scenario())

    def test_per_request_timeout_override(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path, timeout_s=None)
            point = probe_point(payload=2, gate="slow")
            with pytest.raises(PointTimeout):
                await pool.fetch(point, timeout_s=0.05)
            gate("slow").set()
            await settle(lambda: pool.in_flight == 0)
            runner.close()

        asyncio.run(scenario())


class TestFailures:
    def test_runner_error_propagates_to_all_waiters(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            point = probe_point(payload=1, fail=True, gate="err")
            fetches = [asyncio.create_task(pool.fetch(point)) for _ in range(3)]
            await settle(lambda: pool.in_flight == 1)
            gate("err").set()
            results = await asyncio.gather(*fetches, return_exceptions=True)
            assert all(isinstance(r, SweepError) for r in results)
            assert pool.stats.errors == 1
            # failures are not cached: a retry recomputes.
            assert runner.cached_outcome(point) is None
            runner.close()

        asyncio.run(scenario())


class TestJobTable:
    def test_sweep_job_runs_to_completion_in_order(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            table = JobTable(pool, concurrency=2)
            points = [probe_point(payload=i) for i in (3, 1, 2)]
            job = table.submit("svc_probe", points)
            await settle(lambda: job.state != "running")
            assert job.state == "done"
            status = job.status(include_results=True)
            assert status["done"] == 3 and status["total"] == 3
            assert [p["result"]["echo"] for p in status["points"]] == [3, 1, 2]
            runner.close()

        asyncio.run(scenario())

    def test_job_points_share_the_cache(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            await pool.fetch(probe_point(payload=1))
            table = JobTable(pool)
            job = table.submit(
                "svc_probe", [probe_point(payload=1), probe_point(payload=2)]
            )
            await settle(lambda: job.state != "running")
            assert job.state == "done"
            assert job.cached == 1  # payload=1 came from the store
            assert CALLS["default"] == 2  # 1 interactive + 1 job point
            runner.close()

        asyncio.run(scenario())

    def test_failing_point_fails_the_job(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            table = JobTable(pool)
            job = table.submit(
                "svc_probe",
                [probe_point(payload=1), probe_point(payload=2, fail=True)],
            )
            await settle(lambda: job.state != "running")
            assert job.state == "failed"
            assert "probe failure" in job.error
            runner.close()

        asyncio.run(scenario())

    def test_unknown_job_is_none_and_table_bounded(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            table = JobTable(pool, max_jobs=2)
            assert table.get("job-nope") is None
            first = table.submit("svc_probe", [probe_point(payload=1)])
            second = table.submit("svc_probe", [probe_point(payload=2)])
            await settle(lambda: first.state != "running" and second.state != "running")
            # a third submission evicts the oldest finished job.
            third = table.submit("svc_probe", [probe_point(payload=3)])
            await settle(lambda: third.state != "running")
            assert table.get(first.id) is None
            assert table.get(third.id) is not None
            runner.close()

        asyncio.run(scenario())


class TestJobSubmissionOrder:
    def test_stragglers_submitted_first(self, tmp_path):
        """Background jobs use the same predicted-duration signal as
        batch chunk packing: recorded-slow points start first."""
        store = ResultStore(tmp_path / "cache")
        for i, (app, elapsed) in enumerate(
            [("slow", 5.0), ("slow", 5.0), ("fast", 0.1), ("fast", 0.1)]
        ):
            store.store(
                SweepPoint.make("svc_probe", {"payload": f"old-{i}", "app": app}),
                {"echo": i},
                elapsed_s=elapsed,
            )
        runner = ParallelRunner(jobs=1, store=store)
        table = JobTable(ComputePool(runner))
        points = [
            probe_point(payload=1, app="fast"),
            probe_point(payload=2, app="slow"),
            probe_point(payload=3, app="fast"),
            probe_point(payload=4, app="slow"),
        ]
        assert table._submission_order(points) == [1, 3, 0, 2]

    def test_no_timing_signal_preserves_grid_order(self, tmp_path):
        runner = ParallelRunner(jobs=1)  # no store: every weight equal
        table = JobTable(ComputePool(runner))
        points = [probe_point(payload=i) for i in range(4)]
        assert table._submission_order(points) == [0, 1, 2, 3]

    def test_results_stay_in_grid_order_despite_reordering(self, tmp_path):
        async def scenario():
            store = ResultStore(tmp_path / "cache")
            store.store(
                SweepPoint.make("svc_probe", {"payload": "old", "app": "slow"}),
                {"echo": 0},
                elapsed_s=5.0,
            )
            runner = ParallelRunner(jobs=1, store=store)
            pool = ComputePool(runner)
            table = JobTable(pool, concurrency=1)
            points = [
                probe_point(payload=1, app="fast"),
                probe_point(payload=2, app="slow"),
            ]
            job = table.submit("svc_probe", points)
            await settle(lambda: job.state != "running")
            assert job.state == "done"
            status = job.status(include_results=True)
            assert [p["result"]["echo"] for p in status["points"]] == [1, 2]
            runner.close()

        asyncio.run(scenario())


class TestClaimedReplicas:
    """Two service replicas sharing one cache dir divide the compute."""

    def make_replica(self, tmp_path, name):
        return ClaimedRunner(
            ParallelRunner(jobs=1, store=ResultStore(tmp_path / "cache")),
            ClaimBoard(tmp_path / "cache" / "claims", owner=name, ttl_s=30.0),
            poll_interval_s=0.02,
        )

    def test_same_point_computed_once_across_replicas(self, tmp_path):
        first = self.make_replica(tmp_path, "replica-1")
        second = self.make_replica(tmp_path, "replica-2")
        try:
            point = probe_point(payload=1, gate="replica")
            blocked = first.submit_point(point)  # claims, starts computing
            waiting = second.submit_point(point)  # claim held: waits
            assert not waiting.done()
            gate("replica").set()
            one = blocked.result(timeout=30)
            two = waiting.result(timeout=30)
            assert one.value == two.value
            assert not one.cached and two.cached  # replica-2 read the store
            assert CALLS["default"] == 1  # exactly one computation
            assert second.claims.stats()["computed"] == 0
        finally:
            first.close()
            second.close()

    def test_job_grid_split_across_replica_pools(self, tmp_path):
        """The same sweep job submitted to two replicas' job tables:
        every point computed exactly once across the pair."""

        async def scenario():
            first = self.make_replica(tmp_path, "replica-1")
            second = self.make_replica(tmp_path, "replica-2")
            try:
                points = [probe_point(payload=i) for i in range(6)]
                pool_one = ComputePool(first)
                pool_two = ComputePool(second)
                table_one = JobTable(pool_one, concurrency=2)
                table_two = JobTable(pool_two, concurrency=2)
                job_one = table_one.submit("svc_probe", points)
                job_two = table_two.submit("svc_probe", points)
                await settle(
                    lambda: job_one.state != "running"
                    and job_two.state != "running",
                    timeout=30,
                )
                assert job_one.state == "done" and job_two.state == "done"
                assert [r["echo"] for r in job_one.results] == list(range(6))
                assert job_one.results == job_two.results
                assert CALLS["default"] == 6  # nothing computed twice
                stats_one = first.claims.stats()
                stats_two = second.claims.stats()
                assert stats_one["computed"] + stats_two["computed"] == 6
                # /statz accounting matches the claim split: a point the
                # peer computed counts as a (waited-on) hit, not a local
                # compute — each replica's computes equal its own claims.
                assert pool_one.stats.computes == stats_one["computed"]
                assert pool_two.stats.computes == stats_two["computed"]
                assert pool_one.stats.computes + pool_one.stats.hits == 6
                assert pool_two.stats.computes + pool_two.stats.hits == 6
            finally:
                first.close()
                second.close()

        asyncio.run(scenario())


class TestJobEviction:
    def test_finished_jobs_survive_while_under_capacity(self, tmp_path):
        """Regression: a new submission must not evict finished jobs
        while the table is still under max_jobs (the overflow slice
        used to go negative and delete almost all of them)."""

        async def scenario():
            pool, runner = make_pool(tmp_path)
            table = JobTable(pool, max_jobs=64)
            jobs = [
                table.submit("svc_probe", [probe_point(payload=i)])
                for i in range(10)
            ]
            await settle(lambda: all(j.state == "done" for j in jobs))
            one_more = table.submit("svc_probe", [probe_point(payload=99)])
            await settle(lambda: one_more.state == "done")
            for job in jobs:
                assert table.get(job.id) is job  # nothing was evicted
            runner.close()

        asyncio.run(scenario())

    def test_eviction_kicks_in_at_capacity(self, tmp_path):
        async def scenario():
            pool, runner = make_pool(tmp_path)
            table = JobTable(pool, max_jobs=3)
            jobs = [
                table.submit("svc_probe", [probe_point(payload=i)])
                for i in range(3)
            ]
            await settle(lambda: all(j.state == "done" for j in jobs))
            extra = table.submit("svc_probe", [probe_point(payload=3)])
            await settle(lambda: extra.state == "done")
            # the oldest finished job made room; the rest remain
            assert table.get(jobs[0].id) is None
            assert table.get(jobs[1].id) is jobs[1]
            assert table.get(extra.id) is extra
            runner.close()

        asyncio.run(scenario())
