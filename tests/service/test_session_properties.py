"""Property tests for the session lifecycle (tentpole invariants).

Three claims, each load-bearing for the streaming API:

1. **Stream ≡ batch** — however a message sequence is sliced into
   ``feed`` batches, the finalized session reports exactly what one
   predictor observing the concatenated sequence reports.  This is the
   semantic contract behind the golden HTTP test, checked here across
   arbitrary sequences and splits rather than one recorded trace.
2. **No premature eviction** — a session that keeps touching the table
   within its TTL is never reaped, no matter what other sessions come
   and go around it; eviction only ever claims sessions whose idle
   time exceeds the TTL.
3. **Counter balance** — ``opened == active + closed + evicted`` at
   every step, so the ``/statz`` ``sessions`` section can be trusted
   as a conservation law, not a best-effort gauge.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.common.types import Message, MessageKind
from repro.predictors import PREDICTOR_CLASSES
from repro.service.sessions import (
    SessionBoundExceeded,
    SessionTable,
    SessionTableFull,
    UnknownSession,
)
from tests.strategies import STANDARD_SETTINGS

pytestmark = pytest.mark.property

NUM_PROCS = 4
MESSAGES = st.builds(
    Message,
    kind=st.sampled_from(list(MessageKind)),
    node=st.integers(min_value=0, max_value=NUM_PROCS - 1),
    block=st.integers(min_value=0, max_value=3),
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# 1. stream ≡ batch, for every predictor and any batch slicing
# ----------------------------------------------------------------------
@given(
    predictor=st.sampled_from(sorted(PREDICTOR_CLASSES)),
    depth=st.integers(min_value=1, max_value=3),
    messages=st.lists(MESSAGES, max_size=60),
    cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=5),
)
@STANDARD_SETTINGS
def test_streamed_batches_equal_one_batch(predictor, depth, messages, cuts):
    table = SessionTable(clock=FakeClock())
    session = table.open(predictor, depth=depth, num_procs=NUM_PROCS)
    bounds = sorted({c for c in cuts if c < len(messages)} | {0, len(messages)})
    for start, end in zip(bounds, bounds[1:]):
        table.feed(session.id, messages[start:end])
    streamed = table.close(session.id)

    reference = PREDICTOR_CLASSES[predictor](depth=depth)
    for message in messages:
        reference.observe(message)
    flush = getattr(reference, "flush", None)
    if flush is not None:
        flush()
    average_pte = reference.average_pattern_entries()
    profile = reference.storage_profile(NUM_PROCS, depth)
    assert streamed["run"] == {
        "accuracy": reference.stats.accuracy,
        "coverage": reference.stats.coverage,
        "correct_fraction": reference.stats.correct_fraction,
        "average_pte": average_pte,
        "overhead_bytes": profile.bytes_per_block(average_pte),
    }
    assert streamed["stats"] == {
        "observed": reference.stats.observed,
        "predicted": reference.stats.predicted,
        "correct": reference.stats.correct,
        "ignored": reference.stats.ignored,
    }
    assert streamed["events"] == len(messages)


# ----------------------------------------------------------------------
# 2 + 3. eviction discipline and counter balance, under arbitrary
#        interleavings of opens, feeds, closes, reaps, and time
# ----------------------------------------------------------------------
class SessionLifecycleMachine(RuleBasedStateMachine):
    TTL = 50.0

    def __init__(self):
        super().__init__()
        self.clock = FakeClock()
        self.table = SessionTable(
            max_sessions=3, ttl_s=self.TTL, max_events=20, clock=self.clock
        )
        #: id -> last-activity time of every session the model believes
        #: is live (the table must agree).
        self.live: dict[str, float] = {}

    # -- rules ----------------------------------------------------------
    @rule(seconds=st.floats(min_value=0.0, max_value=60.0))
    def advance(self, seconds):
        self.clock.now += seconds

    @rule()
    def open(self):
        try:
            session = self.table.open("MSP", num_procs=NUM_PROCS)
        except SessionTableFull:
            # Admission may only be refused while the table really is
            # full of unexpired sessions.
            unexpired = [
                t for t in self.live.values()
                if self.clock.now - t <= self.TTL
            ]
            assert len(unexpired) >= self.table.max_sessions
        else:
            self.live[session.id] = self.clock.now

    @precondition(lambda self: self.live)
    @rule(pick=st.integers(min_value=0), count=st.integers(min_value=1, max_value=8))
    def feed(self, pick, count):
        session_id = sorted(self.live)[pick % len(self.live)]
        batch = [
            Message(kind=MessageKind.READ, node=0, block=0) for _ in range(count)
        ]
        try:
            self.table.feed(session_id, batch)
        except UnknownSession:
            # Only an expired session may have been reaped.
            assert self.clock.now - self.live.pop(session_id) > self.TTL
        except SessionBoundExceeded:
            self.live[session_id] = self.clock.now  # feed() touched it
        else:
            self.live[session_id] = self.clock.now

    @precondition(lambda self: self.live)
    @rule(pick=st.integers(min_value=0))
    def close(self, pick):
        session_id = sorted(self.live)[pick % len(self.live)]
        try:
            self.table.close(session_id)
        except UnknownSession:
            assert self.clock.now - self.live[session_id] > self.TTL
        del self.live[session_id]

    @rule()
    def reap(self):
        for session in self.table.reap():
            assert self.clock.now - self.live.pop(session.id) > self.TTL

    # -- invariants -----------------------------------------------------
    @invariant()
    def active_sessions_are_within_ttl_or_model_live(self):
        # Anything still in the table is something the model believes
        # is live; anything the model believes is live AND fresh must
        # still be in the table (no premature eviction).
        table_ids = {s.id for s in self.table.sessions()}
        assert table_ids <= set(self.live)
        fresh = {
            session_id
            for session_id, touched in self.live.items()
            if self.clock.now - touched <= self.TTL
        }
        assert fresh <= table_ids

    @invariant()
    def counters_balance(self):
        table = self.table
        assert table.opened == table.active + table.closed + table.evicted


SessionLifecycleMachine.TestCase.settings = STANDARD_SETTINGS
TestSessionLifecycle = SessionLifecycleMachine.TestCase
