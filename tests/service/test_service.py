"""End-to-end tests: a real server on an ephemeral port, real sockets."""

import asyncio
import json

import pytest

from repro.eval.cli import main as cli_main
from repro.harness import ParallelRunner, ResultStore
from repro.service import ReproService, ServiceConfig

from tests.service.conftest import CALLS, gate
from tests.service.test_jobs import settle


async def http_request(
    port, target, method="GET", body=None, connection="close", return_headers=False
):
    """One request over a fresh connection; returns (status, json_payload).

    With ``return_headers=True`` a third element carries the response
    headers as a lower-cased-name dict, for tests asserting on
    ``Retry-After`` / ``Allow`` and friends.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = f"{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n"
        if body is not None:
            payload = json.dumps(body).encode()
            head += f"Content-Length: {len(payload)}\r\n\r\n"
            writer.write(head.encode() + payload)
        else:
            writer.write((head + "\r\n").encode())
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = None
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await reader.readexactly(length)
        if return_headers:
            return status, json.loads(data), headers
        return status, json.loads(data)
    finally:
        writer.close()


def service_config(tmp_path, **overrides):
    options = {"port": 0, "cache_dir": str(tmp_path / "cache")}
    options.update(overrides)
    return ServiceConfig(**options)


def run_with_service(tmp_path, scenario, **config_overrides):
    """Boot a service on an ephemeral port, run ``scenario(service)``."""

    async def main():
        service = ReproService(service_config(tmp_path, **config_overrides))
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestSmoke:
    def test_healthz_and_statz(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(service.port, "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, stats = await http_request(service.port, "/statz")
            assert status == 200
            assert stats["point_requests"] == 0
            assert stats["queue_depth_bound"] == service.config.max_pending
            assert stats["runner"]["cache_dir"].endswith("cache")

        run_with_service(tmp_path, scenario)

    def test_unknown_route_404_and_wrong_method_405(self, tmp_path):
        async def scenario(service):
            assert (await http_request(service.port, "/nope"))[0] == 404
            status, _ = await http_request(service.port, "/v1/point", method="POST", body={})
            assert status == 405
            status, _ = await http_request(service.port, "/v1/sweep")
            assert status == 405

        run_with_service(tmp_path, scenario)

    @pytest.mark.parametrize(
        "path, allowed",
        [
            ("/healthz", "GET"),
            ("/statz", "GET"),
            ("/v1/experiments", "GET"),
            ("/v1/experiments/figure7", "GET"),
            ("/v1/point", "GET"),
            ("/v1/sweep", "POST"),
            ("/v1/jobs", "GET"),
            ("/v1/jobs/job-00001", "GET"),
            ("/v1/sessions", "GET, POST"),
            ("/v1/sessions/sess-00001", "DELETE, GET"),
            ("/v1/sessions/sess-00001/events", "POST"),
        ],
    )
    def test_every_405_names_the_allowed_methods(self, tmp_path, path, allowed):
        """RFC 9110: a 405 MUST carry an Allow header; every route does."""

        async def scenario(service):
            status, body, headers = await http_request(
                service.port, path, method="PUT", body={}, return_headers=True
            )
            assert status == 405
            assert headers["allow"] == allowed
            assert allowed in body["error"]

        run_with_service(tmp_path, scenario)

    def test_slow_request_gets_408_not_silent_close(self, tmp_path):
        """A started-but-stalled request is not an idle connection: it
        gets an explicit 408 once request_timeout_s expires."""

        async def scenario(service):
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            try:
                # headers promise a body that never arrives
                writer.write(
                    b"POST /v1/sweep HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n"
                )
                await writer.drain()
                status_line = await asyncio.wait_for(reader.readline(), timeout=5)
                assert b"408" in status_line
            finally:
                writer.close()

        run_with_service(tmp_path, scenario, request_timeout_s=0.2)

    def test_keep_alive_serves_multiple_requests_per_connection(self, tmp_path):
        async def scenario(service):
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            try:
                for _ in range(3):
                    writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status_line = await reader.readline()
                    assert b"200" in status_line
                    length = None
                    while True:
                        line = await reader.readline()
                        if line == b"\r\n":
                            break
                        if line.lower().startswith(b"content-length"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
            finally:
                writer.close()

        run_with_service(tmp_path, scenario)


class TestPointEndpoint:
    def test_miss_then_hit_and_cli_sees_the_same_entry(self, tmp_path, capsys):
        async def scenario(service):
            target = "/v1/point?kind=analytic&panel=accuracy&points=3"
            status, first = await http_request(service.port, target)
            assert status == 200 and first["cached"] is False
            status, second = await http_request(service.port, target)
            assert status == 200 and second["cached"] is True
            assert second["result"] == first["result"]
            assert second["elapsed_s"] == first["elapsed_s"]  # original compute time
            return first

        first = run_with_service(tmp_path, scenario)

        # The CLI sweep over the same cache dir reports the point cached
        # and prints a bit-identical result.
        argv = [
            "sweep", "--kind", "analytic", "--axis", "panel=accuracy",
            "--set", "points=3", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert cli_main(argv) == 0
        captured = capsys.readouterr()
        assert "1 cached" in captured.err
        cli_result = json.loads(captured.out.strip().splitlines()[0])["result"]
        assert cli_result == first["result"]

    def test_prewarmed_cache_hit_runs_zero_computations(self, tmp_path):
        # Warm the cache exactly as a CLI run would...
        warm = ParallelRunner(store=ResultStore(tmp_path / "cache"))
        from repro.harness import SweepPoint

        point = SweepPoint.make("svc_probe", {"payload": 13})
        warmed = warm.run([point])
        assert CALLS["default"] == 1
        CALLS.clear()

        # ...then serve it: same bytes back, zero runner invocations.
        async def scenario(service):
            status, body = await http_request(
                service.port, "/v1/point?kind=svc_probe&payload=13"
            )
            assert status == 200
            assert body["cached"] is True
            assert body["result"] == warmed.values[0]
            assert CALLS["default"] == 0
            assert not service.runner.incremental_started

        run_with_service(tmp_path, scenario)

    def test_query_literals_match_cli_parsing(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(
                service.port,
                "/v1/point?kind=svc_probe&payload=%7B%22depth%22%3A%204%7D",
            )
            assert status == 200
            assert body["params"]["payload"] == {"depth": 4}
            assert body["result"]["echo"] == {"depth": 4}

        run_with_service(tmp_path, scenario)

    def test_selftest_kind_is_not_servable(self, tmp_path):
        """selftest can deliberately crash its host (behavior=crash);
        no HTTP client may reach it."""

        async def scenario(service):
            status, body = await http_request(
                service.port, "/v1/point?kind=selftest&behavior=crash"
            )
            assert status == 400 and "selftest" not in body["error"].split("known: ")[1]
            status, _ = await http_request(
                service.port,
                "/v1/sweep",
                method="POST",
                body={"kind": "selftest", "axes": {"payload": [1]}},
            )
            assert status == 400
            status, catalog = await http_request(service.port, "/v1/experiments")
            assert "selftest" not in catalog["kinds"]
            # and the server is demonstrably still alive:
            assert (await http_request(service.port, "/healthz"))[0] == 200

        run_with_service(tmp_path, scenario)

    def test_bad_requests_are_400(self, tmp_path):
        async def scenario(service):
            assert (await http_request(service.port, "/v1/point"))[0] == 400
            status, body = await http_request(service.port, "/v1/point?kind=nope")
            assert status == 400 and "unknown kind" in body["error"]
            status, _ = await http_request(
                service.port, "/v1/point?kind=svc_probe&_timeout_s=fast"
            )
            assert status == 400
            status, _ = await http_request(
                service.port, "/v1/point?kind=svc_probe&_bogus=1"
            )
            assert status == 400

        run_with_service(tmp_path, scenario)

    def test_unknown_engine_param_is_400_with_menu(self, tmp_path):
        """An invalid engine= query fails fast with the valid engines
        listed, before any simulation (or cache write) happens."""

        async def scenario(service):
            status, body = await http_request(
                service.port,
                "/v1/point?kind=speculation&app=em3d&engine=bogus",
            )
            assert status == 400
            assert "bogus" in body["error"]
            for engine in ("fast", "compiled", "reference"):
                assert engine in body["error"]
            status, body = await http_request(
                service.port,
                "/v1/point?kind=accuracy&app=em3d&engine=bogus",
            )
            assert status == 400 and "vectorized" in body["error"]
            # Sweep grids are validated point-by-point the same way.
            status, body = await http_request(
                service.port,
                "/v1/sweep",
                method="POST",
                body={
                    "kind": "speculation",
                    "axes": {"app": ["em3d"]},
                    "base": {"engine": "bogus"},
                },
            )
            assert status == 400 and "bogus" in body["error"]
            assert not list((tmp_path / "cache").glob("speculation/*.json"))

        run_with_service(tmp_path, scenario)

    def test_runner_failure_is_500(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(
                service.port, "/v1/point?kind=svc_probe&fail=true"
            )
            assert status == 500 and "sweep point failed" in body["error"]

        run_with_service(tmp_path, scenario)

    def test_concurrent_identical_requests_coalesce_over_http(self, tmp_path):
        async def scenario(service):
            target = "/v1/point?kind=svc_probe&payload=1&gate=http"
            requests = [
                asyncio.create_task(http_request(service.port, target))
                for _ in range(4)
            ]
            await settle(lambda: service.pool.in_flight == 1)
            gate("http").set()
            responses = await asyncio.gather(*requests)
            assert [status for status, _ in responses] == [200] * 4
            assert {body["result"]["echo"] for _, body in responses} == {1}
            assert CALLS["default"] == 1
            assert service.pool.stats.coalesced == 3

        run_with_service(tmp_path, scenario)

    def test_backpressure_returns_429_over_http(self, tmp_path):
        async def scenario(service):
            blocked = asyncio.create_task(
                http_request(service.port, "/v1/point?kind=svc_probe&payload=1&gate=full")
            )
            await settle(lambda: service.pool.in_flight == 1)
            status, body, headers = await http_request(
                service.port,
                "/v1/point?kind=svc_probe&payload=2",
                return_headers=True,
            )
            assert status == 429
            assert "queue is full" in body["error"]
            # The hint is derived from queue depth: full queue → 5.0s,
            # and it travels as a real RFC 9110 Retry-After header too
            # (delta-seconds, rounded up to whole seconds).
            assert body["retry_after_s"] == 5.0
            assert headers["retry-after"] == "5"
            gate("full").set()
            status, _ = await blocked
            assert status == 200

        run_with_service(tmp_path, scenario, max_pending=1)

    def test_timeout_returns_504_and_retry_hits_cache(self, tmp_path):
        async def scenario(service):
            target = "/v1/point?kind=svc_probe&payload=1&gate=slow"
            status, body = await http_request(service.port, target)
            assert status == 504 and "still" in body["error"]
            gate("slow").set()
            await settle(lambda: service.pool.in_flight == 0)
            status, body = await http_request(service.port, target)
            assert status == 200 and body["cached"] is True
            assert CALLS["default"] == 1

        run_with_service(tmp_path, scenario, timeout_s=0.05)


class TestSweepJobs:
    def test_submit_poll_fetch_results(self, tmp_path):
        async def scenario(service):
            status, accepted = await http_request(
                service.port,
                "/v1/sweep",
                method="POST",
                body={"kind": "svc_probe", "axes": {"payload": [1, 2, 3]}},
            )
            assert status == 202 and accepted["points"] == 3
            poll = accepted["poll"]
            for _ in range(200):
                status, job = await http_request(service.port, poll)
                assert status == 200
                if job["state"] != "running":
                    break
                await asyncio.sleep(0.01)
            assert job["state"] == "done" and job["done"] == 3
            status, detailed = await http_request(service.port, poll + "?results=1")
            assert [p["result"]["echo"] for p in detailed["points"]] == [1, 2, 3]
            status, listing = await http_request(service.port, "/v1/jobs")
            assert accepted["job"] in [j["job"] for j in listing["jobs"]]

        run_with_service(tmp_path, scenario)

    def test_sweep_validation_errors(self, tmp_path):
        async def scenario(service):
            cases = [
                ({"kind": "nope", "axes": {"a": [1]}}, 400),
                ({"kind": "svc_probe"}, 400),  # no axes
                ({"kind": "svc_probe", "axes": {"a": 1}}, 400),  # not a list
                ({"kind": "svc_probe", "axes": {"a": []}}, 400),  # empty axis
                ([1, 2], 400),  # not an object
            ]
            for body, expected in cases:
                status, _ = await http_request(
                    service.port, "/v1/sweep", method="POST", body=body
                )
                assert status == expected, body
            # grid size cap
            status, payload = await http_request(
                service.port,
                "/v1/sweep",
                method="POST",
                body={"kind": "svc_probe", "axes": {"a": list(range(40)), "b": list(range(40))}},
            )
            assert status == 413 and "split the sweep" in payload["error"]
            status, _ = await http_request(service.port, "/v1/jobs/job-missing")
            assert status == 404

        run_with_service(tmp_path, scenario)


class TestExperimentsEndpoint:
    def test_catalog_names_paper_and_beyond(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(service.port, "/v1/experiments")
            assert status == 200
            by_name = {e["name"]: e for e in body["experiments"]}
            assert by_name["figure7"]["paper"] is True
            assert by_name["scaling32"]["paper"] is False
            assert "32/64 nodes" in by_name["scaling32"]["description"]
            assert "speculation" in body["kinds"]

        run_with_service(tmp_path, scenario)

    def test_unknown_named_experiment_is_404(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(
                service.port, "/v1/experiments/figure99"
            )
            assert status == 404 and "figure99" in body["error"]
            status, _ = await http_request(
                service.port, "/v1/experiments/figure6", method="POST", body={}
            )
            assert status == 405

        run_with_service(tmp_path, scenario)

    def test_static_experiment_returns_inline(self, tmp_path):
        async def scenario(service):
            status, body = await http_request(service.port, "/v1/experiments/table1")
            assert status == 200
            assert body["experiment"] == "table1" and body["static"] is True
            names = [row[0] for row in body["result"]]
            assert any("Node" in name or "node" in name for name in names)

        run_with_service(tmp_path, scenario)

    def test_named_experiment_runs_as_background_job(self, tmp_path):
        async def scenario(service):
            status, accepted = await http_request(
                service.port, "/v1/experiments/figure6"
            )
            assert status == 202
            assert accepted["experiment"] == "figure6"
            assert accepted["points"] == 4  # the four Figure 6 panels
            for _ in range(500):
                status, job = await http_request(service.port, accepted["poll"])
                assert status == 200
                if job["state"] != "running":
                    break
                await asyncio.sleep(0.01)
            assert job["state"] == "done" and job["done"] == 4
            assert job["experiment"] == "figure6"
            # the job's points landed in the shared cache: fetching one
            # over /v1/point is now a pure hit
            status, point = await http_request(
                service.port, "/v1/point?kind=analytic&panel=accuracy&points=21"
            )
            assert status == 200 and point["cached"] is True

        run_with_service(tmp_path, scenario)

    def test_experiment_points_match_cli_driver(self, tmp_path):
        """The service job runs exactly the grid the CLI driver runs."""
        from repro.eval.experiments import accuracy_spec, experiment_spec

        assert experiment_spec("figure7").points() == accuracy_spec(False).points()
        spec = experiment_spec("figure7", fast=True)
        assert spec.points() == accuracy_spec(True).points()
        assert experiment_spec("table1") is None


class TestTraceCacheStats:
    def test_statz_reports_trace_cache_events(self, tmp_path):
        async def scenario(service):
            target = (
                "/v1/point?kind=accuracy&app=em3d&num_procs=8&iterations=3"
            )
            status, first = await http_request(service.port, target)
            assert status == 200 and first["cached"] is False
            status, stats = await http_request(service.port, "/statz")
            trace = stats["trace_cache"]
            assert trace["misses"] == 1 and trace["hits"] == 0
            assert trace["hit_rate"] == 0.0
            assert trace["dir"].endswith("cache")
            assert trace["entries"] == 1
            # the point-cache count excludes the compiled trace
            assert stats["runner"]["cache_entries"] == 1
            # a different depth recompiles nothing: the trace is shared
            status, second = await http_request(
                service.port, target + "&depth=2"
            )
            assert status == 200 and second["cached"] is False
            status, stats = await http_request(service.port, "/statz")
            trace = stats["trace_cache"]
            assert trace["misses"] == 1 and trace["hits"] == 1
            assert trace["hit_rate"] == 0.5

        run_with_service(tmp_path, scenario)

    def test_point_entry_records_trace_provenance(self, tmp_path):
        async def scenario(service):
            target = (
                "/v1/point?kind=accuracy&app=em3d&num_procs=8&iterations=3"
            )
            status, _body = await http_request(service.port, target)
            assert status == 200
            store = service.runner.store
            from repro.harness import SweepPoint

            entry = store.load_entry(
                SweepPoint.make(
                    "accuracy", {"app": "em3d", "num_procs": 8, "iterations": 3}
                )
            )
            assert entry.meta == {"trace_cache": {"hits": 0, "misses": 1}}

        run_with_service(tmp_path, scenario)


class TestClaimedService:
    def test_statz_claims_null_without_claim_dir(self, tmp_path):
        async def scenario(service):
            status, stats = await http_request(service.port, "/statz")
            assert status == 200
            assert stats["claims"] is None

        run_with_service(tmp_path, scenario)

    def test_claimed_replica_reports_claim_stats(self, tmp_path):
        """A replica configured with a claim dir wraps its runner and
        surfaces held/stolen/released counters in /statz."""

        async def scenario(service):
            target = "/v1/point?kind=svc_probe&payload=1"
            status, body = await http_request(service.port, target)
            assert status == 200 and body["cached"] is False
            status, stats = await http_request(service.port, "/statz")
            claims = stats["claims"]
            assert claims["owner"] == "replica-test"
            assert claims["claimed"] == 1
            assert claims["computed"] == 1
            assert claims["released"] == 1
            assert claims["held"] == 0 and claims["stolen"] == 0
            assert claims["dir"].endswith("claims")

        run_with_service(
            tmp_path,
            scenario,
            claim_dir=str(tmp_path / "cache" / "claims"),
            worker_id="replica-test",
        )
