"""Streaming prediction sessions: the table, the wire, and the client.

The unit half drives :class:`SessionTable` with a fake clock (TTL/LRU
eviction, admission backpressure, event bounds, counters).  The
end-to-end half boots a real server and streams traces through real
sockets with the real :mod:`repro.service.client`, pinning the
tentpole claim: a streamed session's final ``run`` object is
byte-identical to a batch accuracy run over the same event sequence.
"""

import asyncio
import json

import pytest

from repro.common.types import Message, MessageKind
from repro.eval.cli import main as cli_main
from repro.eval.accuracy import run_predictors
from repro.service.client import (
    SessionClientError,
    record_app_trace,
    replay_session,
)
from repro.service.sessions import (
    SessionBoundExceeded,
    SessionTable,
    SessionTableFull,
    UnknownSession,
    parse_event,
    parse_ndjson_events,
)

from tests.service.test_service import http_request, run_with_service


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_table(**overrides):
    clock = FakeClock()
    options = {"max_sessions": 4, "ttl_s": 60.0, "max_events": 100, "clock": clock}
    options.update(overrides)
    return SessionTable(**options), clock


def msg(kind=MessageKind.READ, node=0, block=0):
    return Message(kind=kind, node=node, block=block)


# ----------------------------------------------------------------------
# event codec
# ----------------------------------------------------------------------
class TestEventCodec:
    def test_round_trip(self):
        message = parse_event({"kind": "write", "node": 3, "block": 17}, num_procs=4)
        assert message == Message(kind=MessageKind.WRITE, node=3, block=17)

    @pytest.mark.parametrize(
        "event, complaint",
        [
            ("not-an-object", "JSON object"),
            ({"kind": "sneeze", "node": 0, "block": 0}, "bad event kind"),
            ({"kind": "read", "node": 4, "block": 0}, "out of range"),
            ({"kind": "read", "node": -1, "block": 0}, "non-negative"),
            ({"kind": "read", "node": True, "block": 0}, "non-negative"),
            ({"kind": "read", "node": 0, "block": "b"}, "block must be"),
            ({"kind": "read", "node": 0, "block": 0, "x": 1}, "unknown event field"),
        ],
    )
    def test_bad_events_are_rejected(self, event, complaint):
        with pytest.raises(ValueError, match=complaint):
            parse_event(event, num_procs=4)

    def test_ndjson_errors_name_the_line(self):
        body = b'{"kind": "read", "node": 0, "block": 0}\n{"kind": "nope"}\n'
        with pytest.raises(ValueError, match="line 2"):
            parse_ndjson_events(body, num_procs=4)

    def test_ndjson_skips_blank_lines(self):
        body = b'\n{"kind": "read", "node": 1, "block": 2}\n\n'
        assert parse_ndjson_events(body, num_procs=4) == [
            Message(kind=MessageKind.READ, node=1, block=2)
        ]


# ----------------------------------------------------------------------
# the table
# ----------------------------------------------------------------------
class TestSessionTable:
    def test_open_feed_close_lifecycle(self):
        table, clock = make_table()
        session = table.open("MSP", depth=1, num_procs=4)
        lines = table.feed(session.id, [msg(MessageKind.WRITE, node=n) for n in (0, 1)])
        assert [line["seq"] for line in lines] == [1, 2]
        summary = table.close(session.id)
        assert summary["events"] == 2
        assert set(summary["run"]) == {
            "accuracy",
            "coverage",
            "correct_fraction",
            "average_pte",
            "overhead_bytes",
        }
        assert table.stats() == {
            "max_sessions": 4,
            "ttl_s": 60.0,
            "max_events": 100,
            "active": 0,
            "opened": 1,
            "closed": 1,
            "evicted": 0,
            "events_observed": 2,
            "rejected_full": 0,
            "rejected_bound": 0,
        }
        with pytest.raises(UnknownSession):
            table.feed(session.id, [msg()])

    def test_full_table_rejects_with_ttl_derived_hint(self):
        table, clock = make_table(max_sessions=2)
        first = table.open("MSP")
        clock.advance(45.0)
        table.open("Cosmos")
        with pytest.raises(SessionTableFull) as excinfo:
            table.open("VMSP")
        # The LRU session (first, idle 45s of a 60s TTL) frees its slot
        # in 15s — that is the hint, not a constant.
        assert excinfo.value.retry_after_s == pytest.approx(15.0)
        assert table.rejected_full == 1
        # Once it expires, admission succeeds again.
        clock.advance(16.0)
        table.open("VMSP")
        assert table.evicted == 1 and first.id not in [s.id for s in table.sessions()]

    def test_ttl_eviction_is_lazy_and_lru_ordered(self):
        table, clock = make_table()
        stale = table.open("MSP")
        clock.advance(30.0)
        fresh = table.open("MSP")
        clock.advance(31.0)  # stale idle 61s, fresh idle 31s
        with pytest.raises(UnknownSession):
            table.peek(stale.id)
        assert table.peek(fresh.id) is fresh
        assert table.evicted == 1

    def test_touch_resets_the_idle_clock(self):
        table, clock = make_table()
        session = table.open("MSP")
        for _ in range(5):
            clock.advance(45.0)  # past nothing: each feed re-arms the TTL
            table.feed(session.id, [msg()])
        assert table.peek(session.id) is session
        assert table.evicted == 0

    def test_status_peek_does_not_touch(self):
        table, clock = make_table()
        session = table.open("MSP")
        clock.advance(45.0)
        table.peek(session.id)
        clock.advance(30.0)  # 75s since last *activity*; peek didn't reset
        with pytest.raises(UnknownSession):
            table.peek(session.id)

    def test_event_bound_rejects_batch_atomically(self):
        table, clock = make_table(max_events=10)
        session = table.open("MSP", num_procs=4)
        table.feed(session.id, [msg() for _ in range(8)])
        with pytest.raises(SessionBoundExceeded):
            table.feed(session.id, [msg() for _ in range(3)])
        # The rejected batch left the session untouched: not even its
        # first two events were applied.
        assert session.events == 8
        assert table.rejected_bound == 1 and table.events_observed == 8
        # An exactly-fitting batch still goes through.
        table.feed(session.id, [msg(), msg()])
        assert session.events == 10

    def test_unknown_predictor_and_bad_parameters(self):
        table, _ = make_table()
        with pytest.raises(ValueError, match="unknown predictor"):
            table.open("Oracle")
        with pytest.raises(ValueError, match="depth"):
            table.open("MSP", depth=0)
        with pytest.raises(ValueError, match="num_procs"):
            table.open("MSP", num_procs=0)
        assert table.opened == 0


# ----------------------------------------------------------------------
# end to end: real server, real sockets, real client
# ----------------------------------------------------------------------
TRACE_KWARGS = {"num_procs": 4, "iterations": 2}


class TestSessionsOverHttp:
    @pytest.mark.parametrize("predictor", ["Cosmos", "MSP", "VMSP"])
    @pytest.mark.parametrize("depth", [1, 2])
    def test_streamed_session_matches_batch_run_bit_for_bit(
        self, tmp_path, predictor, depth
    ):
        """The tentpole golden test: stream ≡ batch, byte-identical."""
        events = record_app_trace("em3d", **TRACE_KWARGS)
        reference = run_predictors(
            "em3d", depth=depth, predictors=(predictor,), engine="reference",
            **TRACE_KWARGS,
        )[predictor]
        expected = json.dumps(
            {
                "accuracy": reference.accuracy,
                "coverage": reference.coverage,
                "correct_fraction": reference.correct_fraction,
                "average_pte": reference.average_pte,
                "overhead_bytes": reference.overhead_bytes,
            },
            sort_keys=True,
        )

        async def scenario(service):
            lines = []
            summary = await asyncio.to_thread(
                replay_session,
                f"http://127.0.0.1:{service.port}",
                events,
                predictor=predictor,
                depth=depth,
                num_procs=TRACE_KWARGS["num_procs"],
                batch_size=100,
                on_line=lines.append,
            )
            assert json.dumps(summary["run"], sort_keys=True) == expected
            # Every event earned exactly one prediction line, in order.
            assert [line["seq"] for line in lines] == list(
                range(1, len(events) + 1)
            )
            # The per-event running totals end where the summary ends.
            assert lines[-1]["accuracy"] == summary["run"]["accuracy"]
            assert lines[-1]["coverage"] == summary["run"]["coverage"]

        run_with_service(tmp_path, scenario)

    def test_events_stream_back_chunked(self, tmp_path):
        """The /events response really uses chunked framing on the wire."""

        async def scenario(service):
            status, opened = await http_request(
                service.port, "/v1/sessions", method="POST", body={"num_procs": 4}
            )
            assert status == 201 and opened["predictor"] == "MSP"
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            try:
                payload = b'{"kind": "read", "node": 1, "block": 0}\n' * 3
                writer.write(
                    f"POST {opened['events_url']} HTTP/1.1\r\nHost: t\r\n"
                    f"Connection: close\r\nContent-Length: {len(payload)}\r\n"
                    "\r\n".encode() + payload
                )
                await writer.drain()
                assert b"200" in await reader.readline()
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                assert headers["transfer-encoding"] == "chunked"
                assert headers["x-session-events"] == "3"
                assert "content-length" not in headers
                # Decode the chunked body by hand: size line, data, CRLF.
                body = b""
                while True:
                    size = int((await reader.readline()).strip(), 16)
                    if size == 0:
                        await reader.readline()
                        break
                    body += await reader.readexactly(size)
                    await reader.readexactly(2)
                lines = [json.loads(l) for l in body.splitlines()]
                assert [line["seq"] for line in lines] == [1, 2, 3]
            finally:
                writer.close()

        run_with_service(tmp_path, scenario)

    def test_session_error_paths_over_http(self, tmp_path):
        async def scenario(service):
            # Unknown session: events, status, and close all 404.
            for method, target in [
                ("POST", "/v1/sessions/sess-99999/events"),
                ("GET", "/v1/sessions/sess-99999"),
                ("DELETE", "/v1/sessions/sess-99999"),
            ]:
                status, body = await http_request(
                    service.port, target, method=method,
                    body={} if method == "POST" else None,
                )
                assert status == 404 and "no such session" in body["error"]
            # Bad open bodies.
            status, body = await http_request(
                service.port, "/v1/sessions", method="POST",
                body={"predictor": "Oracle"},
            )
            assert status == 400 and "unknown predictor" in body["error"]
            status, body = await http_request(
                service.port, "/v1/sessions", method="POST", body={"colour": "red"}
            )
            assert status == 400 and "unknown session field" in body["error"]
            # A bad event line is a clean 400 naming the line, and the
            # batch is not applied.
            status, opened = await http_request(
                service.port, "/v1/sessions", method="POST", body={"num_procs": 2}
            )
            assert status == 201
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            try:
                payload = (
                    b'{"kind": "read", "node": 0, "block": 0}\n'
                    b'{"kind": "read", "node": 9, "block": 0}\n'
                )
                writer.write(
                    f"POST {opened['events_url']} HTTP/1.1\r\nHost: t\r\n"
                    f"Connection: close\r\nContent-Length: {len(payload)}\r\n"
                    "\r\n".encode() + payload
                )
                await writer.drain()
                assert b"400" in await reader.readline()
            finally:
                writer.close()
            status, body = await http_request(
                service.port, f"/v1/sessions/{opened['session']}"
            )
            assert status == 200 and body["events"] == 0

        run_with_service(tmp_path, scenario)

    def test_table_full_maps_to_429_with_retry_after(self, tmp_path):
        async def scenario(service):
            status, _ = await http_request(
                service.port, "/v1/sessions", method="POST", body={}
            )
            assert status == 201
            status, body, headers = await http_request(
                service.port, "/v1/sessions", method="POST", body={},
                return_headers=True,
            )
            assert status == 429
            assert "session table is full" in body["error"]
            assert body["retry_after_s"] >= 1.0
            assert int(headers["retry-after"]) >= 1
            stats = service.sessions.stats()
            assert stats["rejected_full"] == 1 and stats["active"] == 1

        run_with_service(tmp_path, scenario, max_sessions=1)

    def test_event_bound_maps_to_413(self, tmp_path):
        async def scenario(service):
            events = record_app_trace("em3d", num_procs=4, iterations=1)
            with pytest.raises(SessionClientError) as excinfo:
                await asyncio.to_thread(
                    replay_session,
                    f"http://127.0.0.1:{service.port}",
                    events,
                    num_procs=4,
                    batch_size=len(events),
                )
            assert excinfo.value.status == 413

        run_with_service(tmp_path, scenario, session_max_events=10)

    def test_session_cli_records_replays_and_saves_traces(self, tmp_path, capsys):
        """``repro-paper session`` end to end: record from an app, save
        the trace, replay the saved file — identical summaries."""
        trace_file = tmp_path / "em3d.ndjson"

        async def scenario(service):
            url = f"http://127.0.0.1:{service.port}"
            rc = await asyncio.to_thread(
                cli_main,
                [
                    "session", "--url", url, "--app", "em3d",
                    "--num-procs", "4", "--iterations", "1",
                    "--save-trace", str(trace_file),
                ],
            )
            assert rc == 0
            rc = await asyncio.to_thread(
                cli_main,
                [
                    "session", "--url", url, "--trace", str(trace_file),
                    "--num-procs", "4",
                ],
            )
            assert rc == 0

        run_with_service(tmp_path, scenario)
        lines = capsys.readouterr().out.strip().splitlines()
        recorded, replayed = (json.loads(line) for line in lines)
        assert recorded["events"] == replayed["events"] > 0
        assert recorded["run"] == replayed["run"]
        assert trace_file.read_text().count("\n") == recorded["events"]

    def test_statz_and_session_list_reflect_lifecycle(self, tmp_path):
        async def scenario(service):
            events = record_app_trace("em3d", num_procs=4, iterations=1)
            await asyncio.to_thread(
                replay_session,
                f"http://127.0.0.1:{service.port}",
                events,
                num_procs=4,
            )
            status, opened = await http_request(
                service.port, "/v1/sessions", method="POST", body={"num_procs": 4}
            )
            assert status == 201
            status, listing = await http_request(service.port, "/v1/sessions")
            assert status == 200
            assert [s["session"] for s in listing["sessions"]] == [opened["session"]]
            status, statz = await http_request(service.port, "/statz")
            assert status == 200
            sessions = statz["sessions"]
            assert sessions["opened"] == 2
            assert sessions["closed"] == 1
            assert sessions["active"] == 1
            assert sessions["events_observed"] == len(events)

        run_with_service(tmp_path, scenario)
