"""Test suite for the MSP reproduction.

This package marker exists so shared test infrastructure — notably the
Hypothesis strategies under ``tests.strategies`` — is importable from
any test module.  Individual test directories stay plain directories.
"""
