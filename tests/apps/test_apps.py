"""Structural tests for the seven application kernels."""

import pytest

from repro.apps import APP_NAMES, make_app
from repro.apps.base import MemRead, MemWrite, Workload
from repro.apps.registry import table2_rows
from repro.protocol.epochs import ReadEpoch, WriteEpoch
from repro.sim.address import home_of


@pytest.fixture(scope="module")
def workloads() -> dict[str, Workload]:
    return {name: make_app(name, iterations=4).build() for name in APP_NAMES}


class TestRegistry:
    def test_all_seven_table2_apps(self):
        assert APP_NAMES == (
            "appbt",
            "barnes",
            "em3d",
            "moldyn",
            "ocean",
            "tomcatv",
            "unstructured",
        )

    def test_unknown_app_raises(self):
        with pytest.raises(ValueError, match="unknown application"):
            make_app("linpack")

    def test_table2_rows_carry_paper_inputs(self):
        rows = dict((name, (inputs, iters)) for name, inputs, iters in table2_rows())
        assert rows["em3d"] == ("76800 nodes, 15% remote", 50)
        assert rows["barnes"] == ("4K particles", 21)
        assert rows["appbt"][1] == 40

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_iterations_validated(self, name):
        with pytest.raises(ValueError):
            make_app(name, iterations=0)


@pytest.mark.parametrize("name", APP_NAMES)
class TestEveryApp:
    def test_builds_nonempty_workload(self, name, workloads):
        workload = workloads[name]
        assert workload.phases
        assert workload.scripts
        assert workload.num_procs == 16

    def test_deterministic_for_seed(self, name):
        a = make_app(name, iterations=3, seed=5).build()
        b = make_app(name, iterations=3, seed=5).build()
        assert [s.epochs for s in a.block_scripts()] == [
            s.epochs for s in b.block_scripts()
        ]

    def test_seed_changes_workload_shape_or_jitter(self, name):
        a = make_app(name, iterations=3, seed=5).build()
        b = make_app(name, iterations=3, seed=6).build()
        ops_a = [(p.name, p.op_count()) for p in a.phases]
        ops_b = [(p.name, p.op_count()) for p in b.phases]
        # Phases line up structurally even when content differs.
        assert [n for n, _ in ops_a] == [n for n, _ in ops_b]

    def test_program_and_block_views_agree_on_access_counts(self, name, workloads):
        workload = workloads[name]
        program_reads = program_writes = 0
        for phase in workload.phases:
            for ops in phase.ops.values():
                for op in ops:
                    if isinstance(op, MemRead):
                        program_reads += 1
                    elif isinstance(op, MemWrite):
                        program_writes += 1
        script_reads = script_writes = 0
        for script in workload.block_scripts():
            for epoch in script:
                if isinstance(epoch, ReadEpoch):
                    script_reads += len(epoch.readers)
                else:
                    script_writes += 1
        # The block view may merge duplicate same-epoch reads; it can
        # never exceed the program view.
        assert script_writes == program_writes
        assert script_reads <= program_reads

    def test_blocks_homed_within_machine(self, name, workloads):
        for block in workloads[name].blocks():
            assert 0 <= home_of(block, 16) < 16

    def test_scales_to_other_machine_sizes(self, name):
        workload = make_app(name, num_procs=8, iterations=2).build()
        assert workload.num_procs == 8
        for script in workload.block_scripts():
            for epoch in script:
                nodes = (
                    epoch.readers
                    if isinstance(epoch, ReadEpoch)
                    else (epoch.writer,)
                )
                for node in nodes:
                    assert 0 <= node < 8


class TestSharingSignatures:
    """Each kernel must exhibit the sharing pattern the paper ascribes."""

    def test_em3d_is_pure_producer_consumer(self, workloads):
        for script in workloads["em3d"].block_scripts():
            writers = {
                e.writer for e in script if isinstance(e, WriteEpoch)
            }
            assert len(writers) == 1  # single static producer per block

    def test_em3d_producer_never_reads_own_block(self, workloads):
        for script in workloads["em3d"].block_scripts():
            writer = next(
                e.writer for e in script if isinstance(e, WriteEpoch)
            )
            for epoch in script:
                if isinstance(epoch, ReadEpoch):
                    assert writer not in epoch.readers

    def test_tomcatv_blocks_have_producer_and_single_consumer(self, workloads):
        for script in workloads["tomcatv"].block_scripts():
            writers = {e.writer for e in script if isinstance(e, WriteEpoch)}
            readers = set()
            for epoch in script:
                if isinstance(epoch, ReadEpoch):
                    readers.update(epoch.readers)
            assert len(writers) == 1
            # Exactly the producer plus one consumer read the block.
            assert len(readers - writers) == 1

    def test_unstructured_has_wide_read_sharing(self, workloads):
        widths = []
        for script in workloads["unstructured"].block_scripts():
            for epoch in script:
                if isinstance(epoch, ReadEpoch) and len(epoch.readers) > 1:
                    widths.append(len(epoch.readers))
        assert max(widths) >= 9  # the paper's ~12 readers per write

    def test_moldyn_has_migratory_blocks(self, workloads):
        migratory = 0
        for script in workloads["moldyn"].block_scripts():
            writers = {e.writer for e in script if isinstance(e, WriteEpoch)}
            if len(writers) > 1:
                migratory += 1
        assert migratory > 0

    def test_barnes_reader_sets_churn(self, workloads):
        changed = 0
        for script in workloads["barnes"].block_scripts():
            sets = [
                frozenset(e.readers)
                for e in script
                if isinstance(e, ReadEpoch) and len(e.readers) > 0
            ]
            if len(set(sets)) > 1:
                changed += 1
        assert changed > 0

    def test_appbt_edge_blocks_alternate_consumers(self, workloads):
        alternating = 0
        for script in workloads["appbt"].block_scripts():
            consumer_sets = [
                frozenset(e.readers)
                for e in script
                if isinstance(e, ReadEpoch)
            ]
            distinct = {s for s in consumer_sets if s}
            if len(distinct) >= 2:
                alternating += 1
        assert alternating > 0

    def test_ocean_owner_writes_twice_per_step(self, workloads):
        # Back-to-back write epochs by the same owner (multigrid sweeps).
        double_writes = 0
        for script in workloads["ocean"].block_scripts():
            epochs = list(script)
            for a, b in zip(epochs, epochs[1:]):
                if (
                    isinstance(a, WriteEpoch)
                    and isinstance(b, WriteEpoch)
                    and a.writer == b.writer
                ):
                    double_writes += 1
        assert double_writes > 0
