"""Tests for the workload builder (both views must agree)."""

import pytest

from repro.apps.base import (
    Compute,
    LockAcquire,
    LockRelease,
    MemRead,
    MemWrite,
    WorkloadBuilder,
)
from repro.protocol.epochs import ReadEpoch, WriteEpoch


class TestPhases:
    def test_ops_require_open_phase(self):
        builder = WorkloadBuilder("t", 4)
        with pytest.raises(RuntimeError, match="inside a phase"):
            builder.read(0, 1)

    def test_phases_cannot_nest(self):
        builder = WorkloadBuilder("t", 4)
        with pytest.raises(RuntimeError, match="nest"):
            with builder.phase("a"):
                with builder.phase("b"):
                    pass

    def test_finish_inside_phase_rejected(self):
        builder = WorkloadBuilder("t", 4)
        with pytest.raises(RuntimeError):
            with builder.phase("a"):
                builder.finish()

    def test_finished_builder_is_closed(self):
        builder = WorkloadBuilder("t", 4)
        builder.finish()
        with pytest.raises(RuntimeError, match="finished"):
            with builder.phase("late"):
                pass

    def test_every_processor_has_an_op_list(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a"):
            builder.read(0, 1)
        workload = builder.finish()
        phase = workload.phases[0]
        assert set(phase.ops) == {0, 1, 2, 3}
        assert phase.ops_for(3) == []


class TestProgramView:
    def test_ops_in_program_order(self):
        builder = WorkloadBuilder("t", 2)
        with builder.phase("a"):
            builder.compute(0, 10)
            builder.read(0, 5)
            builder.write(0, 5)
            builder.lock(0, 1)
            builder.unlock(0, 1)
        workload = builder.finish()
        ops = workload.phases[0].ops_for(0)
        assert [type(op) for op in ops] == [
            Compute,
            MemRead,
            MemWrite,
            LockAcquire,
            LockRelease,
        ]

    def test_zero_compute_is_elided(self):
        builder = WorkloadBuilder("t", 2)
        with builder.phase("a"):
            builder.compute(0, 0)
        assert builder.finish().phases[0].ops_for(0) == []

    def test_negative_compute_rejected(self):
        builder = WorkloadBuilder("t", 2)
        with builder.phase("a"):
            with pytest.raises(ValueError):
                builder.compute(0, -1)

    def test_locks_are_recorded(self):
        builder = WorkloadBuilder("t", 2)
        with builder.phase("a"):
            builder.lock(0, 99)
            builder.unlock(0, 99)
        assert builder.finish().locks == {99}


class TestBlockView:
    def test_consecutive_reads_form_one_epoch(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a", racy_reads=True, racy_acks=True):
            builder.read(1, 7)
            builder.read(2, 7)
        script = builder.finish().scripts[7]
        assert len(script) == 1
        epoch = script.epochs[0]
        assert isinstance(epoch, ReadEpoch)
        assert epoch.readers == (1, 2)
        assert epoch.racy and epoch.racy_acks

    def test_write_flushes_pending_reads(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a"):
            builder.read(1, 7)
            builder.write(0, 7)
            builder.read(2, 7)
        script = builder.finish().scripts[7]
        assert [type(e) for e in script] == [ReadEpoch, WriteEpoch, ReadEpoch]

    def test_phase_boundary_closes_epochs(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a", racy_reads=True):
            builder.read(1, 7)
        with builder.phase("b"):
            builder.read(2, 7)
        script = builder.finish().scripts[7]
        assert len(script) == 2
        assert script.epochs[0].racy
        assert not script.epochs[1].racy

    def test_duplicate_reader_in_epoch_is_dropped(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a"):
            builder.read(1, 7)
            builder.read(1, 7)
        script = builder.finish().scripts[7]
        assert script.epochs[0].readers == (1,)

    def test_blocks_listing_is_sorted(self):
        builder = WorkloadBuilder("t", 4)
        with builder.phase("a"):
            builder.write(0, 9)
            builder.write(0, 3)
        workload = builder.finish()
        assert workload.blocks() == [3, 9]
        assert [s.block for s in workload.block_scripts()] == [3, 9]

    def test_total_ops(self):
        builder = WorkloadBuilder("t", 2)
        with builder.phase("a"):
            builder.read(0, 1)
            builder.compute(1, 5)
        assert builder.finish().total_ops() == 2

    def test_too_few_processors_rejected(self):
        with pytest.raises(ValueError):
            WorkloadBuilder("t", 1)
