"""Tests for the core message/access vocabulary."""

import pytest

from repro.common.types import (
    ACK_KINDS,
    REQUEST_KINDS,
    DirectoryState,
    Message,
    MessageKind,
)


class TestMessageKind:
    def test_request_kinds_are_exactly_three(self):
        assert REQUEST_KINDS == {
            MessageKind.READ,
            MessageKind.WRITE,
            MessageKind.UPGRADE,
        }

    def test_ack_kinds_are_exactly_two(self):
        assert ACK_KINDS == {MessageKind.ACK, MessageKind.WRITEBACK}

    def test_kind_partition_is_total_and_disjoint(self):
        assert REQUEST_KINDS | ACK_KINDS == set(MessageKind)
        assert not REQUEST_KINDS & ACK_KINDS

    @pytest.mark.parametrize("kind", sorted(REQUEST_KINDS, key=lambda k: k.value))
    def test_is_request_flag(self, kind):
        assert kind.is_request
        assert not kind.is_ack

    @pytest.mark.parametrize("kind", sorted(ACK_KINDS, key=lambda k: k.value))
    def test_is_ack_flag(self, kind):
        assert kind.is_ack
        assert not kind.is_request


class TestMessage:
    def test_token_excludes_block(self):
        message = Message(kind=MessageKind.READ, node=4, block=0x100)
        assert message.token == (MessageKind.READ, 4)

    def test_messages_compare_by_value(self):
        a = Message(kind=MessageKind.ACK, node=1, block=7)
        b = Message(kind=MessageKind.ACK, node=1, block=7)
        assert a == b
        assert hash(a) == hash(b)

    def test_is_request_delegates_to_kind(self):
        request = Message(kind=MessageKind.UPGRADE, node=0, block=1)
        ack = Message(kind=MessageKind.WRITEBACK, node=0, block=1)
        assert request.is_request
        assert not ack.is_request

    def test_str_shows_kind_node_and_block(self):
        message = Message(kind=MessageKind.READ, node=3, block=0x10)
        assert "read" in str(message)
        assert "P3" in str(message)


class TestDirectoryState:
    def test_three_stable_states(self):
        assert {s.name for s in DirectoryState} == {"IDLE", "SHARED", "EXCLUSIVE"}
