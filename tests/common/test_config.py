"""Tests for the Table 1 system configuration."""

import pytest

from repro.common.config import SystemConfig, table1_rows


class TestSystemConfig:
    def test_defaults_match_paper_table1(self):
        cfg = SystemConfig()
        assert cfg.num_nodes == 16
        assert cfg.processor_mhz == 600
        assert cfg.processor_cache_bytes == 1 << 20
        assert cfg.memory_bus_mhz == 100
        assert cfg.local_access_cycles == 104
        assert cfg.network_cycles == 80

    def test_round_trip_is_418_cycles(self):
        assert SystemConfig().round_trip_cycles == 418

    def test_rtl_is_about_four(self):
        assert SystemConfig().remote_to_local_ratio == pytest.approx(4.0, abs=0.1)

    def test_block_and_page_sizes(self):
        cfg = SystemConfig()
        assert cfg.block_bytes == 32
        assert cfg.blocks_per_page == cfg.page_bytes // cfg.block_bytes

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=1)

    def test_rejects_misaligned_page(self):
        with pytest.raises(ValueError):
            SystemConfig(block_bytes=48, page_bytes=100)

    def test_home_of_covers_all_nodes(self):
        cfg = SystemConfig(num_nodes=4)
        from repro.common.config import HOME_SHIFT

        homes = {cfg.home_of(n << HOME_SHIFT) for n in range(4)}
        assert homes == {0, 1, 2, 3}

    def test_custom_latency_changes_round_trip(self):
        cfg = SystemConfig(network_cycles=10)
        assert cfg.round_trip_cycles == 2 * (25 + 10) + 2 * 104


class TestTable1Rows:
    def test_has_all_eight_rows(self):
        rows = table1_rows()
        assert len(rows) == 8

    def test_values_render_paper_numbers(self):
        rendered = dict(table1_rows())
        assert rendered["Number of nodes"] == "16"
        assert rendered["Round-trip miss latency"] == "418 cycles"
        assert rendered["Remote-to-local access ratio (rtl)"] == "~4"
