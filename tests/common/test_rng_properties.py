"""Property-based tests for DeterministicRng.

These lock in the contracts the parallel harness relies on: streams are
fully determined by (seed, label path) — independent of sibling
creation order and of which process draws them — and helper methods
never mutate caller state.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from tests.strategies import (
    DETERMINISM_SETTINGS,
    QUICK_SETTINGS,
    STANDARD_SETTINGS,
    rng_labels,
    seeds,
)

pytestmark = pytest.mark.property


def _draws(seed, label, count=8):
    """Worker helper: the first ``count`` draws of a labelled stream."""
    rng = DeterministicRng(seed, label)
    return [rng.random() for _ in range(count)]


class TestSplitIndependence:
    @given(
        seed=seeds(),
        target=rng_labels(),
        siblings=st.lists(rng_labels(), max_size=5),
    )
    @DETERMINISM_SETTINGS
    def test_split_stream_independent_of_sibling_creation_order(
        self, seed, target, siblings
    ):
        first = DeterministicRng(seed)
        stream_before = first.split(target)
        for label in siblings:
            first.split(label).random()  # create and consume siblings

        second = DeterministicRng(seed)
        for label in reversed(siblings):
            second.split(label).random()
        stream_after = second.split(target)

        assert [stream_before.random() for _ in range(8)] == [
            stream_after.random() for _ in range(8)
        ]

    @given(seed=seeds(), path=st.lists(rng_labels(), min_size=1, max_size=4))
    @STANDARD_SETTINGS
    def test_nested_split_depends_only_on_path(self, seed, path):
        walk = DeterministicRng(seed)
        for label in path:
            walk = walk.split(label)
        direct = DeterministicRng(seed, "/".join(["root", *path]))
        assert [walk.random() for _ in range(4)] == [
            direct.random() for _ in range(4)
        ]


class TestCrossProcessIdentity:
    @pytest.fixture(scope="class")
    def pool(self):
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as executor:
            yield executor

    @given(seed=seeds(), label=rng_labels())
    @QUICK_SETTINGS
    def test_same_seed_and_label_bit_identical_across_processes(
        self, pool, seed, label
    ):
        local = _draws(seed, label)
        remote = pool.submit(_draws, seed, label).result(timeout=60)
        assert local == remote


class TestHelperBounds:
    @given(high=st.integers(min_value=0, max_value=100))
    @STANDARD_SETTINGS
    def test_randint_within_bounds(self, high):
        rng = DeterministicRng(3)
        for _ in range(20):
            assert 0 <= rng.randint(0, high) <= high

    @given(items=st.lists(st.integers(), min_size=1, max_size=20), seed=seeds())
    @STANDARD_SETTINGS
    def test_sample_is_subset(self, items, seed):
        rng = DeterministicRng(seed)
        k = len(items) // 2
        sampled = rng.sample(items, k)
        assert len(sampled) == k
        for item in sampled:
            assert item in items


class TestHelperPurity:
    @given(items=st.lists(st.integers()), seed=seeds())
    @DETERMINISM_SETTINGS
    def test_shuffled_never_mutates_its_input(self, items, seed):
        snapshot = list(items)
        out = DeterministicRng(seed).shuffled(items)
        assert items == snapshot
        assert sorted(out) == sorted(snapshot)
        assert out is not items

    @given(items=st.lists(st.integers(), min_size=1), seed=seeds())
    @STANDARD_SETTINGS
    def test_shuffled_is_deterministic_per_seed(self, items, seed):
        assert DeterministicRng(seed).shuffled(items) == DeterministicRng(
            seed
        ).shuffled(items)
