"""Tests for deterministic, splittable randomness.

Property-based coverage lives in ``test_rng_properties.py`` so this
module stays runnable when Hypothesis is not installed.
"""

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(1)
        b = DeterministicRng(1)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_split_streams_are_independent_of_consumption(self):
        root = DeterministicRng(5)
        early = root.split("x").random()
        for _ in range(100):
            root.random()
        late = root.split("x").random()
        assert early == late

    def test_split_labels_distinguish(self):
        root = DeterministicRng(5)
        assert root.split("a").random() != root.split("b").random()

    def test_nested_split_path(self):
        root = DeterministicRng(5)
        assert root.split("a").split("b").label == "root/a/b"


class TestHelpers:
    def test_shuffled_leaves_input_untouched(self):
        rng = DeterministicRng(9)
        items = [1, 2, 3, 4, 5]
        out = rng.shuffled(items)
        assert items == [1, 2, 3, 4, 5]
        assert sorted(out) == items

    def test_chance_extremes(self):
        rng = DeterministicRng(9)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))
