"""Tests for counters and stat sets."""

from repro.common.stats import Counter, StatSet


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0

    def test_add_and_reset(self):
        counter = Counter()
        counter.add()
        counter.add(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_int_conversion(self):
        counter = Counter(7)
        assert int(counter) == 7


class TestStatSet:
    def test_missing_counter_reads_zero(self):
        assert StatSet()["anything"] == 0

    def test_bump_accumulates(self):
        stats = StatSet()
        stats.bump("x")
        stats.bump("x", 2)
        assert stats["x"] == 3

    def test_contains(self):
        stats = StatSet()
        stats.bump("seen")
        assert "seen" in stats
        assert "unseen" not in stats

    def test_ratio(self):
        stats = StatSet()
        stats.bump("hit", 3)
        stats.bump("total", 4)
        assert stats.ratio("hit", "total") == 0.75

    def test_ratio_zero_denominator(self):
        assert StatSet().ratio("a", "b") == 0.0

    def test_merge(self):
        a, b = StatSet(), StatSet()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 5)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 5

    def test_as_dict_snapshot(self):
        stats = StatSet()
        stats.bump("k")
        snapshot = stats.as_dict()
        stats.bump("k")
        assert snapshot == {"k": 1}
