"""``repro-paper fleet``: claims-directory status rendering."""

import json

import pytest

from repro.eval.cli import main as cli_main
from repro.harness import ClaimBoard


@pytest.fixture
def board_dir(tmp_path):
    """A claims directory two simulated workers have worked through."""
    claims = tmp_path / "claims"
    left = ClaimBoard(claims, owner="left", ttl_s=60)
    right = ClaimBoard(claims, owner="right", ttl_s=60)
    for key in ("k-aaa", "k-bbb"):
        assert left.acquire(key)
        left.note_computed(key)
        left.release(key)
    assert right.acquire("k-ccc")
    right.note_computed("k-ccc")
    right.release("k-ccc")
    assert right.acquire("k-held")  # left held: shows as an active claim
    return claims


class TestFleetCommand:
    def test_human_table(self, board_dir, capsys):
        assert cli_main(["fleet", "--claim-dir", str(board_dir)]) == 0
        out = capsys.readouterr().out
        assert "left" in out and "right" in out
        assert "3 distinct points computed across 2 worker(s)" in out
        assert "exactly-once audit: clean" in out
        assert "k-held" in out and "owner=right" in out
        assert "STALE" not in out

    def test_json_output(self, board_dir, capsys):
        assert cli_main(["fleet", "--claim-dir", str(board_dir), "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["points_computed"] == 3
        assert fleet["duplicates"] == []
        assert fleet["workers"]["left"]["computed"] == 2
        assert fleet["workers"]["right"]["computed"] == 1
        assert fleet["workers"]["left"]["claimed"] == 2
        [active] = fleet["active"]
        assert active["key"] == "k-held" and active["owner"] == "right"
        assert active["stale"] is False

    def test_duplicate_computes_are_flagged(self, board_dir, capsys):
        # a second worker recomputes an already-computed point (e.g.
        # after a mis-tuned TTL steal): the audit must call it out
        rogue = ClaimBoard(board_dir, owner="rogue", ttl_s=60)
        rogue.note_computed("k-aaa")
        assert cli_main(["fleet", "--claim-dir", str(board_dir)]) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out and "k-aaa x2" in out

    def test_stale_claim_is_flagged(self, board_dir, capsys):
        import os
        import time

        claim = board_dir / "k-held.claim"
        old = time.time() - 1000
        os.utime(claim, (old, old))
        assert cli_main(["fleet", "--claim-dir", str(board_dir)]) == 0
        assert "STALE" in capsys.readouterr().out

    def test_missing_directory_errors(self, tmp_path, capsys):
        assert cli_main(["fleet", "--claim-dir", str(tmp_path / "nope")]) == 1
        assert "no claims directory" in capsys.readouterr().err

    def test_cache_dir_derives_claims_subdir(self, board_dir, capsys):
        cache_dir = board_dir.parent  # claims/ lives inside it
        assert cli_main(["fleet", "--cache-dir", str(cache_dir)]) == 0
        assert "3 distinct points" in capsys.readouterr().out

    def test_read_only_no_new_events(self, board_dir):
        before = (board_dir / "events.log").read_bytes()
        assert cli_main(["fleet", "--claim-dir", str(board_dir)]) == 0
        assert (board_dir / "events.log").read_bytes() == before
