"""Tests for the experiment drivers, renderers, and CLI."""

import pytest

from repro.eval.accuracy import run_predictors
from repro.eval.cli import main as cli_main
from repro.eval.experiments import EXPERIMENTS, run_experiment, table1, table2
from repro.eval.performance import run_speculation
from repro.eval.reporting import RENDERERS, render
from repro.eval.performance import PAPER_MODES
from repro.sim.machine import MachineMode


class TestRunPredictors:
    def test_all_three_predictors_trained_on_same_trace(self):
        runs = run_predictors("em3d", depth=1, iterations=6)
        assert set(runs) == {"Cosmos", "MSP", "VMSP"}
        observed = {run.stats.observed + run.stats.ignored for run in runs.values()}
        assert len(observed) == 1  # identical message streams

    def test_depth_recorded(self):
        runs = run_predictors("tomcatv", depth=2, iterations=4)
        assert all(run.depth == 2 for run in runs.values())

    def test_overhead_consistent_with_pte(self):
        runs = run_predictors("em3d", depth=1, iterations=6)
        msp = runs["MSP"]
        assert msp.overhead_bytes == pytest.approx(
            (6 + 12 * msp.average_pte) / 8
        )

    def test_custom_predictor_subset(self):
        runs = run_predictors("ocean", predictors=("VMSP",), iterations=4)
        assert set(runs) == {"VMSP"}


class TestRunSpeculation:
    @pytest.fixture(scope="class")
    def em3d_run(self):
        return run_speculation("em3d", iterations=6)

    def test_all_modes_present(self, em3d_run):
        assert em3d_run.base.mode is MachineMode.BASE
        assert em3d_run.fr.mode is MachineMode.FR
        assert em3d_run.swi.mode is MachineMode.SWI

    def test_base_normalizes_to_one(self, em3d_run):
        assert em3d_run.normalized_time(MachineMode.BASE) == 1.0

    def test_breakdown_sums_to_normalized_time(self, em3d_run):
        for mode in PAPER_MODES:
            comp, request = em3d_run.breakdown(mode)
            assert comp + request == pytest.approx(
                em3d_run.normalized_time(mode)
            )

    def test_table5_row_fields(self, em3d_run):
        row = em3d_run.table5_row()
        assert row["reads"] > 0 and row["writes"] > 0
        for key in ("fr_read_sent", "swi_read_sent", "wi_sent", "wi_miss"):
            assert 0.0 <= row[key] <= 150.0


class TestExperimentDrivers:
    def test_every_experiment_has_a_renderer(self):
        assert set(EXPERIMENTS) == set(RENDERERS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("figure99")

    def test_table1_rows(self):
        rows = dict(table1())
        assert rows["Number of nodes"] == "16"

    def test_table2_rows(self):
        assert len(table2()) == 7

    def test_figure6_fast(self):
        panels = run_experiment("figure6", fast=True)
        assert set(panels) == {"accuracy", "penalty", "fraction", "rtl"}


@pytest.mark.slow
class TestRenderers:
    @pytest.mark.parametrize("name", ["table1", "table2", "figure6"])
    def test_cheap_renderers(self, name):
        text = render(name, fast=True)
        assert text.splitlines()

    def test_figure7_renderer_lists_all_apps(self):
        text = render("figure7", fast=True)
        for app in ("appbt", "unstructured", "mean"):
            assert app in text


class TestCli:
    def test_list_option(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out and "table5" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["not-an-experiment"])

    def test_runs_cheap_experiment(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "418 cycles" in out

    def test_jobs_and_cache_flags(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["figure6", "--jobs", "2", "--cache-dir", str(cache)]
        assert cli_main(argv) == 0
        assert "Figure 6" in capsys.readouterr().out
        assert list(cache.glob("analytic/*.json"))

    def test_no_cache_writes_nothing(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["figure6", "--no-cache", "--cache-dir", str(cache)]
        assert cli_main(argv) == 0
        assert not cache.exists()

    def test_negative_jobs_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["figure6", "--jobs", "-1", "--cache-dir", str(tmp_path)])


class TestSweepSubcommand:
    def test_arbitrary_grid_prints_json_per_point(self, capsys, tmp_path):
        import json

        argv = [
            "sweep",
            "--kind",
            "analytic",
            "--axis",
            "panel=accuracy,rtl",
            "--set",
            "points=3",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["params"] == {"panel": "accuracy", "points": 3}
        assert first["result"]["series"]

    def test_sweep_reuses_cache(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--kind",
            "analytic",
            "--axis",
            "panel=penalty",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(argv) == 0
        assert "1 cached" in capsys.readouterr().err

    def test_config_num_nodes_override_sizes_the_workload(self, capsys, tmp_path):
        import json

        argv = [
            "sweep",
            "--kind",
            "speculation",
            "--axis",
            "app=em3d",
            "--set",
            "iterations=4",
            "--set",
            'config={"num_nodes": 4}',
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        point = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert point["params"]["config"] == {"num_nodes": 4}
        assert point["result"]["modes"]["Base-DSM"]["normalized"] == 1.0

    def test_nan_axis_value_treated_as_string(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--kind",
            "selftest",
            "--axis",
            "payload=NaN",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        import json

        point = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert point["params"]["payload"] == "NaN"

    def test_nested_nan_rejected_cleanly(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--kind",
            "selftest",
            "--axis",
            'payload={"x": NaN}',
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 1
        assert "invalid sweep parameters" in capsys.readouterr().err

    @pytest.mark.parametrize("kind", ["speculation", "accuracy"])
    def test_unknown_engine_fails_fast_with_menu(self, capsys, tmp_path, kind):
        """An invalid --set engine= dies before any point runs, naming
        the valid engines, instead of erroring mid-sweep."""
        argv = [
            "sweep",
            "--kind",
            kind,
            "--axis",
            "app=em3d,moldyn",
            "--set",
            "engine=bogus",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # no point was executed or printed
        assert "bogus" in captured.err
        assert "reference" in captured.err  # the menu of valid engines
        assert not list(tmp_path.glob(f"{kind}/*.json"))

    def test_valid_engine_accepted(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--kind",
            "speculation",
            "--axis",
            "app=em3d",
            "--set",
            "iterations=2",
            "--set",
            "engine=compiled",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        import json

        point = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert point["result"]["modes"]["Base-DSM"]["normalized"] == 1.0

    def test_cache_dir_env_var_resolved_at_call_time(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert cli_main(["figure6"]) == 0
        capsys.readouterr()
        assert list((tmp_path / "envcache").glob("analytic/*.json"))

    def test_axis_required(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--kind", "analytic", "--cache-dir", str(tmp_path)])

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "sweep",
                    "--kind",
                    "nope",
                    "--axis",
                    "a=1",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
