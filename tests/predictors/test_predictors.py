"""Tests for the Cosmos / MSP / VMSP predictors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import DeterministicRng
from repro.common.types import Message, MessageKind
from repro.predictors import Cosmos, Msp, Vmsp, make_predictor
from repro.predictors.base import Outcome, ReadVector
from repro.protocol.emulator import ProtocolEmulator
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch

BLOCK = 0x40


def msg(kind, node, block=BLOCK):
    return Message(kind=kind, node=node, block=block)


def feed(predictor, sequence, block=BLOCK):
    outcomes = []
    for kind, node in sequence:
        outcomes.append(predictor.observe(msg(kind, node, block)))
    return outcomes


R, W, U = MessageKind.READ, MessageKind.WRITE, MessageKind.UPGRADE
A, B = MessageKind.ACK, MessageKind.WRITEBACK


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("Cosmos", Cosmos), ("MSP", Msp), ("VMSP", Vmsp)])
    def test_make_predictor(self, name, cls):
        predictor = make_predictor(name, depth=2)
        assert isinstance(predictor, cls)
        assert predictor.depth == 2

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("Oracle")

    @pytest.mark.parametrize("cls", [Cosmos, Msp, Vmsp])
    def test_rejects_zero_depth(self, cls):
        with pytest.raises(ValueError):
            cls(depth=0)


class TestCosmos:
    def test_learns_repeating_message_cycle(self):
        predictor = Cosmos(depth=1)
        cycle = [(W, 3), (A, 1), (A, 2), (R, 1), (R, 2)]
        feed(predictor, cycle * 2)  # training passes
        outcomes = feed(predictor, cycle)
        assert all(o is Outcome.CORRECT for o in outcomes)

    def test_predicts_acks_too(self):
        predictor = Cosmos(depth=1)
        feed(predictor, [(W, 3), (A, 1), (W, 3)])
        assert predictor.predicted_next(BLOCK) == (A, 1)

    def test_reordered_acks_perturb(self):
        predictor = Cosmos(depth=1)
        feed(predictor, [(W, 3), (A, 1), (A, 2), (W, 3), (A, 2)])
        # Trained W->ack1, but ack2 arrived: the last ack observation
        # was scored WRONG.
        assert predictor.stats.wrong >= 1


class TestMsp:
    def test_ignores_acknowledgements(self):
        predictor = Msp(depth=1)
        outcomes = feed(predictor, [(W, 3), (A, 1), (B, 2), (R, 1)])
        assert outcomes[1] is Outcome.IGNORED
        assert outcomes[2] is Outcome.IGNORED
        assert predictor.stats.ignored == 2
        assert predictor.stats.observed == 2

    def test_ack_reordering_cannot_perturb(self):
        stable = Msp(depth=1)
        perturbed = Msp(depth=1)
        feed(stable, [(W, 3), (A, 1), (A, 2), (R, 1), (R, 2)] * 5)
        feed(perturbed, [(W, 3), (A, 2), (A, 1), (R, 1), (R, 2)] * 5)
        assert stable.stats.accuracy == perturbed.stats.accuracy

    def test_read_reordering_does_perturb(self):
        predictor = Msp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)] * 3)
        trained = predictor.stats.accuracy
        feed(predictor, [(W, 3), (R, 2), (R, 1)])
        assert predictor.stats.accuracy < trained

    def test_deeper_history_learns_alternation(self):
        # Alternating consumers: W,Ra,W,Rb — the appbt edge pattern.
        pattern = [(W, 0), (R, 1), (W, 0), (R, 2)]
        shallow, deep = Msp(depth=1), Msp(depth=2)
        for predictor in (shallow, deep):
            feed(predictor, pattern * 8)
        assert deep.stats.accuracy > shallow.stats.accuracy
        # With depth 2 the steady-state alternation is fully predictable.
        tail = Msp(depth=2)
        feed(tail, pattern * 8)
        outcomes = feed(tail, pattern)
        assert all(o is Outcome.CORRECT for o in outcomes)


class TestVmsp:
    def test_vector_prediction_ignores_read_order(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)] * 2)
        outcomes = feed(predictor, [(W, 3), (R, 2), (R, 1)])
        read_outcomes = outcomes[1:]
        assert all(o is Outcome.CORRECT for o in read_outcomes)

    def test_read_outside_vector_is_wrong(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)] * 2 + [(W, 3)])
        assert predictor.observe(msg(R, 7)) is Outcome.WRONG

    def test_duplicate_reader_is_wrong(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)] * 2 + [(W, 3), (R, 1)])
        # P1 already read in this run; the vector predicts P2 next.
        history = predictor.current_history(BLOCK)
        assert predictor.observe(msg(R, 1)) is Outcome.WRONG

    def test_vector_entry_learned_on_close(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2), (U, 3)])
        predicted = predictor.predicted_next(BLOCK)
        # After the upgrade the history key is the upgrade token, whose
        # successor is not yet known.
        assert predicted is None
        # But the vector entry exists for the write key.
        assert predictor.pattern_entry_count(BLOCK) >= 1

    def test_flush_commits_open_run(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)])
        before = predictor.pattern_entry_count(BLOCK)
        predictor.flush()
        assert predictor.pattern_entry_count(BLOCK) == before + 1

    def test_predicted_read_vector_excludes_seen_readers(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (R, 2)] * 2 + [(W, 3), (R, 1)])
        remaining = predictor.predicted_read_vector(BLOCK)
        assert remaining == frozenset({2})

    def test_observe_speculative_read_joins_run(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3)])
        predictor.observe_speculative_read(BLOCK, 5)
        assert predictor.open_run(BLOCK) == frozenset({5})

    def test_ignores_acks(self):
        predictor = Vmsp(depth=1)
        assert predictor.observe(msg(A, 1)) is Outcome.IGNORED


class TestConfidence:
    def test_thrashing_entry_loses_confidence(self):
        predictor = Vmsp(depth=1)
        # Successor of the write alternates between disjoint singleton
        # vectors (the ocean reduction pattern).
        feed(predictor, [(W, 0), (R, 1), (W, 0), (R, 2), (W, 0), (R, 3), (W, 0)])
        assert predictor.predicted_read_vector(BLOCK) is None

    def test_stable_entry_keeps_confidence(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 0), (R, 1), (R, 2)] * 4 + [(W, 0)])
        assert predictor.predicted_read_vector(BLOCK) == frozenset({1, 2})

    def test_similar_vectors_sustain_confidence(self):
        predictor = Vmsp(depth=1)
        # 4-member vectors differing in one member: similar enough.
        feed(predictor, [(W, 0), (R, 1), (R, 2), (R, 3), (R, 4)])
        feed(predictor, [(W, 0), (R, 1), (R, 2), (R, 3), (R, 5)])
        feed(predictor, [(W, 0)])
        assert predictor.predicted_read_vector(BLOCK) is not None


class TestRemoveEntry:
    def test_removal_needs_matching_value(self):
        predictor = Vmsp(depth=1)
        feed(predictor, [(W, 3), (R, 1), (W, 3)])
        history = ((W, 3),)
        stale = ReadVector(frozenset({9}))
        assert not predictor.remove_entry(BLOCK, history, expected=stale)
        current = ReadVector(frozenset({1}))
        assert predictor.remove_entry(BLOCK, history, expected=current)

    def test_unconditional_removal(self):
        predictor = Msp(depth=1)
        feed(predictor, [(W, 3), (R, 1)])
        assert predictor.remove_entry(BLOCK, ((W, 3),))
        assert not predictor.remove_entry(BLOCK, ((W, 3),))


class TestStatsAccounting:
    def test_unpredicted_first_occurrences(self):
        predictor = Msp(depth=1)
        outcomes = feed(predictor, [(W, 3), (R, 1), (W, 3)])
        assert outcomes[0] is Outcome.UNPREDICTED  # empty history
        assert outcomes[1] is Outcome.UNPREDICTED  # first key use
        assert predictor.stats.coverage < 1.0

    def test_accuracy_bounds(self):
        predictor = Cosmos(depth=1)
        feed(predictor, [(W, 1), (R, 2)] * 10)
        assert 0.0 <= predictor.stats.accuracy <= 1.0
        assert 0.0 <= predictor.stats.coverage <= 1.0
        assert predictor.stats.correct_fraction <= predictor.stats.coverage

    def test_merged_with(self):
        a, b = Msp(depth=1), Msp(depth=1)
        feed(a, [(W, 1), (R, 2)] * 4)
        feed(b, [(W, 1), (R, 2)] * 4, block=BLOCK + 1)
        merged = a.stats.merged_with(b.stats)
        assert merged.observed == a.stats.observed + b.stats.observed
        assert merged.correct == a.stats.correct + b.stats.correct


# ----------------------------------------------------------------------
# cross-predictor properties on emulated protocol traces
# ----------------------------------------------------------------------
def _emulated_messages(num_iterations, readers, racy, seed):
    script = BlockScript(block=1)
    for _ in range(num_iterations):
        script.append(WriteEpoch(writer=0))
        script.append(ReadEpoch(readers=readers, racy=racy, racy_acks=racy))
    return ProtocolEmulator(DeterministicRng(seed)).messages_for(script)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(3, 12),
    st.lists(st.integers(1, 7), min_size=1, max_size=4, unique=True).map(tuple),
    st.booleans(),
    st.integers(0, 999),
)
def test_vmsp_never_below_msp_on_producer_consumer(iters, readers, racy, seed):
    """Order-insensitive vectors cannot lose to ordered read entries on
    a stable producer/consumer pattern."""
    messages = _emulated_messages(iters, readers, racy, seed)
    msp, vmsp = Msp(depth=1), Vmsp(depth=1)
    for message in messages:
        msp.observe(message)
        vmsp.observe(message)
    assert vmsp.stats.correct >= msp.stats.correct


@settings(max_examples=40, deadline=None)
@given(
    st.integers(3, 10),
    st.lists(st.integers(1, 7), min_size=2, max_size=4, unique=True).map(tuple),
    st.integers(0, 999),
)
def test_msp_tables_never_larger_than_cosmos(iters, readers, seed):
    messages = _emulated_messages(iters, readers, racy=True, seed=seed)
    cosmos, msp = Cosmos(depth=1), Msp(depth=1)
    for message in messages:
        cosmos.observe(message)
        msp.observe(message)
    assert msp.average_pattern_entries() <= cosmos.average_pattern_entries()


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 10), st.integers(0, 500))
def test_all_predictors_deterministic(iters, seed):
    messages = _emulated_messages(iters, (1, 2, 3), True, seed)
    for cls in (Cosmos, Msp, Vmsp):
        a, b = cls(depth=1), cls(depth=1)
        for message in messages:
            a.observe(message)
            b.observe(message)
        assert a.stats == b.stats
