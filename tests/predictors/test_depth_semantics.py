"""Deeper-history semantics shared by all predictors."""

import pytest

from repro.common.types import Message, MessageKind
from repro.predictors import Cosmos, Msp, Vmsp
from repro.predictors.base import Outcome, ReadVector

BLOCK = 7
R, W, U = MessageKind.READ, MessageKind.WRITE, MessageKind.UPGRADE


def feed(predictor, sequence):
    return [
        predictor.observe(Message(kind=kind, node=node, block=BLOCK))
        for kind, node in sequence
    ]


class TestHistoryWindow:
    @pytest.mark.parametrize("cls", [Cosmos, Msp])
    def test_no_predictions_until_history_fills(self, cls):
        predictor = cls(depth=3)
        outcomes = feed(predictor, [(W, 0), (W, 1), (W, 2)])
        assert all(o is Outcome.UNPREDICTED for o in outcomes)
        assert predictor.stats.predicted == 0

    @pytest.mark.parametrize("cls", [Cosmos, Msp])
    def test_history_keeps_last_d_tokens(self, cls):
        predictor = cls(depth=2)
        feed(predictor, [(W, 0), (W, 1), (W, 2)])
        assert predictor.current_history(BLOCK) == ((W, 1), (W, 2))

    def test_vmsp_history_holds_vectors(self):
        predictor = Vmsp(depth=2)
        feed(predictor, [(W, 0), (R, 1), (R, 2), (U, 0)])
        history = predictor.current_history(BLOCK)
        assert history == (ReadVector(frozenset({1, 2})), (U, 0))

    def test_vmsp_depth2_separates_alternating_vectors(self):
        predictor = Vmsp(depth=2)
        # Parity pattern: readers {1} and {2} alternate after the same
        # writer; depth 2 keys include the previous vector, so both
        # patterns coexist.
        pattern = [(W, 0), (R, 1), (W, 0), (R, 2)]
        feed(predictor, pattern * 6)
        outcomes = feed(predictor, pattern)
        reads = [o for o, (kind, _n) in zip(outcomes, pattern) if kind is R]
        assert all(o is Outcome.CORRECT for o in reads)

    def test_vmsp_depth1_cannot_separate_them(self):
        predictor = Vmsp(depth=1)
        pattern = [(W, 0), (R, 1), (W, 0), (R, 2)]
        feed(predictor, pattern * 6)
        outcomes = feed(predictor, pattern)
        reads = [o for o, (kind, _n) in zip(outcomes, pattern) if kind is R]
        assert all(o is Outcome.WRONG for o in reads)

    @pytest.mark.parametrize("cls", [Cosmos, Msp, Vmsp])
    def test_deeper_tables_grow_keys_not_shrink(self, cls):
        trace = [(W, 0), (R, 1), (R, 2), (W, 3), (R, 1)] * 6
        shallow, deep = cls(depth=1), cls(depth=2)
        feed(shallow, trace)
        feed(deep, trace)
        for predictor in (shallow, deep):
            flush = getattr(predictor, "flush", None)
            if flush:
                flush()
        assert deep.pattern_entry_count(BLOCK) >= 1


class TestPerBlockIsolation:
    @pytest.mark.parametrize("cls", [Cosmos, Msp, Vmsp])
    def test_blocks_do_not_share_tables(self, cls):
        predictor = cls(depth=1)
        a = [Message(kind=W, node=0, block=1), Message(kind=R, node=1, block=1)]
        b = [Message(kind=W, node=0, block=2), Message(kind=R, node=2, block=2)]
        for message in a * 3 + b * 3:
            predictor.observe(message)
        assert predictor.pattern_entry_count(1) >= 1
        assert predictor.pattern_entry_count(2) >= 1
        assert set(predictor.allocated_blocks()) == {1, 2}

    def test_average_pattern_entries_over_allocated_blocks(self):
        predictor = Msp(depth=1)
        for message in (
            Message(kind=W, node=0, block=1),
            Message(kind=R, node=1, block=1),
            Message(kind=W, node=0, block=2),
        ):
            predictor.observe(message)
        # block 1 has one entry, block 2 has none yet.
        assert predictor.average_pattern_entries() == pytest.approx(0.5)

    def test_empty_predictor_average_is_zero(self):
        assert Vmsp(depth=1).average_pattern_entries() == 0.0
