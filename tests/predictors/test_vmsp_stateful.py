"""Stateful/property tests for VMSP's open-run and flush bookkeeping.

A VMSP folds each read sequence into a reader bit-vector committed by
the write that closes it; the speculation engine additionally injects
*speculative* reads (pushed copies) into the open run without scoring
them.  The state machine below drives arbitrary interleavings of real
reads, writes/upgrades, speculative reads, and flushes against a
trivially correct model of the open runs, checking that

* runs close *exactly* on writes/upgrades (and flush) — nothing else
  empties or reopens them;
* the vector committed at close time is precisely the modeled reader
  set, keyed by the pre-close history;
* ``observe_speculative_read`` joins the open run without touching
  scoring stats, the history, or the committed pattern entries — in
  particular it can never mutate a vector a closed run already
  committed;
* ``flush`` closes every open run and leaves all runs empty.

Separate property tests pin ``remove_entry``'s guard: an entry is only
removed while the caller's ``expected`` token still matches — the
misspeculation-feedback race the speculation engine relies on
(Section 4.2).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.common.types import Message, MessageKind
from repro.predictors.base import ReadVector
from repro.predictors.vmsp import Vmsp
from tests.strategies import STANDARD_SETTINGS

pytestmark = pytest.mark.property

BLOCKS = st.integers(min_value=0, max_value=2)
NODES = st.integers(min_value=0, max_value=4)
WRITE_KINDS = st.sampled_from([MessageKind.WRITE, MessageKind.UPGRADE])


class VmspRunMachine(RuleBasedStateMachine):
    depth = 1

    def __init__(self) -> None:
        super().__init__()
        self.vmsp = Vmsp(depth=self.depth)
        self.runs: dict[int, set[int]] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tables_snapshot(self):
        return (
            {b: dict(t) for b, t in self.vmsp._patterns.items()},
            dict(self.vmsp._history),
            (
                self.vmsp.stats.observed,
                self.vmsp.stats.predicted,
                self.vmsp.stats.correct,
                self.vmsp.stats.ignored,
            ),
        )

    def _check_close(self, block: int, pre_history, pre_run: set[int]) -> None:
        """After a close, the committed vector is the modeled run."""
        assert self.vmsp.open_run(block) == frozenset()
        if pre_run and len(pre_history) >= self.depth:
            committed = self.vmsp._patterns.get(block, {}).get(pre_history)
            assert committed == ReadVector(frozenset(pre_run))

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule(block=BLOCKS, node=NODES)
    def read(self, block: int, node: int) -> None:
        self.vmsp.observe(Message(kind=MessageKind.READ, node=node, block=block))
        self.runs.setdefault(block, set()).add(node)

    @rule(block=BLOCKS, node=NODES)
    def speculative_read(self, block: int, node: int) -> None:
        """Joins the run; never scores, learns, or reopens anything."""
        before = self._tables_snapshot()
        self.vmsp.observe_speculative_read(block, node)
        assert self._tables_snapshot() == before
        self.runs.setdefault(block, set()).add(node)

    @rule(block=BLOCKS, kind=WRITE_KINDS, node=NODES)
    def write_closes_run(self, block: int, kind, node: int) -> None:
        pre_history = self.vmsp.current_history(block)
        pre_run = set(self.runs.get(block, set()))
        self.vmsp.observe(Message(kind=kind, node=node, block=block))
        self.runs[block] = set()
        assert self.vmsp.open_run(block) == frozenset()
        if pre_run and len(pre_history) >= self.depth:
            vector = ReadVector(frozenset(pre_run))
            committed = self.vmsp._patterns.get(block, {}).get(pre_history)
            # The closing write itself learns immediately after the
            # vector commits; when the post-commit history slides back
            # onto the same key (the vector repeats the history tail),
            # the write token legitimately overwrites the vector.
            post_commit = (pre_history + (vector,))[-self.depth :]
            expected = (kind, node) if post_commit == pre_history else vector
            assert committed == expected

    @rule()
    def flush_closes_every_run(self) -> None:
        pre = {
            block: (self.vmsp.current_history(block), set(run))
            for block, run in self.runs.items()
        }
        self.vmsp.flush()
        for block, (history, run) in pre.items():
            self.runs[block] = set()
            self._check_close(block, history, run)
        for block in self.runs:
            assert not self.vmsp.has_open_run(block)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def open_runs_match_model(self) -> None:
        for block in range(3):
            expected = frozenset(self.runs.get(block, set()))
            assert self.vmsp.open_run(block) == expected
            assert self.vmsp.has_open_run(block) == bool(expected)


class VmspRunMachineDepth1(VmspRunMachine):
    depth = 1


class VmspRunMachineDepth2(VmspRunMachine):
    depth = 2


VmspRunMachineDepth1.TestCase.settings = STANDARD_SETTINGS
VmspRunMachineDepth2.TestCase.settings = STANDARD_SETTINGS
TestVmspOpenRunsDepth1 = VmspRunMachineDepth1.TestCase
TestVmspOpenRunsDepth2 = VmspRunMachineDepth2.TestCase


# ----------------------------------------------------------------------
# observe_speculative_read vs committed vectors (the named regression)
# ----------------------------------------------------------------------
def test_speculative_read_never_reopens_a_closed_run():
    """A pushed copy after a close starts a *new* run; the committed
    vector of the closed run is immutable."""
    vmsp = Vmsp(depth=1)
    block = 7
    # Train one full sequence so the close lands in the pattern table.
    for node in (1, 2):
        vmsp.observe(Message(kind=MessageKind.READ, node=node, block=block))
    vmsp.observe(Message(kind=MessageKind.WRITE, node=0, block=block))
    for node in (1, 2):
        vmsp.observe(Message(kind=MessageKind.READ, node=node, block=block))
    history = vmsp.current_history(block)
    vmsp.observe(Message(kind=MessageKind.WRITE, node=0, block=block))
    committed = vmsp._patterns[block][history]
    assert committed == ReadVector(frozenset({1, 2}))

    vmsp.observe_speculative_read(block, 4)
    assert vmsp._patterns[block][history] == ReadVector(frozenset({1, 2}))
    assert vmsp.open_run(block) == frozenset({4})


# ----------------------------------------------------------------------
# remove_entry: only removes while `expected` still matches
# ----------------------------------------------------------------------
TOKENS = st.one_of(
    st.tuples(WRITE_KINDS, NODES),
    st.frozensets(NODES, min_size=1, max_size=3).map(ReadVector),
)


@given(
    learned=TOKENS,
    expected=TOKENS,
    history_token=TOKENS,
)
@STANDARD_SETTINGS
def test_remove_entry_guard(learned, expected, history_token):
    vmsp = Vmsp(depth=1)
    block = 3
    history = (history_token,)
    vmsp._history[block] = history
    vmsp._learn(block, history, learned)
    assert vmsp._patterns[block][history] == learned

    removed = vmsp.remove_entry(block, history, expected=expected)
    if expected == learned:
        assert removed
        assert history not in vmsp._patterns[block]
        # A second removal finds nothing.
        assert not vmsp.remove_entry(block, history, expected=expected)
    else:
        # The entry was already replaced (or never was `expected`):
        # removal must not destroy the newer learning.
        assert not removed
        assert vmsp._patterns[block][history] == learned


def test_remove_entry_without_expected_always_removes():
    vmsp = Vmsp(depth=1)
    block, history = 1, ((MessageKind.WRITE, 0),)
    assert not vmsp.remove_entry(block, history)  # nothing learned yet
    vmsp._history[block] = history
    vmsp._learn(block, history, (MessageKind.UPGRADE, 2))
    assert vmsp.remove_entry(block, history)
    assert not vmsp.remove_entry(block, history)
