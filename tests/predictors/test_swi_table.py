"""Tests for the early-write-invalidate table."""

from repro.predictors.swi import EarlyWriteInvalidateTable


class TestEwiTable:
    def test_first_write_has_no_candidate(self):
        table = EarlyWriteInvalidateTable()
        assert table.record_write(writer=3, block=100) is None

    def test_next_write_returns_previous_block(self):
        table = EarlyWriteInvalidateTable()
        table.record_write(3, 100)
        assert table.record_write(3, 101) == 100

    def test_rewrite_of_same_block_is_not_a_candidate(self):
        table = EarlyWriteInvalidateTable()
        table.record_write(3, 100)
        assert table.record_write(3, 100) is None
        # The heuristic resumes on the next distinct write.
        assert table.record_write(3, 101) == 100

    def test_writers_are_tracked_independently(self):
        table = EarlyWriteInvalidateTable()
        table.record_write(1, 10)
        table.record_write(2, 20)
        assert table.record_write(1, 11) == 10
        assert table.record_write(2, 21) == 20

    def test_last_write_lookup(self):
        table = EarlyWriteInvalidateTable()
        table.record_write(1, 42)
        assert table.last_write(1) == 42
        assert table.last_write(9) is None


class TestSuppression:
    def test_suppress_round_trip(self):
        table = EarlyWriteInvalidateTable()
        history = (("upgrade", 3),)
        assert not table.is_suppressed(5, history)
        table.suppress(5, history)
        assert table.is_suppressed(5, history)
        assert table.suppressed_count == 1

    def test_suppression_is_per_entry(self):
        table = EarlyWriteInvalidateTable()
        table.suppress(5, (("write", 3),))
        assert not table.is_suppressed(5, (("write", 4),))
        assert not table.is_suppressed(6, (("write", 3),))
