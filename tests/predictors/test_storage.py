"""Tests for the Table 4 storage-overhead model."""

import pytest

from repro.predictors import Cosmos, Msp, Vmsp
from repro.predictors.storage import (
    general_token_bits,
    pid_bits,
    request_token_bits,
    vector_token_bits,
    vmsp_break_even_readers,
    vmsp_tokens_bits,
)


class TestTokenWidths:
    def test_pid_bits_for_paper_machine(self):
        assert pid_bits(16) == 4

    def test_cosmos_token_is_seven_bits(self):
        # 3 type bits (5 message kinds) + 4 pid bits (Section 7.3).
        assert general_token_bits(16) == 7

    def test_msp_token_is_six_bits(self):
        # 2 type bits (3 request kinds) + 4 pid bits.
        assert request_token_bits(16) == 6

    def test_vmsp_vector_token_is_eighteen_bits(self):
        # 2 type bits + 16-bit reader vector.
        assert vector_token_bits(16) == 18

    def test_pid_bits_rejects_tiny_machines(self):
        with pytest.raises(ValueError):
            pid_bits(1)


class TestPaperFormulas:
    """Per-block bytes must match the paper's closed forms at depth 1."""

    @pytest.mark.parametrize("pte", [1, 2, 3, 5, 7, 11])
    def test_cosmos_bytes(self, pte):
        profile = Cosmos.storage_profile(16, depth=1)
        assert profile.bytes_per_block(pte) == (7 + 14 * pte) / 8

    @pytest.mark.parametrize("pte", [1, 2, 3, 5, 7, 11])
    def test_msp_bytes(self, pte):
        profile = Msp.storage_profile(16, depth=1)
        assert profile.bytes_per_block(pte) == (6 + 12 * pte) / 8

    @pytest.mark.parametrize("pte", [1, 2, 3, 5, 7, 11])
    def test_vmsp_bytes(self, pte):
        profile = Vmsp.storage_profile(16, depth=1)
        assert profile.bytes_per_block(pte) == (18 + 24 * pte) / 8

    def test_paper_example_appbt_row(self):
        # Table 4 appbt: Cosmos pte=5 -> 10 bytes; MSP pte=3 -> 6;
        # VMSP pte=2 -> 9 (the paper rounds cells up).
        import math

        assert math.ceil(Cosmos.storage_profile(16, 1).bytes_per_block(5)) == 10
        assert math.ceil(Msp.storage_profile(16, 1).bytes_per_block(3)) == 6
        assert math.ceil(Vmsp.storage_profile(16, 1).bytes_per_block(2)) == 9


class TestDepthScaling:
    @pytest.mark.parametrize("cls", [Cosmos, Msp, Vmsp])
    def test_history_bits_grow_with_depth(self, cls):
        widths = [cls.storage_profile(16, d).history_bits for d in (1, 2, 4)]
        assert widths[0] < widths[1] < widths[2]

    def test_vmsp_vectors_never_adjacent(self):
        # Of k consecutive VMSP tokens at most ceil(k/2) are vectors.
        assert vmsp_tokens_bits(16, 1) == 18
        assert vmsp_tokens_bits(16, 2) == 18 + 6
        assert vmsp_tokens_bits(16, 3) == 18 + 6 + 18
        assert vmsp_tokens_bits(16, 4) == 18 + 6 + 18 + 6


class TestBreakEven:
    def test_paper_break_even_values(self):
        # Section 3.1: two readers at 8 processors, three at 16.
        assert 1 < vmsp_break_even_readers(8) <= 2
        assert 2 < vmsp_break_even_readers(16) <= 3
