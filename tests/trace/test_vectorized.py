"""Golden equivalence: vectorized evaluation ≡ per-message reference.

The contract the trace pipeline ships under: for every trace the
protocol emulator can produce, :func:`repro.trace.evaluate_trace` must
return **bit-identical** accuracy counters (observed / predicted /
correct / ignored) and pattern-table shape (entries, allocated blocks)
to feeding the decoded message stream through the reference predictor
objects.  Accuracy, coverage, and correct-fraction are ratios of those
integers, so integer equality implies float equality.
"""

import pytest

from repro.apps.registry import APP_NAMES, make_app
from repro.common.rng import DeterministicRng
from repro.protocol.emulator import ProtocolEmulator
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch
from repro.eval.accuracy import run_predictors
from repro.trace import evaluate_trace, evaluate_trace_reference

PREDICTORS = ("Cosmos", "MSP", "VMSP")


def _compile(scripts, num_nodes=8, race_seed=7):
    return ProtocolEmulator(DeterministicRng(race_seed)).compile(
        scripts, num_nodes=num_nodes
    )


def _app_trace(app_name, num_procs=8, iterations=4):
    workload = make_app(app_name, num_procs=num_procs, iterations=iterations).build()
    return _compile(workload.block_scripts(), num_nodes=num_procs)


def assert_equivalent(trace, predictor, depth):
    reference = evaluate_trace_reference(trace, predictor, depth)
    vectorized = evaluate_trace(trace, predictor, depth)
    ref, vec = reference.stats, vectorized.stats
    assert (vec.observed, vec.predicted, vec.correct, vec.ignored) == (
        ref.observed,
        ref.predicted,
        ref.correct,
        ref.ignored,
    ), f"{predictor} d={depth}: counter mismatch"
    assert vectorized.pattern_entries == reference.pattern_entries
    assert vectorized.allocated_blocks == reference.allocated_blocks
    assert vectorized.average_pte == reference.average_pte


class TestGoldenEquivalenceAllApps:
    """The acceptance-criteria matrix: 7 apps x {Cosmos, MSP, VMSP}."""

    @pytest.mark.parametrize("app_name", APP_NAMES)
    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_depth_one(self, app_name, predictor):
        assert_equivalent(_app_trace(app_name), predictor, depth=1)

    @pytest.mark.parametrize("app_name", ("barnes", "ocean", "appbt"))
    @pytest.mark.parametrize("predictor", PREDICTORS)
    @pytest.mark.parametrize("depth", (2, 4))
    def test_deeper_histories(self, app_name, predictor, depth):
        assert_equivalent(_app_trace(app_name), predictor, depth=depth)


class TestRunPredictorsEngines:
    """run_predictors('vectorized') ≡ run_predictors('reference')."""

    @pytest.mark.parametrize("app_name", ("em3d", "barnes", "unstructured"))
    def test_engines_bit_identical(self, app_name):
        kwargs = dict(num_procs=8, iterations=4, depth=1)
        vectorized = run_predictors(app_name, engine="vectorized", **kwargs)
        reference = run_predictors(app_name, engine="reference", **kwargs)
        assert vectorized.keys() == reference.keys()
        for name in vectorized:
            vec, ref = vectorized[name], reference[name]
            assert vec.stats == ref.stats
            assert vec.average_pte == ref.average_pte
            assert vec.overhead_bytes == ref.overhead_bytes
            assert vec.accuracy == ref.accuracy
            assert vec.coverage == ref.coverage
            assert vec.correct_fraction == ref.correct_fraction

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_predictors("em3d", engine="compiled")


class TestEdgeCases:
    def test_empty_trace(self):
        trace = _compile([])
        for predictor in PREDICTORS:
            assert_equivalent(trace, predictor, depth=1)

    def test_single_message_blocks(self):
        scripts = [BlockScript(block=b, epochs=[WriteEpoch(b % 4)]) for b in range(6)]
        for predictor in PREDICTORS:
            assert_equivalent(_compile(scripts), predictor, depth=1)

    def test_racy_reads_and_acks(self):
        """Both race permutations (the paper's two perturbations)."""
        scripts = []
        for block in range(4):
            script = BlockScript(block=block)
            for _ in range(8):
                script.append(WriteEpoch(writer=0))
                script.append(
                    ReadEpoch(readers=(1, 2, 3, 4), racy=True, racy_acks=True)
                )
            scripts.append(script)
        trace = _compile(scripts)
        for predictor in PREDICTORS:
            for depth in (1, 2):
                assert_equivalent(trace, predictor, depth)

    def test_trailing_read_run_is_flushed(self):
        """A trace ending mid-read-run exercises VMSP's flush path."""
        script = BlockScript(block=9)
        for _ in range(5):
            script.append(WriteEpoch(writer=0))
            script.append(ReadEpoch(readers=(1, 2)))
        script.append(WriteEpoch(writer=3))
        script.append(ReadEpoch(readers=(1, 2)))  # never closed by a write
        for depth in (1, 2):
            assert_equivalent(_compile([script]), "VMSP", depth)

    def test_migratory_pattern(self, migratory_script):
        for predictor in PREDICTORS:
            assert_equivalent(_compile([migratory_script]), predictor, depth=1)

    def test_depth_exceeding_block_length(self):
        """Blocks shorter than the history depth never predict."""
        scripts = [BlockScript(block=1, epochs=[WriteEpoch(0), WriteEpoch(1)])]
        for predictor in PREDICTORS:
            assert_equivalent(_compile(scripts), predictor, depth=4)

    def test_wide_system_uses_reference_fallback(self):
        """VMSP beyond 64 nodes falls back to the reference path."""
        script = BlockScript(block=1)
        for _ in range(6):
            script.append(WriteEpoch(writer=0))
            script.append(ReadEpoch(readers=(65, 66, 70)))
        trace = _compile([script], num_nodes=72)
        for predictor in PREDICTORS:
            assert_equivalent(trace, predictor, depth=1)

    def test_sixty_four_nodes_stays_vectorized(self):
        """Node id 63 is the last one a uint64 reader bitmask holds."""
        script = BlockScript(block=1)
        for _ in range(6):
            script.append(WriteEpoch(writer=0))
            script.append(ReadEpoch(readers=(1, 62, 63)))
        trace = _compile([script], num_nodes=64)
        for predictor in PREDICTORS:
            assert_equivalent(trace, predictor, depth=1)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            evaluate_trace(_compile([]), "Oracle")

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="depth"):
            evaluate_trace(_compile([]), "MSP", depth=0)
