"""Compiled-trace caching: addressing, hit/miss accounting, metadata."""

import json

import numpy as np
import pytest

from repro.harness import SweepPoint
from repro.harness.store import MISS
from repro.trace import (
    compile_app_trace,
    configure_trace_cache,
    snapshot_counters,
    trace_point,
    trace_store,
)
from repro.trace import cache as trace_cache


@pytest.fixture
def cache_dir(tmp_path):
    directory = tmp_path / "cache"
    configure_trace_cache(directory)
    return directory


def _counters_delta(fn):
    before = snapshot_counters()
    result = fn()
    after = snapshot_counters()
    return result, (after[0] - before[0], after[1] - before[1])


class TestConfiguration:
    def test_disabled_by_default_in_tests(self):
        configure_trace_cache(None)
        assert trace_store() is None

    def test_uncached_compile_counts_nothing(self):
        configure_trace_cache(None)
        _trace, delta = _counters_delta(
            lambda: compile_app_trace("em3d", num_procs=8, iterations=3)
        )
        assert delta == (0, 0)

    def test_env_fallback(self, tmp_path, monkeypatch):
        configure_trace_cache(None)
        assert trace_store() is None
        monkeypatch.setattr(trace_cache, "_configured", trace_cache._UNSET)
        monkeypatch.setenv(trace_cache.TRACE_CACHE_ENV, str(tmp_path))
        store = trace_store()
        assert store is not None and store.root == tmp_path


class TestCacheBehavior:
    def test_miss_then_hit_bit_identical(self, cache_dir):
        kwargs = dict(num_procs=8, iterations=3)
        first, delta_first = _counters_delta(
            lambda: compile_app_trace("em3d", **kwargs)
        )
        assert delta_first == (0, 1)
        second, delta_second = _counters_delta(
            lambda: compile_app_trace("em3d", **kwargs)
        )
        assert delta_second == (1, 0)
        for column in ("kinds", "nodes", "blocks", "epochs"):
            np.testing.assert_array_equal(
                getattr(first, column), getattr(second, column)
            )
        assert first.content_hash() == second.content_hash()

    def test_entry_records_content_hash(self, cache_dir):
        trace = compile_app_trace("ocean", num_procs=8, iterations=3)
        point = trace_point("ocean", 8, 3, 1999, 7)
        entry = trace_store().load_entry(point)
        assert entry is not MISS
        assert entry.meta["content_hash"] == trace.content_hash()
        assert entry.meta["messages"] == len(trace)
        assert entry.meta["blocks"] == trace.block_count()
        assert entry.elapsed_s is not None

    def test_default_iterations_resolved_before_keying(self, cache_dir):
        """iterations=None and the app's explicit default share a key."""
        from repro.apps.registry import make_app

        default = make_app("em3d", num_procs=8).iterations
        compile_app_trace("em3d", num_procs=8, iterations=None)
        _trace, delta = _counters_delta(
            lambda: compile_app_trace("em3d", num_procs=8, iterations=default)
        )
        assert delta == (1, 0)

    def test_different_params_different_entries(self, cache_dir):
        compile_app_trace("em3d", num_procs=8, iterations=3)
        _trace, delta = _counters_delta(
            lambda: compile_app_trace("em3d", num_procs=8, iterations=4)
        )
        assert delta == (0, 1)

    def test_corrupt_payload_degrades_to_recompile(self, cache_dir):
        compile_app_trace("em3d", num_procs=8, iterations=3)
        point = trace_point("em3d", 8, 3, 1999, 7)
        path = trace_store().path_for(point)
        entry = json.loads(path.read_text())
        del entry["result"]["kinds"]
        path.write_text(json.dumps(entry))
        trace, delta = _counters_delta(
            lambda: compile_app_trace("em3d", num_procs=8, iterations=3)
        )
        assert delta == (0, 1)  # unreadable payload is a miss
        assert len(trace) > 0

    def test_trace_kind_is_not_a_runner_kind(self):
        """Traces are storage-only: no runner, so never servable."""
        from repro.harness import runner_kinds

        assert trace_cache.TRACE_KIND not in runner_kinds()

    def test_trace_point_is_a_plain_sweep_point(self):
        point = trace_point("em3d", 16, 10, 1999, 7)
        assert isinstance(point, SweepPoint)
        assert point.kind == trace_cache.TRACE_KIND
        assert point["app"] == "em3d"


class TestAccuracyPipelineIntegration:
    def test_run_predictors_shares_one_trace(self, cache_dir):
        from repro.eval.accuracy import run_predictors

        _runs, delta = _counters_delta(
            lambda: run_predictors("em3d", num_procs=8, iterations=3)
        )
        assert delta == (0, 1)  # one compile feeds all three predictors
        _runs, delta = _counters_delta(
            lambda: run_predictors("em3d", num_procs=8, iterations=3, depth=2)
        )
        assert delta == (1, 0)  # a different depth reuses the same trace

    def test_point_metrics_carry_trace_events(self, cache_dir):
        from repro.harness import execute_point_instrumented

        params = {"app": "em3d", "num_procs": 8, "iterations": 3}
        _result, metrics = execute_point_instrumented("accuracy", params)
        assert (metrics.trace_hits, metrics.trace_misses) == (0, 1)
        assert metrics.trace_meta == {
            "trace_cache": {"hits": 0, "misses": 1}
        }
        _result, metrics = execute_point_instrumented("accuracy", params)
        assert (metrics.trace_hits, metrics.trace_misses) == (1, 0)

    def test_runner_stores_trace_provenance(self, cache_dir, tmp_path):
        from repro.harness import ParallelRunner, ResultStore, SweepSpec

        store = ResultStore(tmp_path / "points")
        spec = SweepSpec(
            kind="accuracy",
            axes={"app": ["em3d"]},
            base={"num_procs": 8, "iterations": 3},
        )
        runner = ParallelRunner(store=store)
        result = runner.run(spec)
        assert result.report.trace_misses == 1
        entry = store.load_entry(spec.points()[0])
        assert entry.meta == {"trace_cache": {"hits": 0, "misses": 1}}
        assert "trace cache 0h/1m" in result.report.timing_summary()


class TestStorageFormat:
    def test_trace_entries_are_compact_json(self, cache_dir):
        compile_app_trace("em3d", num_procs=8, iterations=3)
        point = trace_point("em3d", 8, 3, 1999, 7)
        text = trace_store().path_for(point).read_text()
        # compact form: one line, no indentation padding
        assert "\n" not in text.strip()

    def test_configure_exports_env_for_spawned_workers(self, tmp_path):
        import os

        configure_trace_cache(tmp_path)
        assert os.environ[trace_cache.TRACE_CACHE_ENV] == str(tmp_path)
        configure_trace_cache(None)
        assert trace_cache.TRACE_CACHE_ENV not in os.environ
