"""CompiledTrace structure, decode fidelity, and serialization."""

import numpy as np
import pytest

from repro.apps.registry import make_app
from repro.common.rng import DeterministicRng
from repro.common.types import MessageKind
from repro.protocol.emulator import ProtocolEmulator
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch
from repro.trace import KIND_CODES, KIND_TO_CODE, CompiledTrace


def _compile(scripts, num_nodes=8, race_seed=7):
    return ProtocolEmulator(DeterministicRng(race_seed)).compile(
        scripts, num_nodes=num_nodes
    )


class TestKindEncoding:
    def test_codes_cover_every_kind(self):
        assert set(KIND_CODES) == set(MessageKind)
        assert [KIND_TO_CODE[k] for k in KIND_CODES] == list(range(len(KIND_CODES)))

    def test_request_codes_are_a_prefix(self):
        """request_mask() relies on requests occupying the low codes."""
        for kind in KIND_CODES:
            if kind.is_request:
                assert KIND_TO_CODE[kind] <= 2
            else:
                assert KIND_TO_CODE[kind] > 2


class TestCompile:
    def test_decodes_to_the_identical_message_stream(
        self, producer_consumer_script, migratory_script
    ):
        scripts = [producer_consumer_script, migratory_script]
        trace = _compile(scripts)
        reference = ProtocolEmulator(DeterministicRng(7))
        expected = [
            message
            for _block, messages in reference.run(scripts)
            for message in messages
        ]
        assert list(trace.to_messages()) == expected

    def test_app_stream_matches_run(self):
        workload = make_app("em3d", num_procs=8, iterations=4).build()
        scripts = workload.block_scripts()
        trace = _compile(scripts)
        reference = ProtocolEmulator(DeterministicRng(7))
        expected = [
            message
            for _block, messages in reference.run(scripts)
            for message in messages
        ]
        assert list(trace.to_messages()) == expected

    def test_emulator_stats_match_run(self):
        """compile() feeds the same per-kind message counters as run()."""
        workload = make_app("ocean", num_procs=8, iterations=3).build()
        compiling = ProtocolEmulator(DeterministicRng(7))
        compiling.compile(workload.block_scripts(), num_nodes=8)
        replaying = ProtocolEmulator(DeterministicRng(7))
        for _block, _messages in replaying.run(workload.block_scripts()):
            pass
        assert compiling.stats.as_dict() == replaying.stats.as_dict()

    def test_block_starts_and_epochs(self):
        scripts = [
            BlockScript(block=1, epochs=[WriteEpoch(0), ReadEpoch((1, 2))]),
            BlockScript(block=2, epochs=[WriteEpoch(3)]),
        ]
        trace = _compile(scripts)
        # block 1: WRITE(0) in epoch 0, then READ(1) + WRITEBACK(0) (the
        # read downgrades the writable copy) and READ(2) in epoch 1;
        # block 2: WRITE(3) in epoch 0.
        assert trace.blocks.tolist() == [1, 1, 1, 1, 2]
        assert trace.epochs.tolist() == [0, 1, 1, 1, 0]
        assert trace.block_starts.tolist() == [0, 4]
        assert trace.block_count() == 2

    def test_empty_trace(self):
        trace = _compile([])
        assert len(trace) == 0
        assert trace.block_count() == 0
        assert list(trace.to_messages()) == []


class TestSerialization:
    def test_payload_round_trip(self):
        workload = make_app("moldyn", num_procs=8, iterations=3).build()
        trace = _compile(workload.block_scripts())
        loaded = CompiledTrace.from_payload(trace.as_payload())
        assert loaded.num_nodes == trace.num_nodes
        for column in ("kinds", "nodes", "blocks", "epochs"):
            np.testing.assert_array_equal(
                getattr(loaded, column), getattr(trace, column)
            )
        assert loaded.content_hash() == trace.content_hash()

    def test_content_hash_sees_every_column(self):
        scripts = [BlockScript(block=1, epochs=[WriteEpoch(0), WriteEpoch(1)])]
        base = _compile(scripts)
        for column in ("kinds", "nodes", "blocks", "epochs"):
            mutated = {
                name: getattr(base, name)
                for name in ("kinds", "nodes", "blocks", "epochs")
            }
            changed = mutated[column].copy()
            changed[0] += 1
            mutated[column] = changed
            other = CompiledTrace.from_columns(
                num_nodes=base.num_nodes, **mutated
            )
            assert other.content_hash() != base.content_hash(), column

    def test_compile_is_deterministic(self):
        workload = make_app("barnes", num_procs=8, iterations=3).build()
        first = _compile(workload.block_scripts())
        second = _compile(
            make_app("barnes", num_procs=8, iterations=3).build().block_scripts()
        )
        assert first.content_hash() == second.content_hash()

    def test_race_seed_changes_racy_traces(self):
        scripts = []
        for block in range(8):
            script = BlockScript(block=block)
            for _ in range(6):
                script.append(WriteEpoch(writer=0))
                script.append(ReadEpoch(readers=(1, 2, 3, 4, 5), racy=True))
            scripts.append(script)
        baseline = _compile(scripts, race_seed=7)
        assert _compile(scripts, race_seed=7).content_hash() == baseline.content_hash()
        assert _compile(scripts, race_seed=8).content_hash() != baseline.content_hash()
