"""The paper's experiments executed through the harness.

Includes the PR's acceptance criterion: ``figure8(fast=True)`` run with
four workers is bit-identical to the serial path, and a second cached
run re-executes zero sweep points.
"""

import pytest

from repro.apps.registry import APP_NAMES
from repro.eval.experiments import (
    accuracy_spec,
    figure6,
    figure7,
    figure8,
    speculation_spec,
)
from repro.harness import ParallelRunner, ResultStore


class TestSpecs:
    def test_accuracy_spec_covers_all_apps_and_depths(self):
        points = accuracy_spec(depths=(1, 2, 4)).points()
        assert len(points) == len(APP_NAMES) * 3
        assert {p["app"] for p in points} == set(APP_NAMES)
        assert all(p["iterations"] >= 4 for p in points)

    def test_fast_scales_iterations_down(self):
        full = {p["app"]: p["iterations"] for p in accuracy_spec(fast=False)}
        fast = {p["app"]: p["iterations"] for p in accuracy_spec(fast=True)}
        assert all(fast[app] <= full[app] for app in APP_NAMES)

    def test_speculation_spec_one_point_per_app(self):
        assert len(speculation_spec().points()) == len(APP_NAMES)


class TestFigure6ThroughHarness:
    def test_parallel_identical_to_serial(self):
        serial = figure6(points=7)
        parallel = figure6(points=7, runner=ParallelRunner(jobs=2))
        assert parallel == serial

    def test_cached_identical_and_free(self, tmp_path):
        store = ResultStore(tmp_path)
        warm = ParallelRunner(store=store)
        first = figure6(points=7, runner=warm)
        assert warm.last_report.executed == 4
        second = figure6(points=7, runner=warm)
        assert warm.last_report.executed == 0
        assert warm.last_report.cached == 4
        assert first == second


@pytest.mark.slow
class TestFigure8Acceptance:
    def test_parallel_then_cached_bit_identical_to_serial(self, tmp_path):
        serial = figure8(fast=True)

        store = ResultStore(tmp_path)
        parallel = ParallelRunner(jobs=4, store=store)
        parallel_rows = figure8(fast=True, runner=parallel)
        assert parallel_rows == serial  # same dict, bit-for-bit
        assert parallel.last_report.executed == len(APP_NAMES) * 3
        assert parallel.last_report.cached == 0

        cached = ParallelRunner(jobs=4, store=store)
        cached_rows = figure8(fast=True, runner=cached)
        assert cached_rows == serial
        assert cached.last_report.executed == 0
        assert cached.last_report.cached == len(APP_NAMES) * 3

    def test_cache_shared_across_experiments(self, tmp_path):
        """figure7 is the depth-1 slice of figure8's grid: free if cached."""
        store = ResultStore(tmp_path)
        figure8(fast=True, runner=ParallelRunner(jobs=4, store=store))
        runner = ParallelRunner(store=store)
        rows = figure7(fast=True, runner=runner)
        assert runner.last_report.executed == 0
        assert runner.last_report.cached == len(APP_NAMES)
        assert set(rows) == set(APP_NAMES)
