"""The paper's experiments executed through the harness.

Includes the PR's acceptance criterion: ``figure8(fast=True)`` run with
four workers is bit-identical to the serial path, and a second cached
run re-executes zero sweep points.
"""

import pytest

from repro.apps.registry import APP_NAMES
from repro.eval.experiments import (
    EXPERIMENTS,
    EXTRA_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    SCALING_NODES,
    accuracy_spec,
    experiment_catalog,
    figure6,
    figure7,
    figure8,
    scaling_spec,
    speculation_spec,
)
from repro.harness import ParallelRunner, ResultStore


class TestSpecs:
    def test_accuracy_spec_covers_all_apps_and_depths(self):
        points = accuracy_spec(depths=(1, 2, 4)).points()
        assert len(points) == len(APP_NAMES) * 3
        assert {p["app"] for p in points} == set(APP_NAMES)
        assert all(p["iterations"] >= 4 for p in points)

    def test_fast_scales_iterations_down(self):
        full = {p["app"]: p["iterations"] for p in accuracy_spec(fast=False)}
        fast = {p["app"]: p["iterations"] for p in accuracy_spec(fast=True)}
        assert all(fast[app] <= full[app] for app in APP_NAMES)

    def test_speculation_spec_one_point_per_app(self):
        assert len(speculation_spec().points()) == len(APP_NAMES)

    def test_scaling_spec_covers_all_node_counts(self):
        points = scaling_spec().points()
        assert len(points) == len(APP_NAMES) * len(SCALING_NODES)
        assert {p["num_procs"] for p in points} == set(SCALING_NODES)
        # the same kind as the CLI's `sweep --kind speculation` path:
        assert all(p.kind == "speculation" for p in points)

    def test_scaling_16_node_points_are_figure9_points(self):
        """The scaling grid's 16-node slice IS the Figure 9 grid, so a
        warmed figure9 cache makes a third of scaling32 free."""
        figure9_keys = {p.key for p in speculation_spec().points()}
        slice16 = {
            p.key for p in scaling_spec(nodes=(16,)).points()
        }
        assert slice16 == figure9_keys


class TestCatalog:
    def test_paper_beyond_experiments_are_tagged(self):
        assert "scaling32" in EXPERIMENTS
        assert "scaling32" in EXTRA_EXPERIMENTS
        assert "scaling32" not in PAPER_EXPERIMENTS
        assert set(PAPER_EXPERIMENTS) | EXTRA_EXPERIMENTS == set(EXPERIMENTS)

    def test_catalog_covers_every_experiment_with_descriptions(self):
        catalog = {entry["name"]: entry for entry in experiment_catalog()}
        assert set(catalog) == set(EXPERIMENTS)
        assert all(entry["description"] for entry in catalog.values())
        assert catalog["figure9"]["paper"] and not catalog["scaling32"]["paper"]


@pytest.mark.slow
class TestScalingStudy:
    def test_one_scaled_point_through_the_sweep_path(self, tmp_path):
        """A 32-node cell of the scaling grid, run exactly as
        `sweep --kind speculation` would run it (tiny iterations)."""
        from repro.harness import SweepPoint

        point = SweepPoint.make(
            "speculation", {"app": "em3d", "num_procs": 32, "iterations": 3}
        )
        runner = ParallelRunner(store=ResultStore(tmp_path))
        result = runner.run([point])
        modes = result.values[0]["modes"]
        assert modes["Base-DSM"]["normalized"] == 1.0
        assert set(modes) == {"Base-DSM", "FR-DSM", "SWI-DSM"}
        # cached rerun is free and bit-identical:
        again = ParallelRunner(store=ResultStore(tmp_path)).run([point])
        assert again.report.cached == 1
        assert again.values == result.values


class TestFigure6ThroughHarness:
    def test_parallel_identical_to_serial(self):
        serial = figure6(points=7)
        parallel = figure6(points=7, runner=ParallelRunner(jobs=2))
        assert parallel == serial

    def test_cached_identical_and_free(self, tmp_path):
        store = ResultStore(tmp_path)
        warm = ParallelRunner(store=store)
        first = figure6(points=7, runner=warm)
        assert warm.last_report.executed == 4
        second = figure6(points=7, runner=warm)
        assert warm.last_report.executed == 0
        assert warm.last_report.cached == 4
        assert first == second


@pytest.mark.slow
class TestFigure8Acceptance:
    def test_parallel_then_cached_bit_identical_to_serial(self, tmp_path):
        serial = figure8(fast=True)

        store = ResultStore(tmp_path)
        parallel = ParallelRunner(jobs=4, store=store)
        parallel_rows = figure8(fast=True, runner=parallel)
        assert parallel_rows == serial  # same dict, bit-for-bit
        assert parallel.last_report.executed == len(APP_NAMES) * 3
        assert parallel.last_report.cached == 0

        cached = ParallelRunner(jobs=4, store=store)
        cached_rows = figure8(fast=True, runner=cached)
        assert cached_rows == serial
        assert cached.last_report.executed == 0
        assert cached.last_report.cached == len(APP_NAMES) * 3

    def test_cache_shared_across_experiments(self, tmp_path):
        """figure7 is the depth-1 slice of figure8's grid: free if cached."""
        store = ResultStore(tmp_path)
        figure8(fast=True, runner=ParallelRunner(jobs=4, store=store))
        runner = ParallelRunner(store=store)
        rows = figure7(fast=True, runner=runner)
        assert runner.last_report.executed == 0
        assert runner.last_report.cached == len(APP_NAMES)
        assert set(rows) == set(APP_NAMES)
