"""Hot-tier unit tests and store⇄tier coherence."""

import json
import multiprocessing

import pytest

from repro.harness import MISS, HotTier, ResultStore, StoredEntry, SweepPoint


def entry(tag):
    return StoredEntry(result={"tag": tag}, elapsed_s=0.5)


def fill(tier, names, nbytes=10, path=None):
    for name in names:
        tier.put(name, entry(name), nbytes, path)


class TestLRUSemantics:
    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            HotTier(max_entries=0)
        with pytest.raises(ValueError):
            HotTier(max_bytes=0)

    def test_get_returns_hot_copy_and_counts(self, tmp_path):
        tier = HotTier()
        tier.put("a", entry("a"), 10, tmp_path / "a.json")
        loaded = tier.get("a", tmp_path / "a.json")
        assert loaded.result == {"tag": "a"} and loaded.hot is True
        assert tier.get("b", tmp_path / "b.json") is None
        assert tier.hits == 1 and tier.misses == 1

    def test_eviction_is_lru_order(self, tmp_path):
        tier = HotTier(max_entries=3)
        fill(tier, ["a", "b", "c"])
        # touch "a" so "b" becomes least recently used
        assert tier.get("a", tmp_path / "x") is not None
        tier.put("d", entry("d"), 10, None)
        assert tier.keys() == ["c", "a", "d"]
        assert tier.evictions == 1
        assert tier.get("b", tmp_path / "x") is None

    def test_put_refreshes_recency(self):
        tier = HotTier(max_entries=2)
        fill(tier, ["a", "b"])
        tier.put("a", entry("a2"), 10, None)  # overwrite refreshes
        tier.put("c", entry("c"), 10, None)
        assert tier.keys() == ["a", "c"]

    def test_byte_bound_evicts(self):
        tier = HotTier(max_entries=100, max_bytes=30)
        fill(tier, ["a", "b", "c"])  # 30 bytes: exactly at the bound
        assert len(tier) == 3 and tier.bytes == 30
        tier.put("d", entry("d"), 10, None)
        assert len(tier) == 3 and tier.bytes == 30
        assert tier.keys() == ["b", "c", "d"]

    def test_oversized_entry_never_admitted(self):
        tier = HotTier(max_entries=10, max_bytes=100)
        fill(tier, ["a", "b"])
        tier.put("huge", entry("huge"), 101, None)
        # nothing evicted for an entry that could never fit
        assert tier.keys() == ["a", "b"] and tier.evictions == 0

    def test_invalidate_and_clear_count(self):
        tier = HotTier()
        fill(tier, ["a", "b", "c"])
        tier.invalidate("a")
        tier.invalidate("nope")  # no-op, not counted
        assert tier.invalidations == 1 and len(tier) == 2
        tier.clear()
        assert len(tier) == 0 and tier.bytes == 0
        assert tier.invalidations == 3

    def test_stats_shape(self, tmp_path):
        tier = HotTier(max_entries=5, max_bytes=50, validate=True)
        stats = tier.stats()
        assert stats["hit_rate"] is None
        tier.put("a", entry("a"), 10, tmp_path / "a.json")
        tier.get("a", tmp_path / "a.json")
        tier.get("b", tmp_path / "b.json")
        stats = tier.stats()
        assert stats == {
            "entries": 1,
            "bytes": 10,
            "max_entries": 5,
            "max_bytes": 50,
            "validate": True,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "hit_rate": 0.5,
        }


class TestStoreCoherence:
    def point(self, n=1):
        return SweepPoint.make("analytic", {"panel": "accuracy", "points": n})

    def test_store_populates_tier_and_serves_from_memory(self, tmp_path):
        tier = HotTier()
        store = ResultStore(tmp_path, hot_tier=tier)
        path = store.store(self.point(), {"series": [1, 2]}, elapsed_s=0.1)
        # remove the backing file: only the hot tier can serve it now
        path.unlink()
        loaded = store.load_entry(self.point())
        assert loaded is not MISS
        assert loaded.result == {"series": [1, 2]} and loaded.hot is True

    def test_disk_load_populates_tier(self, tmp_path):
        plain = ResultStore(tmp_path)
        plain.store(self.point(), {"series": [3]})
        tier = HotTier()
        store = ResultStore(tmp_path, hot_tier=tier)
        first = store.load_entry(self.point())
        assert first.hot is False and tier.misses == 1
        second = store.load_entry(self.point())
        assert second.hot is True and tier.hits == 1
        assert second.result == first.result

    def test_discard_invalidates(self, tmp_path):
        tier = HotTier()
        store = ResultStore(tmp_path, hot_tier=tier)
        store.store(self.point(), {"series": []})
        store.discard(self.point())
        assert store.load_entry(self.point()) is MISS
        assert tier.invalidations == 1

    def test_misses_are_never_cached(self, tmp_path):
        """The claim protocol polls for peer writes; a negative cache
        would make that poll spin forever."""
        tier = HotTier()
        store = ResultStore(tmp_path, hot_tier=tier)
        assert store.load_entry(self.point()) is MISS
        # a peer (here: a second store on the same dir) writes the entry
        ResultStore(tmp_path).store(self.point(), {"series": [9]})
        loaded = store.load_entry(self.point())
        assert loaded is not MISS and loaded.result == {"series": [9]}

    def test_validate_mode_observes_writer_process(self, tmp_path):
        """A writer *process* overwriting an entry is detected by the
        stat-stamp check within one load, without a full re-read on
        every hit."""
        tier = HotTier(validate=True)
        store = ResultStore(tmp_path, hot_tier=tier)
        store.store(self.point(), {"series": [1]})
        assert store.load_entry(self.point()).result == {"series": [1]}

        process = multiprocessing.Process(
            target=_overwrite_entry, args=(str(tmp_path),)
        )
        process.start()
        process.join()
        assert process.exitcode == 0

        loaded = store.load_entry(self.point())
        assert loaded.result == {"series": [1, 2, 3, 4, 5]}
        assert tier.invalidations == 1

    def test_validate_mode_drops_vanished_file(self, tmp_path):
        tier = HotTier(validate=True)
        store = ResultStore(tmp_path, hot_tier=tier)
        path = store.store(self.point(), {"series": [1]})
        path.unlink()
        assert store.load_entry(self.point()) is MISS
        assert tier.invalidations == 1


class TestEntryCounts:
    def point(self, n):
        return SweepPoint.make("analytic", {"panel": "accuracy", "points": n})

    def test_lazy_scan_then_incremental(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(self.point(1), {})
        assert store.entry_counts() == {"analytic": 1}
        store.store(self.point(2), {})
        store.store(self.point(2), {})  # overwrite: not a fresh file
        assert store.entry_counts() == {"analytic": 2}
        store.discard(self.point(1))
        assert store.entry_counts() == {"analytic": 1}
        assert len(store) == 1  # the real directory agrees

    def test_rescan_picks_up_foreign_writes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(self.point(1), {})
        assert store.entry_counts() == {"analytic": 1}
        ResultStore(tmp_path).store(self.point(2), {})
        # without max_age_s the foreign write stays invisible...
        assert store.entry_counts() == {"analytic": 1}
        # ...and a zero-age rescan sees it
        assert store.entry_counts(max_age_s=0.0) == {"analytic": 2}

    def test_clear_zeroes_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(self.point(1), {})
        assert store.entry_counts() == {"analytic": 1}
        store.clear()
        assert store.entry_counts() == {}


def _overwrite_entry(root):
    """Writer-process helper: overwrite the point with a larger result."""
    store = ResultStore(root)
    point = SweepPoint.make("analytic", {"panel": "accuracy", "points": 1})
    store.store(point, {"series": [1, 2, 3, 4, 5]})


class TestEntryJson:
    def test_point_entries_stay_human_readable(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(
            SweepPoint.make("analytic", {"panel": "accuracy", "points": 1}),
            {"series": [1]},
        )
        text = path.read_text()
        assert text.count("\n") > 1  # indented, not one long line
        assert json.loads(text)["result"] == {"series": [1]}
